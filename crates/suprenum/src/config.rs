//! Machine configuration with paper-anchored defaults.
//!
//! Every timing constant of the simulated machine lives here. Values
//! marked *anchor* come straight from the paper or its references; values
//! marked *calibrated* were chosen so the reproduction's behavioural
//! results (utilization ladder, Gantt shapes) match the published ones —
//! see `DESIGN.md` §2 and `EXPERIMENTS.md`.

use des::time::SimDuration;
use hybridmon::{MonitorCosts, MonitoringMode};

use crate::sched::SchedulerKind;

/// Full configuration of a simulated SUPRENUM machine.
///
/// Use [`MachineConfig::single_cluster`] or the [`Default`] impl as a
/// starting point and adjust fields as needed.
///
/// # Examples
///
/// ```
/// use suprenum::MachineConfig;
///
/// let cfg = MachineConfig::single_cluster(16);
/// assert_eq!(cfg.total_nodes(), 16);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of clusters, arranged in a torus of
    /// [`torus_cols`](Self::torus_cols) columns. *anchor*: the full
    /// machine has 16 clusters in a 4×4 torus.
    pub clusters: u8,
    /// Columns of the cluster torus.
    pub torus_cols: u8,
    /// Processing nodes per cluster. *anchor*: up to 16.
    pub nodes_per_cluster: u8,

    /// Per-rail cluster-bus bandwidth. *anchor*: 160 MByte/s, two rails.
    pub cluster_bus_bandwidth: u64,
    /// Number of independent parallel cluster-bus rails. *anchor*: 2.
    pub cluster_bus_rails: u8,
    /// Fixed protocol overhead per cluster-bus transfer (arbitration,
    /// protocol checks by the communication unit). *calibrated*.
    pub cluster_bus_overhead: SimDuration,

    /// SUPRENUM-bus (inter-cluster token ring) bandwidth. *anchor*:
    /// 25 MByte/s.
    pub ring_bandwidth: u64,
    /// Mean token acquisition latency on the ring. *calibrated*.
    pub ring_token_latency: SimDuration,
    /// Per-cluster-hop forwarding latency on the ring. *calibrated*.
    pub ring_hop_latency: SimDuration,

    /// Communication-unit DMA setup time per outgoing transfer.
    /// *calibrated*: the CU is microprogrammable and handles the entire
    /// transfer including bus request/release.
    pub cu_setup: SimDuration,
    /// Kernel latency for a node-local (same node) message. *calibrated*.
    pub local_message_latency: SimDuration,
    /// Latency of the small acknowledgement that unblocks a sender after
    /// its message is accepted. *calibrated*.
    pub ack_latency: SimDuration,
    /// CPU time the mailbox LWP spends accepting one message into the
    /// owner's queue. *calibrated*.
    pub mailbox_accept_cost: SimDuration,

    /// Context-switch time between LWPs of the same team. *anchor*:
    /// "context-switching between light-weight processes belonging to
    /// the same team is cheap (less than 1 ms)".
    pub ctx_switch: SimDuration,
    /// Context-switch time across team boundaries (full address-space
    /// switch). *calibrated*: the paper only bounds the intra-team case.
    pub ctx_switch_inter_team: SimDuration,
    /// CPU cost of creating a process on the local node. *calibrated*.
    pub spawn_cost: SimDuration,
    /// Additional latency before a remotely spawned process becomes
    /// runnable (code download, kernel round trip). *calibrated*.
    pub remote_spawn_latency: SimDuration,

    /// Fixed latency of a disk-node write (request + seek amortized).
    /// *calibrated* for late-1980s disk hardware.
    pub disk_latency: SimDuration,
    /// Disk-node streaming bandwidth. *calibrated*.
    pub disk_bandwidth: u64,

    /// Operator-set job time limit "after which the resources assigned
    /// to a user are released, even if that user's job is not yet
    /// completed … to prevent monopolization" (paper §2.2). `None`
    /// disables the limit.
    pub job_time_limit: Option<SimDuration>,
    /// Which monitoring technique instruments the run.
    pub monitoring: MonitoringMode,
    /// The per-node LWP scheduling policy. *anchor*: the real machine's
    /// kernel was non-preemptive round-robin
    /// ([`SchedulerKind::RoundRobin`], the default); the other policies
    /// explore the design space the paper's effective-synchrony finding
    /// depends on. See [`crate::sched`].
    pub scheduler: SchedulerKind,
    /// Whether the node kernel itself emits monitoring events at
    /// scheduler transitions (dispatch, block, mailbox service, exit) —
    /// the paper's stated future work ("instrumenting SUPRENUM's
    /// operating system to find more detailed information about the
    /// behaviour of the node scheduling algorithm"). Effective only
    /// under hybrid monitoring.
    pub kernel_instrumentation: bool,
    /// Extra kernel time per instrumented scheduler transition, added
    /// to the context-switch cost when kernel instrumentation is on.
    pub kernel_event_cost: SimDuration,
    /// Per-event intrusion costs.
    pub monitor_costs: MonitorCosts,
    /// Defer hybrid-monitoring display materialization: instead of
    /// pushing every pattern write into the signal log inline, the
    /// kernel records compact
    /// [`EmissionRecord`](crate::emission::EmissionRecord)s that a
    /// monitor-plane consumer drains during the run (or that expand
    /// lazily when the run ends). Behaviourally invisible — the expanded
    /// log is bit-identical — but it moves ~97 % of the emission work
    /// off the kernel's critical path so it can overlap with monitor
    /// shards. Only meaningful under hybrid monitoring.
    pub deferred_display: bool,
    /// Capacity of each node's software-monitoring buffer (records).
    pub software_buffer_capacity: usize,
    /// Maximum initial offset of a node's local clock (software
    /// monitoring stamps with this clock). *anchor*: multiprocessors lack
    /// a global high-resolution clock.
    pub node_clock_max_offset: SimDuration,
    /// Maximum drift of a node's local clock in parts per million.
    pub node_clock_max_drift_ppm: f64,
    /// Resolution of a node's local clock.
    pub node_clock_resolution: SimDuration,
}

impl MachineConfig {
    /// A single-cluster machine with `nodes` processing nodes — the
    /// configuration of all the paper's measurements (2 and 16 nodes).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is 0 or exceeds 16 (a cluster holds at most 16
    /// processing nodes).
    pub fn single_cluster(nodes: u8) -> Self {
        assert!(
            (1..=16).contains(&nodes),
            "a cluster holds 1..=16 processing nodes"
        );
        MachineConfig {
            clusters: 1,
            torus_cols: 1,
            nodes_per_cluster: nodes,
            ..Self::base()
        }
    }

    /// The full 16-cluster, 256-node machine in a 4×4 torus.
    pub fn full_machine() -> Self {
        MachineConfig {
            clusters: 16,
            torus_cols: 4,
            nodes_per_cluster: 16,
            ..Self::base()
        }
    }

    fn base() -> Self {
        MachineConfig {
            clusters: 1,
            torus_cols: 1,
            nodes_per_cluster: 16,
            cluster_bus_bandwidth: 160_000_000,
            cluster_bus_rails: 2,
            cluster_bus_overhead: SimDuration::from_micros(100),
            ring_bandwidth: 25_000_000,
            ring_token_latency: SimDuration::from_micros(40),
            ring_hop_latency: SimDuration::from_micros(8),
            cu_setup: SimDuration::from_micros(400),
            local_message_latency: SimDuration::from_micros(40),
            ack_latency: SimDuration::from_micros(30),
            mailbox_accept_cost: SimDuration::from_micros(300),
            ctx_switch: SimDuration::from_micros(250),
            ctx_switch_inter_team: SimDuration::from_micros(900),
            spawn_cost: SimDuration::from_micros(500),
            remote_spawn_latency: SimDuration::from_millis(2),
            disk_latency: SimDuration::from_millis(5),
            disk_bandwidth: 1_000_000,
            job_time_limit: None,
            monitoring: MonitoringMode::Hybrid,
            scheduler: SchedulerKind::RoundRobin,
            kernel_instrumentation: false,
            kernel_event_cost: SimDuration::from_micros(110),
            monitor_costs: MonitorCosts::paper_defaults(),
            deferred_display: false,
            software_buffer_capacity: 1 << 16,
            node_clock_max_offset: SimDuration::from_millis(5),
            node_clock_max_drift_ppm: 50.0,
            node_clock_resolution: SimDuration::from_micros(10),
        }
    }

    /// Total processing nodes in the machine.
    pub fn total_nodes(&self) -> u16 {
        self.clusters as u16 * self.nodes_per_cluster as u16
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.clusters == 0 {
            return Err(ConfigError::new("machine needs at least one cluster"));
        }
        if self.nodes_per_cluster == 0 || self.nodes_per_cluster > 16 {
            return Err(ConfigError::new("a cluster holds 1..=16 processing nodes"));
        }
        if self.torus_cols == 0 || !self.clusters.is_multiple_of(self.torus_cols) {
            return Err(ConfigError::new(
                "cluster count must be a multiple of torus columns",
            ));
        }
        if self.cluster_bus_rails == 0 {
            return Err(ConfigError::new("cluster bus needs at least one rail"));
        }
        if self.cluster_bus_bandwidth == 0 || self.ring_bandwidth == 0 || self.disk_bandwidth == 0 {
            return Err(ConfigError::new("bandwidths must be nonzero"));
        }
        if self.node_clock_resolution.is_zero() {
            return Err(ConfigError::new("node clock resolution must be nonzero"));
        }
        if self.software_buffer_capacity == 0 {
            return Err(ConfigError::new("software monitor buffer must be nonzero"));
        }
        if self.scheduler.validate().is_err() {
            return Err(ConfigError::new(
                "invalid scheduler selection (zero quantum or nested fuzz wrapper)",
            ));
        }
        if self.clusters > 1 {
            // Multi-cluster machines execute one engine shard per cluster
            // under a conservative-lookahead window of `ring_token_latency
            // + ring_hop_latency`: every cross-cluster effect must lie at
            // least that far in the future.
            let lookahead = self.ring_token_latency + self.ring_hop_latency;
            if lookahead.is_zero() {
                return Err(ConfigError::new(
                    "multi-cluster machines need nonzero ring token + hop latency",
                ));
            }
            if self.remote_spawn_latency < lookahead {
                return Err(ConfigError::new(
                    "remote spawn latency must cover the ring token + hop latency",
                ));
            }
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    /// The paper's main measurement platform: one cluster of 16 nodes
    /// with hybrid monitoring.
    fn default() -> Self {
        MachineConfig::single_cluster(16)
    }
}

/// Error describing an invalid [`MachineConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    reason: &'static str,
}

impl ConfigError {
    fn new(reason: &'static str) -> Self {
        ConfigError { reason }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid machine configuration: {}", self.reason)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        MachineConfig::default().validate().unwrap();
        MachineConfig::single_cluster(2).validate().unwrap();
        MachineConfig::full_machine().validate().unwrap();
    }

    #[test]
    fn full_machine_shape() {
        let cfg = MachineConfig::full_machine();
        assert_eq!(cfg.total_nodes(), 256);
        assert_eq!(cfg.clusters, 16);
        assert_eq!(cfg.torus_cols, 4);
    }

    #[test]
    #[should_panic(expected = "1..=16")]
    fn oversize_cluster_panics() {
        MachineConfig::single_cluster(17);
    }

    #[test]
    fn validation_catches_bad_torus() {
        let cfg = MachineConfig {
            clusters: 6,
            torus_cols: 4,
            ..MachineConfig::full_machine()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("torus"));
    }

    #[test]
    fn validation_catches_bad_scheduler() {
        let cfg = MachineConfig {
            scheduler: SchedulerKind::Cfs {
                quantum: SimDuration::ZERO,
            },
            ..MachineConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("scheduler"));
    }

    #[test]
    fn validation_catches_zero_bandwidth() {
        let cfg = MachineConfig {
            ring_bandwidth: 0,
            ..MachineConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn paper_anchor_bandwidths() {
        let cfg = MachineConfig::default();
        assert_eq!(cfg.cluster_bus_bandwidth, 160_000_000);
        assert_eq!(cfg.cluster_bus_rails, 2);
        assert_eq!(cfg.ring_bandwidth, 25_000_000);
        assert!(cfg.ctx_switch < SimDuration::from_millis(1));
    }
}
