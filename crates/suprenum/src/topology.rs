//! Machine topology: node ↔ cluster mapping and route classification.
//!
//! SUPRENUM's interconnect is two-level: nodes within a cluster share the
//! dual cluster bus; clusters are linked in a torus by the bit-serial
//! SUPRENUM bus (token ring). A message therefore takes one of three
//! route classes, each with a different cost model:
//!
//! * [`Route::Local`] — both processes on the same node (kernel copy);
//! * [`Route::IntraCluster`] — over the cluster bus;
//! * [`Route::InterCluster`] — cluster bus → communication node → token
//!   ring (some number of cluster hops) → communication node → cluster
//!   bus.

use crate::config::MachineConfig;
use crate::ids::{ClusterId, NodeId};

/// Which path a message takes through the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Same node: no bus involved.
    Local,
    /// Same cluster: one cluster-bus transfer.
    IntraCluster {
        /// The shared cluster.
        cluster: ClusterId,
    },
    /// Different clusters: both cluster buses plus `ring_hops` hops on
    /// the SUPRENUM-bus torus.
    InterCluster {
        /// Source cluster.
        src_cluster: ClusterId,
        /// Destination cluster.
        dst_cluster: ClusterId,
        /// Minimal hop count through the torus.
        ring_hops: u32,
    },
}

/// Static topology derived from a [`MachineConfig`].
///
/// # Examples
///
/// ```
/// use suprenum::{MachineConfig, NodeId, Topology};
///
/// let topo = Topology::new(&MachineConfig::full_machine());
/// assert_eq!(topo.cluster_of(NodeId::new(0)).index(), 0);
/// assert_eq!(topo.cluster_of(NodeId::new(16)).index(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    clusters: u8,
    torus_cols: u8,
    nodes_per_cluster: u8,
}

impl Topology {
    /// Builds the topology for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not validate.
    pub fn new(cfg: &MachineConfig) -> Self {
        cfg.validate()
            .expect("topology requires a valid configuration");
        Topology {
            clusters: cfg.clusters,
            torus_cols: cfg.torus_cols,
            nodes_per_cluster: cfg.nodes_per_cluster,
        }
    }

    /// Total processing nodes.
    pub fn total_nodes(&self) -> u16 {
        self.clusters as u16 * self.nodes_per_cluster as u16
    }

    /// Number of clusters.
    pub fn clusters(&self) -> u8 {
        self.clusters
    }

    /// The cluster containing `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn cluster_of(&self, node: NodeId) -> ClusterId {
        assert!(
            node.index() < self.total_nodes(),
            "node {node} out of range"
        );
        ClusterId::new((node.index() / self.nodes_per_cluster as u16) as u8)
    }

    /// Nodes in each cluster.
    pub fn nodes_per_cluster(&self) -> u8 {
        self.nodes_per_cluster
    }

    /// The lowest node id of a cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn first_node(&self, cluster: ClusterId) -> NodeId {
        assert!(
            cluster.index() < self.clusters,
            "cluster {cluster} out of range"
        );
        NodeId::new(cluster.index() as u16 * self.nodes_per_cluster as u16)
    }

    /// Iterates over the nodes of one cluster in id order.
    pub fn cluster_nodes(&self, cluster: ClusterId) -> impl Iterator<Item = NodeId> {
        let first = self.first_node(cluster).index();
        (first..first + self.nodes_per_cluster as u16).map(NodeId::new)
    }

    /// Torus coordinates (row, col) of a cluster.
    pub fn torus_coords(&self, cluster: ClusterId) -> (u8, u8) {
        assert!(
            cluster.index() < self.clusters,
            "cluster {cluster} out of range"
        );
        (
            cluster.index() / self.torus_cols,
            cluster.index() % self.torus_cols,
        )
    }

    /// Minimal number of ring hops between two clusters on the torus
    /// (wrap-around Manhattan distance).
    pub fn ring_hops(&self, a: ClusterId, b: ClusterId) -> u32 {
        let (ra, ca) = self.torus_coords(a);
        let (rb, cb) = self.torus_coords(b);
        let rows = self.clusters / self.torus_cols;
        let wrap = |x: u8, y: u8, n: u8| -> u32 {
            let d = (x as i32 - y as i32).unsigned_abs();
            d.min(n as u32 - d)
        };
        wrap(ra, rb, rows) + wrap(ca, cb, self.torus_cols)
    }

    /// Classifies the route from `src` to `dst`.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Route {
        if src == dst {
            return Route::Local;
        }
        let sc = self.cluster_of(src);
        let dc = self.cluster_of(dst);
        if sc == dc {
            Route::IntraCluster { cluster: sc }
        } else {
            Route::InterCluster {
                src_cluster: sc,
                dst_cluster: dc,
                ring_hops: self.ring_hops(sc, dc),
            }
        }
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.total_nodes()).map(NodeId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full() -> Topology {
        Topology::new(&MachineConfig::full_machine())
    }

    #[test]
    fn cluster_mapping() {
        let t = full();
        assert_eq!(t.cluster_of(NodeId::new(15)).index(), 0);
        assert_eq!(t.cluster_of(NodeId::new(16)).index(), 1);
        assert_eq!(t.cluster_of(NodeId::new(255)).index(), 15);
        assert_eq!(t.total_nodes(), 256);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_panics() {
        full().cluster_of(NodeId::new(256));
    }

    #[test]
    fn route_classes() {
        let t = full();
        assert_eq!(t.route(NodeId::new(3), NodeId::new(3)), Route::Local);
        assert_eq!(
            t.route(NodeId::new(3), NodeId::new(4)),
            Route::IntraCluster {
                cluster: ClusterId::new(0)
            }
        );
        match t.route(NodeId::new(0), NodeId::new(255)) {
            Route::InterCluster {
                src_cluster,
                dst_cluster,
                ring_hops,
            } => {
                assert_eq!(src_cluster.index(), 0);
                assert_eq!(dst_cluster.index(), 15);
                // C0 is at (0,0), C15 at (3,3): wrap distance 1+1 = 2.
                assert_eq!(ring_hops, 2);
            }
            other => panic!("expected inter-cluster route, got {other:?}"),
        }
    }

    #[test]
    fn torus_wraparound_distance() {
        let t = full();
        // C0 (0,0) to C3 (0,3): direct distance 3, wrapped distance 1.
        assert_eq!(t.ring_hops(ClusterId::new(0), ClusterId::new(3)), 1);
        // C0 to C12 (3,0): wrapped row distance 1.
        assert_eq!(t.ring_hops(ClusterId::new(0), ClusterId::new(12)), 1);
        // C0 to C5 (1,1): 1+1.
        assert_eq!(t.ring_hops(ClusterId::new(0), ClusterId::new(5)), 2);
        // Symmetry.
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(
                    t.ring_hops(ClusterId::new(a), ClusterId::new(b)),
                    t.ring_hops(ClusterId::new(b), ClusterId::new(a))
                );
            }
        }
    }

    #[test]
    fn single_cluster_has_no_ring_routes() {
        let t = Topology::new(&MachineConfig::single_cluster(16));
        for a in t.nodes() {
            for b in t.nodes() {
                assert!(!matches!(t.route(a, b), Route::InterCluster { .. }));
            }
        }
    }
}
