//! Identifier newtypes for machine entities.
//!
//! Distinct id types ([C-NEWTYPE]) prevent the classic simulator bug of
//! indexing a node table with a process id.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

/// Index of a processing node, global across all clusters.
///
/// # Examples
///
/// ```
/// use suprenum::NodeId;
///
/// let n = NodeId::new(17);
/// assert_eq!(n.index(), 17);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id from a global node index.
    pub const fn new(index: u16) -> Self {
        NodeId(index)
    }

    /// The global node index.
    pub const fn index(self) -> u16 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Index of a cluster within the machine's torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClusterId(u8);

impl ClusterId {
    /// Creates a cluster id.
    pub const fn new(index: u8) -> Self {
        ClusterId(index)
    }

    /// The cluster index.
    pub const fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Identifier of a process (heavy- or light-weight), unique for the
/// lifetime of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process id from its raw value. Normally only the kernel
    /// allocates these; tests may forge them.
    pub const fn new(raw: u32) -> Self {
        ProcessId(raw)
    }

    /// The raw id value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of a team of light-weight processes sharing an address
/// space on one node (paper §2.2). Context switches within a team are
/// cheap; switches across teams are not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TeamId(u32);

impl TeamId {
    /// Creates a team id from its raw value.
    pub const fn new(raw: u32) -> Self {
        TeamId(raw)
    }

    /// The raw id value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TeamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a condition variable used for intra-node signalling
/// between light-weight processes of a team (the "shared variable +
/// relinquish" idiom the paper's communication agents use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CondId(u64);

impl CondId {
    /// Creates a condition id. Applications choose their own values;
    /// processes sharing a value share the condition.
    pub const fn new(raw: u64) -> Self {
        CondId(raw)
    }

    /// The raw id value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for CondId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cond{}", self.0)
    }
}

/// A schedulable entity on a node: either a user process or the kernel
/// mailbox light-weight process owned by a user process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LwpId {
    /// A user light-weight process.
    User(ProcessId),
    /// The mailbox LWP owned by the given user process. Per the paper, a
    /// mailbox "is a light-weight process owned by the receiving process"
    /// and must actually be scheduled to accept a message.
    Mailbox(ProcessId),
}

impl LwpId {
    /// The owning user process.
    pub fn owner(self) -> ProcessId {
        match self {
            LwpId::User(p) | LwpId::Mailbox(p) => p,
        }
    }

    /// Returns `true` for mailbox LWPs.
    pub fn is_mailbox(self) -> bool {
        matches!(self, LwpId::Mailbox(_))
    }
}

impl fmt::Display for LwpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LwpId::User(p) => write!(f, "{p}"),
            LwpId::Mailbox(p) => write!(f, "{p}.mbox"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(3).to_string(), "N3");
        assert_eq!(ClusterId::new(1).to_string(), "C1");
        assert_eq!(ProcessId::new(9).to_string(), "P9");
        assert_eq!(LwpId::User(ProcessId::new(9)).to_string(), "P9");
        assert_eq!(LwpId::Mailbox(ProcessId::new(9)).to_string(), "P9.mbox");
        assert_eq!(CondId::new(2).to_string(), "cond2");
    }

    #[test]
    fn lwp_owner() {
        let p = ProcessId::new(4);
        assert_eq!(LwpId::User(p).owner(), p);
        assert_eq!(LwpId::Mailbox(p).owner(), p);
        assert!(LwpId::Mailbox(p).is_mailbox());
        assert!(!LwpId::User(p).is_mailbox());
    }

    #[test]
    fn ids_are_ordered() {
        assert!(ProcessId::new(1) < ProcessId::new(2));
        assert!(NodeId::new(0) < NodeId::new(1));
    }
}
