//! Event tokens reserved for kernel (operating-system) instrumentation.
//!
//! The paper's future work: "Instrumenting SUPRENUM's operating system
//! to find more detailed information about the behaviour of the node
//! scheduling algorithm and internode communication is one of our
//! goals." When [`crate::MachineConfig::kernel_instrumentation`] is on,
//! the kernel emits these events through the same seven-segment path as
//! the application, during windows where the kernel already owns the
//! CPU (context switches, mailbox service) so the display protocol's
//! atomicity is never violated.
//!
//! The 32-bit parameter carries the affected process id in the low 24
//! bits and an event-specific code in the high 8 bits.

/// A light-weight process was dispatched onto the CPU. Parameter code:
/// 0 = user process, 1 = mailbox LWP.
pub const KERNEL_DISPATCH: u16 = 0xF001;

/// The running process blocked. Parameter code: the block reason
/// (see [`reason_code`]).
pub const KERNEL_BLOCK: u16 = 0xF002;

/// The mailbox LWP finished a service round. Parameter code: number of
/// messages accepted.
pub const KERNEL_MAILBOX_SERVICE: u16 = 0xF003;

/// A process exited.
pub const KERNEL_EXIT: u16 = 0xF004;

/// The running user process was preempted mid-compute. Parameter code:
/// 1 = a mailbox LWP seized the CPU (the transition the static `sched`
/// model adds under its preemptive toggle), 2 = its time slice expired,
/// 3 = an injected fuzz preemption point fired on a user wakeup. Never
/// emitted under the stock non-preemptive round-robin policy — `harness
/// verify` leans on that to reconcile the model's scheduler verdicts
/// against recorded traces.
pub const KERNEL_PREEMPT: u16 = 0xF005;

/// First token id of the range reserved for kernel instrumentation.
///
/// Application point maps must stay below this; the event decoder has no
/// other way to attribute a token to the kernel's or the application's
/// activity state machine when both share a node's display channel.
pub const KERNEL_TOKEN_BASE: u16 = 0xF000;

/// The declared kernel point map: `(token id, activity name, group)`,
/// the OS-side companion of `raysim::tokens::point_map` for static
/// analysis and reports.
pub fn point_map() -> Vec<(u16, &'static str, &'static str)> {
    vec![
        (KERNEL_DISPATCH, "Dispatch", "Kernel"),
        (KERNEL_BLOCK, "Block", "Kernel"),
        (KERNEL_MAILBOX_SERVICE, "Mailbox Service", "Kernel"),
        (KERNEL_EXIT, "Exit", "Kernel"),
        (KERNEL_PREEMPT, "Preempt", "Kernel"),
    ]
}

/// Encodes a kernel-event parameter from a process id and a code.
pub fn param(pid_raw: u32, code: u8) -> u32 {
    (pid_raw & 0x00FF_FFFF) | ((code as u32) << 24)
}

/// Splits a kernel-event parameter into `(pid_raw, code)`.
pub fn split_param(param: u32) -> (u32, u8) {
    (param & 0x00FF_FFFF, (param >> 24) as u8)
}

/// Numeric code for a block reason, for the [`KERNEL_BLOCK`] parameter.
pub fn reason_code(reason: crate::ground_truth::BlockReason) -> u8 {
    use crate::ground_truth::BlockReason as R;
    match reason {
        R::SendSync => 1,
        R::MailboxSend => 2,
        R::Recv => 3,
        R::MailboxRecv => 4,
        R::Sleep => 5,
        R::Disk => 6,
        R::Cond => 7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_map_lives_in_reserved_range() {
        for (token, _, group) in point_map() {
            assert!(token >= KERNEL_TOKEN_BASE);
            assert_eq!(group, "Kernel");
        }
        assert_eq!(point_map().len(), 5);
    }

    #[test]
    fn param_roundtrip() {
        let p = param(0x0012_3456, 5);
        assert_eq!(split_param(p), (0x0012_3456, 5));
    }

    #[test]
    fn reason_codes_are_distinct() {
        use crate::ground_truth::BlockReason as R;
        let codes: std::collections::HashSet<u8> = [
            R::SendSync,
            R::MailboxSend,
            R::Recv,
            R::MailboxRecv,
            R::Sleep,
            R::Disk,
            R::Cond,
        ]
        .into_iter()
        .map(reason_code)
        .collect();
        assert_eq!(codes.len(), 7);
    }
}
