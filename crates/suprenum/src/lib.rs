//! Deterministic simulator of the SUPRENUM distributed-memory
//! multiprocessor.
//!
//! SUPRENUM (paper §2) is a MIMD machine of up to 256 nodes: 16-node
//! clusters joined by a dual 160 MB/s cluster bus, clusters joined in a
//! torus by the 25 MB/s SUPRENUM token-ring bus. Each node runs light-
//! weight processes under a **non-preemptive round-robin** scheduler and
//! communicates by synchronous sends or by *mailboxes* — light-weight
//! processes owned by the receiver that must themselves be scheduled to
//! accept a message.
//!
//! This crate reproduces that machine as a discrete-event simulation
//! faithful to the *mechanisms* the paper's measurements exposed — most
//! importantly the de-facto synchrony of mailbox communication. It also
//! exposes the hardware surfaces an external monitor can probe: every
//! seven-segment display write and terminal byte appears with exact
//! global time in the run's [`SignalLog`].
//!
//! # Architecture
//!
//! | module | role |
//! |---|---|
//! | [`config`] | all timing constants, paper-anchored |
//! | [`topology`] | node/cluster mapping, torus routing |
//! | [`bus`] | cluster bus, token ring and CU contention model |
//! | [`process`] | the resumable-process programming model |
//! | [`kernel`] | schedulers, mailboxes, messaging, monitoring hooks |
//! | [`signals`] | externally probed display/terminal streams |
//! | [`ground_truth`] | true process states (validation oracle) |
//!
//! # Examples
//!
//! A two-process ping-pong over mailboxes:
//!
//! ```
//! use des::time::{SimDuration, SimTime};
//! use suprenum::{
//!     Action, Machine, MachineConfig, Message, NodeId, ProcCtx, Process, ProcessId, Resume,
//!     RunEnd,
//! };
//!
//! struct Ping { peer: Option<ProcessId>, step: u8 }
//! impl Process for Ping {
//!     fn resume(&mut self, ctx: &ProcCtx, why: Resume) -> Action {
//!         if let Resume::Spawned(pid) = why {
//!             self.peer = Some(pid);
//!         }
//!         self.step += 1;
//!         match self.step {
//!             1 => Action::Spawn { node: NodeId::new(1), body: Box::new(Pong) },
//!             2 => Action::MailboxSend {
//!                 to: self.peer.unwrap(),
//!                 msg: Message::new(ctx.pid, 64, "ping"),
//!             },
//!             _ => Action::Exit,
//!         }
//!     }
//! }
//!
//! struct Pong;
//! impl Process for Pong {
//!     fn resume(&mut self, _ctx: &ProcCtx, why: Resume) -> Action {
//!         match why {
//!             Resume::Start => Action::MailboxRecv,
//!             _ => Action::Exit,
//!         }
//!     }
//! }
//!
//! let mut m = Machine::new(MachineConfig::single_cluster(2), 1).unwrap();
//! m.add_process(NodeId::new(0), Box::new(Ping { peer: None, step: 0 }));
//! assert_eq!(m.run(SimTime::from_secs(1)).reason, RunEnd::Completed);
//! ```

pub mod bus;
pub mod config;
pub mod emission;
pub mod ground_truth;
pub mod ids;
pub mod kernel;
pub mod message;
pub mod os_tokens;
pub mod process;
pub mod sched;
pub mod signals;
pub mod topology;

pub use config::{ConfigError, MachineConfig};
pub use emission::EmissionRecord;
pub use ground_truth::{BlockReason, GroundTruth, ProcState};
pub use ids::{ClusterId, CondId, LwpId, NodeId, ProcessId};
pub use kernel::{EngineProfile, KernelStats, Machine, RunEnd, RunOutcome};
pub use message::Message;
pub use process::{Action, ProcCtx, Process, Resume};
pub use sched::{KernelCtx, Scheduler, SchedulerKind};
pub use signals::{DisplayWrite, SignalLog, TerminalWrite};
pub use topology::{Route, Topology};
