//! Deferred display emissions: the compact form of a hybrid-monitoring
//! instrumentation event before its 32-pattern display sequence exists.
//!
//! Materializing every [`DisplayWrite`] inline dominates the kernel's
//! run time on instrumented workloads (each emission expands to
//! [`WRITES_PER_EVENT`] log entries). With
//! [`MachineConfig::deferred_display`](crate::MachineConfig::deferred_display)
//! set, the kernel instead records one [`EmissionRecord`] per emission —
//! the start time, pattern spacing, node, and 48-bit payload — and the
//! expansion happens later, off the kernel's critical path: either on
//! the monitor-plane shard threads (the parallel pipeline) or lazily at
//! the end of the run (anything that still reads
//! [`Machine::signals`](crate::Machine::signals)).
//!
//! [`EmissionRecord::writes`] reproduces the inline path's arithmetic
//! exactly — same start, same spacing, same pattern sequence — so the
//! expanded log is bit-identical to what the inline path would have
//! pushed, and every downstream digest is unchanged.

use des::time::{SimDuration, SimTime};
use hybridmon::encode::{encode, WRITES_PER_EVENT};
use hybridmon::MonEvent;

use crate::ids::NodeId;
use crate::signals::DisplayWrite;

/// One hybrid-monitoring emission in compact (unexpanded) form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmissionRecord {
    /// When the node's display became available for this emission (the
    /// per-node serialization point; the first pattern lands one
    /// `spacing` later).
    pub start: SimTime,
    /// Time between consecutive pattern writes of this emission.
    pub spacing: SimDuration,
    /// The emitting node (= monitor channel).
    pub node: NodeId,
    /// Event token.
    pub token: u16,
    /// Event parameter.
    pub param: u32,
}

impl EmissionRecord {
    /// Time of the first display write of this emission. Per node,
    /// first-write times are strictly increasing (the kernel's display
    /// serializer spaces emissions at least `spacing × 33` apart), which
    /// makes them a valid per-channel release order for the monitor
    /// plane.
    pub fn first_write_at(&self) -> SimTime {
        self.start + self.spacing
    }

    /// The event this emission encodes.
    pub fn event(&self) -> MonEvent {
        MonEvent::new(self.token, self.param)
    }

    /// Expands the emission into its exact display-write sequence —
    /// bit-identical to what the inline (non-deferred) kernel path
    /// pushes into the signal log.
    pub fn writes(&self) -> impl Iterator<Item = DisplayWrite> + '_ {
        encode(self.event())
            .into_iter()
            .enumerate()
            .map(move |(i, pattern)| DisplayWrite {
                time: self.start + self.spacing * (i as u64 + 1),
                node: self.node,
                pattern,
            })
    }

    /// Number of display writes this record expands to.
    pub const fn write_count() -> usize {
        WRITES_PER_EVENT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_matches_inline_arithmetic() {
        let rec = EmissionRecord {
            start: SimTime::from_micros(10),
            spacing: SimDuration::from_nanos(250),
            node: NodeId::new(3),
            token: 0x42,
            param: 7,
        };
        let writes: Vec<DisplayWrite> = rec.writes().collect();
        assert_eq!(writes.len(), WRITES_PER_EVENT);
        assert_eq!(rec.first_write_at(), writes[0].time);
        for (i, w) in writes.iter().enumerate() {
            assert_eq!(
                w.time,
                rec.start + rec.spacing * (i as u64 + 1),
                "write {i} off the inline grid"
            );
            assert_eq!(w.node, rec.node);
        }
        // The pattern sequence is the canonical encoding.
        let expected = encode(MonEvent::new(0x42, 7));
        for (w, p) in writes.iter().zip(expected) {
            assert_eq!(w.pattern, p);
        }
    }
}
