//! Interconnect timing model.
//!
//! Buses are modelled as *resources with earliest-availability times*: a
//! transfer occupies its resource from a start time (the later of "now +
//! setup" and "resource free") for `size / bandwidth`, and the resource's
//! next-free time advances accordingly. This captures queueing and
//! contention — in particular the communication hot-spot at the ray
//! tracer's master node — without simulating individual bus phases.
//!
//! Resources:
//!
//! * each node's **communication unit** (one outgoing DMA at a time);
//! * each cluster's **dual cluster-bus rails** (a transfer picks whichever
//!   rail frees first — the paper's fault-tolerant parallel buses double
//!   usable bandwidth);
//! * each cluster's **ring-egress port** onto the SUPRENUM-bus token ring
//!   (dual counter-rotating rings modelled as two rails per communication
//!   node; token acquisition and per-hop latencies added). Modelling the
//!   ring as per-cluster injection ports instead of one global resource
//!   keeps every resource owned by exactly one cluster, so partitioned
//!   (per-cluster engine shard) execution prices ring traffic without
//!   shared state — contention at the *sender's* communication node is
//!   what the token protocol serializes anyway.
//!
//! Inter-cluster transfers split into two phases at the ring boundary:
//! [`Interconnect::inter_cluster_egress`] (source cluster: CU → source
//! bus → ring, returning the arrival time at the destination cluster's
//! communication node, always ≥ token + hop latency in the future) and
//! [`Interconnect::ring_ingress`] (destination cluster: communication
//! node → destination bus). [`Interconnect::transfer`] composes both for
//! callers holding the whole machine.

use des::time::{SimDuration, SimTime};

use crate::config::MachineConfig;
use crate::ids::{ClusterId, NodeId};
use crate::topology::{Route, Topology};

/// A resource that can carry one transfer at a time.
#[derive(Debug, Clone, Default)]
struct Channel {
    next_free: SimTime,
}

impl Channel {
    /// Reserves the channel for `duration` starting no earlier than
    /// `earliest`; returns the actual `(start, end)`.
    fn reserve(&mut self, earliest: SimTime, duration: SimDuration) -> (SimTime, SimTime) {
        let start = earliest.max(self.next_free);
        let end = start + duration;
        self.next_free = end;
        (start, end)
    }
}

/// A bundle of parallel rails; a transfer takes whichever frees first.
#[derive(Debug, Clone)]
struct RailSet {
    rails: Vec<Channel>,
}

impl RailSet {
    fn new(rails: usize) -> Self {
        assert!(rails > 0, "need at least one rail");
        RailSet {
            rails: vec![Channel::default(); rails],
        }
    }

    fn reserve(&mut self, earliest: SimTime, duration: SimDuration) -> (SimTime, SimTime) {
        let best = self
            .rails
            .iter_mut()
            .min_by_key(|r| r.next_free)
            .expect("rail set is never empty");
        best.reserve(earliest, duration)
    }
}

/// The complete interconnect state of a machine.
///
/// In a partitioned (multi-cluster sharded) run each partition holds its
/// own full-size instance but only ever touches the resources of its own
/// cluster's nodes; [`merge_stats`](Self::merge_stats) recombines the
/// counters afterwards.
#[derive(Debug, Clone)]
pub struct Interconnect {
    cfg: InterconnectParams,
    cu: Vec<Channel>,          // one per node
    cluster_bus: Vec<RailSet>, // one per cluster
    ring_egress: Vec<RailSet>, // one per cluster: its port onto the ring
    stats: InterconnectStats,
}

#[derive(Debug, Clone)]
struct InterconnectParams {
    cluster_bus_bandwidth: u64,
    cluster_bus_overhead: SimDuration,
    ring_bandwidth: u64,
    ring_token_latency: SimDuration,
    ring_hop_latency: SimDuration,
    cu_setup: SimDuration,
    local_message_latency: SimDuration,
}

/// Aggregate transfer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterconnectStats {
    /// Node-local deliveries.
    pub local_transfers: u64,
    /// Cluster-bus transfers.
    pub intra_cluster_transfers: u64,
    /// Token-ring (inter-cluster) transfers.
    pub inter_cluster_transfers: u64,
    /// Total payload bytes moved.
    pub bytes_moved: u64,
}

impl Interconnect {
    /// Builds the interconnect for a configuration.
    pub fn new(cfg: &MachineConfig, topo: &Topology) -> Self {
        Interconnect {
            cfg: InterconnectParams {
                cluster_bus_bandwidth: cfg.cluster_bus_bandwidth,
                cluster_bus_overhead: cfg.cluster_bus_overhead,
                ring_bandwidth: cfg.ring_bandwidth,
                ring_token_latency: cfg.ring_token_latency,
                ring_hop_latency: cfg.ring_hop_latency,
                cu_setup: cfg.cu_setup,
                local_message_latency: cfg.local_message_latency,
            },
            cu: (0..topo.total_nodes())
                .map(|_| Channel::default())
                .collect(),
            cluster_bus: (0..topo.clusters())
                .map(|_| RailSet::new(cfg.cluster_bus_rails as usize))
                .collect(),
            // Dual counter-rotating rings at every cluster's port.
            ring_egress: (0..topo.clusters()).map(|_| RailSet::new(2)).collect(),
            stats: InterconnectStats::default(),
        }
    }

    /// Computes (and reserves capacity for) the delivery time of a
    /// message of `bytes` from `src` leaving at `now` along `route`.
    ///
    /// Returns the arrival time at the destination node.
    pub fn transfer(&mut self, now: SimTime, src: NodeId, route: Route, bytes: u32) -> SimTime {
        self.stats.bytes_moved += bytes as u64;
        match route {
            Route::Local => {
                self.stats.local_transfers += 1;
                now + self.cfg.local_message_latency
            }
            Route::IntraCluster { cluster } => {
                self.stats.intra_cluster_transfers += 1;
                // CU DMA setup, then one cluster-bus occupation.
                let (_, cu_done) = self.cu[src.index() as usize].reserve(now, self.cfg.cu_setup);
                let dur = SimDuration::for_transfer(bytes as u64, self.cfg.cluster_bus_bandwidth)
                    + self.cfg.cluster_bus_overhead;
                let (_, end) = self.cluster_bus[cluster.index() as usize].reserve(cu_done, dur);
                end
            }
            Route::InterCluster {
                src_cluster,
                dst_cluster,
                ring_hops,
            } => {
                // Undo the blanket byte count: egress charges it so the
                // two-phase path counts bytes exactly once, at the source.
                self.stats.bytes_moved -= bytes as u64;
                let l2_end = self.inter_cluster_egress(now, src, src_cluster, ring_hops, bytes);
                self.ring_ingress(l2_end, dst_cluster, bytes)
            }
        }
    }

    /// Source-cluster half of an inter-cluster transfer: CU DMA setup,
    /// source cluster bus, then the cluster's ring-egress port (token
    /// acquisition + serial transfer + `ring_hops` store-and-forward
    /// hops). Returns the arrival time at the *destination* cluster's
    /// communication node.
    ///
    /// Only source-cluster resources are touched, and with `ring_hops ≥ 1`
    /// the result is always at least `ring_token_latency +
    /// ring_hop_latency` after `now` — the conservative lookahead bound a
    /// partitioned engine relies on.
    pub fn inter_cluster_egress(
        &mut self,
        now: SimTime,
        src: NodeId,
        src_cluster: ClusterId,
        ring_hops: u32,
        bytes: u32,
    ) -> SimTime {
        self.stats.inter_cluster_transfers += 1;
        self.stats.bytes_moved += bytes as u64;
        let (_, cu_done) = self.cu[src.index() as usize].reserve(now, self.cfg.cu_setup);
        let leg = SimDuration::for_transfer(bytes as u64, self.cfg.cluster_bus_bandwidth)
            + self.cfg.cluster_bus_overhead;
        let (_, l1_end) = self.cluster_bus[src_cluster.index() as usize].reserve(cu_done, leg);
        let ring_dur = self.cfg.ring_token_latency
            + SimDuration::for_transfer(bytes as u64, self.cfg.ring_bandwidth)
            + self.cfg.ring_hop_latency * ring_hops as u64;
        let (_, l2_end) = self.ring_egress[src_cluster.index() as usize].reserve(l1_end, ring_dur);
        l2_end
    }

    /// Destination-cluster half of an inter-cluster transfer: the final
    /// communication-node → destination-node leg over the destination
    /// cluster bus, starting when the message reaches the communication
    /// node (`at`, from [`inter_cluster_egress`](Self::inter_cluster_egress)).
    /// Returns the arrival time at the destination node. Only
    /// destination-cluster resources are touched; the transfer's bytes
    /// were already counted at egress.
    pub fn ring_ingress(&mut self, at: SimTime, dst_cluster: ClusterId, bytes: u32) -> SimTime {
        let leg = SimDuration::for_transfer(bytes as u64, self.cfg.cluster_bus_bandwidth)
            + self.cfg.cluster_bus_overhead;
        let (_, l3_end) = self.cluster_bus[dst_cluster.index() as usize].reserve(at, leg);
        l3_end
    }

    /// Transfer counters so far.
    pub fn stats(&self) -> InterconnectStats {
        self.stats
    }

    /// Returns the counters and resets them to zero, so a partition
    /// merge can move them without double-counting on a repeat merge.
    pub fn take_stats(&mut self) -> InterconnectStats {
        std::mem::take(&mut self.stats)
    }

    /// Adds `other`'s counters to this instance's. Used to recombine
    /// per-partition interconnects after a sharded run.
    pub fn merge_stats(&mut self, other: InterconnectStats) {
        self.stats.local_transfers += other.local_transfers;
        self.stats.intra_cluster_transfers += other.intra_cluster_transfers;
        self.stats.inter_cluster_transfers += other.inter_cluster_transfers;
        self.stats.bytes_moved += other.bytes_moved;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClusterId;

    fn setup(cfg: &MachineConfig) -> (Interconnect, Topology) {
        let topo = Topology::new(cfg);
        (Interconnect::new(cfg, &topo), topo)
    }

    #[test]
    fn local_is_cheapest() {
        let cfg = MachineConfig::default();
        let (mut ic, topo) = setup(&cfg);
        let t0 = SimTime::from_millis(1);
        let local = ic.transfer(
            t0,
            NodeId::new(0),
            topo.route(NodeId::new(0), NodeId::new(0)),
            1000,
        );
        let intra = ic.transfer(
            t0,
            NodeId::new(1),
            topo.route(NodeId::new(1), NodeId::new(2)),
            1000,
        );
        assert!(
            local < intra,
            "local {local} should beat intra-cluster {intra}"
        );
    }

    #[test]
    fn inter_cluster_is_slowest() {
        let cfg = MachineConfig::full_machine();
        let (mut ic, topo) = setup(&cfg);
        let t0 = SimTime::from_millis(1);
        let intra = ic.transfer(
            t0,
            NodeId::new(0),
            topo.route(NodeId::new(0), NodeId::new(1)),
            4096,
        );
        let inter = ic.transfer(
            t0,
            NodeId::new(2),
            topo.route(NodeId::new(2), NodeId::new(200)),
            4096,
        );
        assert!(inter > intra);
        assert_eq!(ic.stats().intra_cluster_transfers, 1);
        assert_eq!(ic.stats().inter_cluster_transfers, 1);
        assert_eq!(ic.stats().bytes_moved, 8192);
    }

    #[test]
    fn contention_queues_transfers() {
        let cfg = MachineConfig::default();
        let (mut ic, _) = setup(&cfg);
        let t0 = SimTime::from_millis(1);
        let route = Route::IntraCluster {
            cluster: ClusterId::new(0),
        };
        // Saturate both rails from different source nodes (distinct CUs),
        // then a third transfer must wait for a rail.
        let big = 1_000_000; // ~6.25ms per rail at 160MB/s
        let a = ic.transfer(t0, NodeId::new(0), route, big);
        let b = ic.transfer(t0, NodeId::new(1), route, big);
        let c = ic.transfer(t0, NodeId::new(2), route, big);
        // First two go in parallel on the two rails.
        assert_eq!(a, b);
        // Third queues behind one of them.
        assert!(c > a);
        assert!(c >= a + SimDuration::for_transfer(big as u64, cfg.cluster_bus_bandwidth));
    }

    #[test]
    fn cu_serializes_one_nodes_sends() {
        let cfg = MachineConfig::default();
        let (mut ic, _) = setup(&cfg);
        let t0 = SimTime::from_millis(1);
        let route = Route::IntraCluster {
            cluster: ClusterId::new(0),
        };
        // Two tiny sends from the same node: CU setup serializes them even
        // though the bus is free.
        let a = ic.transfer(t0, NodeId::new(0), route, 16);
        let b = ic.transfer(t0, NodeId::new(0), route, 16);
        assert!(b >= a, "second send from same node cannot finish earlier");
        assert!(b >= t0 + cfg.cu_setup * 2);
    }

    #[test]
    fn bandwidth_scales_transfer_time() {
        let cfg = MachineConfig::default();
        let (mut ic, topo) = setup(&cfg);
        let t0 = SimTime::from_secs(1);
        let route = topo.route(NodeId::new(0), NodeId::new(1));
        let small = ic.transfer(t0, NodeId::new(0), route, 1_000);
        // Fresh interconnect to avoid queueing effects.
        let (mut ic2, _) = setup(&cfg);
        let large = ic2.transfer(t0, NodeId::new(0), route, 10_000_000);
        assert!(large - t0 > small - t0);
        // 10 MB at 320 MB/s total is at least 31 ms even on a free rail.
        assert!(large - t0 >= SimDuration::from_millis(31));
    }
}
