//! Interconnect timing model.
//!
//! Buses are modelled as *resources with earliest-availability times*: a
//! transfer occupies its resource from a start time (the later of "now +
//! setup" and "resource free") for `size / bandwidth`, and the resource's
//! next-free time advances accordingly. This captures queueing and
//! contention — in particular the communication hot-spot at the ray
//! tracer's master node — without simulating individual bus phases.
//!
//! Resources:
//!
//! * each node's **communication unit** (one outgoing DMA at a time);
//! * each cluster's **dual cluster-bus rails** (a transfer picks whichever
//!   rail frees first — the paper's fault-tolerant parallel buses double
//!   usable bandwidth);
//! * the **SUPRENUM-bus token ring** (shared, dual counter-rotating rings
//!   modelled as two rails; token acquisition and per-hop latencies added).

use des::time::{SimDuration, SimTime};

use crate::config::MachineConfig;
use crate::ids::NodeId;
use crate::topology::{Route, Topology};

/// A resource that can carry one transfer at a time.
#[derive(Debug, Clone, Default)]
struct Channel {
    next_free: SimTime,
}

impl Channel {
    /// Reserves the channel for `duration` starting no earlier than
    /// `earliest`; returns the actual `(start, end)`.
    fn reserve(&mut self, earliest: SimTime, duration: SimDuration) -> (SimTime, SimTime) {
        let start = earliest.max(self.next_free);
        let end = start + duration;
        self.next_free = end;
        (start, end)
    }
}

/// A bundle of parallel rails; a transfer takes whichever frees first.
#[derive(Debug, Clone)]
struct RailSet {
    rails: Vec<Channel>,
}

impl RailSet {
    fn new(rails: usize) -> Self {
        assert!(rails > 0, "need at least one rail");
        RailSet {
            rails: vec![Channel::default(); rails],
        }
    }

    fn reserve(&mut self, earliest: SimTime, duration: SimDuration) -> (SimTime, SimTime) {
        let best = self
            .rails
            .iter_mut()
            .min_by_key(|r| r.next_free)
            .expect("rail set is never empty");
        best.reserve(earliest, duration)
    }
}

/// The complete interconnect state of a machine.
#[derive(Debug)]
pub struct Interconnect {
    cfg: InterconnectParams,
    cu: Vec<Channel>,          // one per node
    cluster_bus: Vec<RailSet>, // one per cluster
    ring: RailSet,
    stats: InterconnectStats,
}

#[derive(Debug, Clone)]
struct InterconnectParams {
    cluster_bus_bandwidth: u64,
    cluster_bus_overhead: SimDuration,
    ring_bandwidth: u64,
    ring_token_latency: SimDuration,
    ring_hop_latency: SimDuration,
    cu_setup: SimDuration,
    local_message_latency: SimDuration,
}

/// Aggregate transfer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterconnectStats {
    /// Node-local deliveries.
    pub local_transfers: u64,
    /// Cluster-bus transfers.
    pub intra_cluster_transfers: u64,
    /// Token-ring (inter-cluster) transfers.
    pub inter_cluster_transfers: u64,
    /// Total payload bytes moved.
    pub bytes_moved: u64,
}

impl Interconnect {
    /// Builds the interconnect for a configuration.
    pub fn new(cfg: &MachineConfig, topo: &Topology) -> Self {
        Interconnect {
            cfg: InterconnectParams {
                cluster_bus_bandwidth: cfg.cluster_bus_bandwidth,
                cluster_bus_overhead: cfg.cluster_bus_overhead,
                ring_bandwidth: cfg.ring_bandwidth,
                ring_token_latency: cfg.ring_token_latency,
                ring_hop_latency: cfg.ring_hop_latency,
                cu_setup: cfg.cu_setup,
                local_message_latency: cfg.local_message_latency,
            },
            cu: (0..topo.total_nodes())
                .map(|_| Channel::default())
                .collect(),
            cluster_bus: (0..topo.clusters())
                .map(|_| RailSet::new(cfg.cluster_bus_rails as usize))
                .collect(),
            ring: RailSet::new(2), // dual counter-rotating rings
            stats: InterconnectStats::default(),
        }
    }

    /// Computes (and reserves capacity for) the delivery time of a
    /// message of `bytes` from `src` leaving at `now` along `route`.
    ///
    /// Returns the arrival time at the destination node.
    pub fn transfer(&mut self, now: SimTime, src: NodeId, route: Route, bytes: u32) -> SimTime {
        self.stats.bytes_moved += bytes as u64;
        match route {
            Route::Local => {
                self.stats.local_transfers += 1;
                now + self.cfg.local_message_latency
            }
            Route::IntraCluster { cluster } => {
                self.stats.intra_cluster_transfers += 1;
                // CU DMA setup, then one cluster-bus occupation.
                let (_, cu_done) = self.cu[src.index() as usize].reserve(now, self.cfg.cu_setup);
                let dur = SimDuration::for_transfer(bytes as u64, self.cfg.cluster_bus_bandwidth)
                    + self.cfg.cluster_bus_overhead;
                let (_, end) = self.cluster_bus[cluster.index() as usize].reserve(cu_done, dur);
                end
            }
            Route::InterCluster {
                src_cluster,
                dst_cluster,
                ring_hops,
            } => {
                self.stats.inter_cluster_transfers += 1;
                // Leg 1: node -> communication node over the source
                // cluster bus.
                let (_, cu_done) = self.cu[src.index() as usize].reserve(now, self.cfg.cu_setup);
                let leg = SimDuration::for_transfer(bytes as u64, self.cfg.cluster_bus_bandwidth)
                    + self.cfg.cluster_bus_overhead;
                let (_, l1_end) =
                    self.cluster_bus[src_cluster.index() as usize].reserve(cu_done, leg);
                // Leg 2: token ring, store-and-forward across hops.
                let ring_dur = self.cfg.ring_token_latency
                    + SimDuration::for_transfer(bytes as u64, self.cfg.ring_bandwidth)
                    + self.cfg.ring_hop_latency * ring_hops as u64;
                let (_, l2_end) = self.ring.reserve(l1_end, ring_dur);
                // Leg 3: communication node -> destination node.
                let (_, l3_end) =
                    self.cluster_bus[dst_cluster.index() as usize].reserve(l2_end, leg);
                l3_end
            }
        }
    }

    /// Transfer counters so far.
    pub fn stats(&self) -> InterconnectStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClusterId;

    fn setup(cfg: &MachineConfig) -> (Interconnect, Topology) {
        let topo = Topology::new(cfg);
        (Interconnect::new(cfg, &topo), topo)
    }

    #[test]
    fn local_is_cheapest() {
        let cfg = MachineConfig::default();
        let (mut ic, topo) = setup(&cfg);
        let t0 = SimTime::from_millis(1);
        let local = ic.transfer(
            t0,
            NodeId::new(0),
            topo.route(NodeId::new(0), NodeId::new(0)),
            1000,
        );
        let intra = ic.transfer(
            t0,
            NodeId::new(1),
            topo.route(NodeId::new(1), NodeId::new(2)),
            1000,
        );
        assert!(
            local < intra,
            "local {local} should beat intra-cluster {intra}"
        );
    }

    #[test]
    fn inter_cluster_is_slowest() {
        let cfg = MachineConfig::full_machine();
        let (mut ic, topo) = setup(&cfg);
        let t0 = SimTime::from_millis(1);
        let intra = ic.transfer(
            t0,
            NodeId::new(0),
            topo.route(NodeId::new(0), NodeId::new(1)),
            4096,
        );
        let inter = ic.transfer(
            t0,
            NodeId::new(2),
            topo.route(NodeId::new(2), NodeId::new(200)),
            4096,
        );
        assert!(inter > intra);
        assert_eq!(ic.stats().intra_cluster_transfers, 1);
        assert_eq!(ic.stats().inter_cluster_transfers, 1);
        assert_eq!(ic.stats().bytes_moved, 8192);
    }

    #[test]
    fn contention_queues_transfers() {
        let cfg = MachineConfig::default();
        let (mut ic, _) = setup(&cfg);
        let t0 = SimTime::from_millis(1);
        let route = Route::IntraCluster {
            cluster: ClusterId::new(0),
        };
        // Saturate both rails from different source nodes (distinct CUs),
        // then a third transfer must wait for a rail.
        let big = 1_000_000; // ~6.25ms per rail at 160MB/s
        let a = ic.transfer(t0, NodeId::new(0), route, big);
        let b = ic.transfer(t0, NodeId::new(1), route, big);
        let c = ic.transfer(t0, NodeId::new(2), route, big);
        // First two go in parallel on the two rails.
        assert_eq!(a, b);
        // Third queues behind one of them.
        assert!(c > a);
        assert!(c >= a + SimDuration::for_transfer(big as u64, cfg.cluster_bus_bandwidth));
    }

    #[test]
    fn cu_serializes_one_nodes_sends() {
        let cfg = MachineConfig::default();
        let (mut ic, _) = setup(&cfg);
        let t0 = SimTime::from_millis(1);
        let route = Route::IntraCluster {
            cluster: ClusterId::new(0),
        };
        // Two tiny sends from the same node: CU setup serializes them even
        // though the bus is free.
        let a = ic.transfer(t0, NodeId::new(0), route, 16);
        let b = ic.transfer(t0, NodeId::new(0), route, 16);
        assert!(b >= a, "second send from same node cannot finish earlier");
        assert!(b >= t0 + cfg.cu_setup * 2);
    }

    #[test]
    fn bandwidth_scales_transfer_time() {
        let cfg = MachineConfig::default();
        let (mut ic, topo) = setup(&cfg);
        let t0 = SimTime::from_secs(1);
        let route = topo.route(NodeId::new(0), NodeId::new(1));
        let small = ic.transfer(t0, NodeId::new(0), route, 1_000);
        // Fresh interconnect to avoid queueing effects.
        let (mut ic2, _) = setup(&cfg);
        let large = ic2.transfer(t0, NodeId::new(0), route, 10_000_000);
        assert!(large - t0 > small - t0);
        // 10 MB at 320 MB/s total is at least 31 ms even on a free rail.
        assert!(large - t0 >= SimDuration::from_millis(31));
    }
}
