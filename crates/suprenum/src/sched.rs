//! Pluggable per-node LWP scheduling policies.
//!
//! SUPRENUM's kernel scheduled light-weight processes with a
//! non-preemptive round-robin policy, and the paper's headline finding
//! — "asynchronous" mailboxes are effectively synchronous — is a direct
//! consequence of that choice: the mailbox LWP must *win the CPU*
//! before it can accept a message, and nothing ever takes the CPU away
//! from the running process. The analyzer proves statically that the
//! property collapses under preemption ([`AN-RACE-002`]/[`AN-RACE-004`]
//! witnesses, the `sched` model counterexample); this module lets the
//! simulator confirm those counterexamples *dynamically* by swapping
//! the policy out from under the kernel.
//!
//! The kernel sees a policy only through [`Scheduler`]: a ready-set it
//! may reorder, a [`Scheduler::pick_next`] decision, and two narrow
//! preemption hooks ([`Scheduler::time_slice`],
//! [`Scheduler::preempts`]) consulted exclusively while the running
//! user LWP is inside a timed compute section — kernel sections,
//! message routing, and display emissions stay atomic, mirroring the
//! real kernel's non-interruptible supervisor mode.
//!
//! Four policies ship:
//!
//! * [`RoundRobinScheduler`] — the stock machine. FIFO ready queue, no
//!   preemption. Bit-identical to the pre-trait kernel (the trace
//!   digest goldens gate this).
//! * [`PreemptiveScheduler`] — fixed priority (mailbox LWPs above user
//!   LWPs) with a configurable quantum. A mailbox arrival seizes the
//!   CPU from a computing user process, which is exactly the transition
//!   the static `sched` model adds under its preemptive toggle.
//! * [`CfsScheduler`] — a CFS-style weighted-fair policy: ready LWPs
//!   are picked by minimum virtual runtime with deterministic
//!   tie-breaking, sleepers are clamped to the floor on wakeup, and
//!   mailbox wakeups preempt like CFS wakeup preemption.
//! * [`FuzzScheduler`] — seeded concurrency fuzzing as a policy: wraps
//!   any base policy and perturbs its decisions (ready-pick shuffling,
//!   injected preemption points, random slices) from a [`DetRng`]
//!   stream. Deterministic per seed: each node owns a stream derived
//!   from the machine seed and the node index, so digests reproduce
//!   across worker counts and shard settings.
//!
//! [`AN-RACE-002`]: ../../analyzer/race/index.html
//! [`AN-RACE-004`]: ../../analyzer/race/index.html

use std::collections::{HashMap, VecDeque};
use std::fmt;

use des::rng::DetRng;
use des::time::{SimDuration, SimTime};

use crate::ids::{LwpId, NodeId};

/// Default preemption quantum for the preemptive and CFS policies.
///
/// 5 ms sits well above the kernel's context-switch cost (250 µs) —
/// so quantum churn does not drown the workload — and well below the
/// paper's compute phases, so preemption points actually land inside
/// them.
pub const DEFAULT_QUANTUM: SimDuration = SimDuration::from_millis(5);

/// The narrow view of per-node kernel state a [`Scheduler`] may consult.
///
/// Policies never see the process table, mailboxes, or message queues —
/// only where they are, what time it is, and who (if anyone) holds the
/// CPU. This keeps the trait boundary honest: a policy can reorder and
/// preempt, but cannot reach around the kernel.
#[derive(Debug, Clone, Copy)]
pub struct KernelCtx {
    /// The node this scheduler instance serves.
    pub node: NodeId,
    /// Current simulation time on this node's event loop.
    pub now: SimTime,
    /// The LWP currently holding the CPU, if any.
    pub running: Option<LwpId>,
}

/// A per-node LWP scheduling policy.
///
/// One instance exists per node; the kernel routes every ready-queue
/// mutation through it. Implementations must be deterministic functions
/// of their call sequence (plus, for [`FuzzScheduler`], a seeded RNG) —
/// trace digests are gated on cross-worker reproducibility.
pub trait Scheduler: Send {
    /// `lwp` became runnable and joins the ready set.
    fn on_ready(&mut self, lwp: LwpId, ctx: &KernelCtx);

    /// Pick and remove the next LWP to dispatch, or `None` if the ready
    /// set is empty.
    fn pick_next(&mut self, ctx: &KernelCtx) -> Option<LwpId>;

    /// `lwp` was granted the CPU (dispatch completed).
    fn on_run(&mut self, _lwp: LwpId, _ctx: &KernelCtx) {}

    /// `lwp` released the CPU: it blocked, yielded, exited, or was
    /// preempted. Not called for LWPs that never ran.
    fn on_block(&mut self, _lwp: LwpId, _ctx: &KernelCtx) {}

    /// CPU budget for the dispatch being granted; `None` means run
    /// until the LWP blocks (the stock kernel's behaviour). The kernel
    /// only enforces expiry inside timed compute sections.
    fn time_slice(&mut self, _lwp: LwpId, _ctx: &KernelCtx) -> Option<SimDuration> {
        None
    }

    /// Should `incoming`, which just became ready, preempt `running`?
    ///
    /// Consulted only while `running` is a **user** LWP inside a timed
    /// compute section and no dispatch is in flight; kernel sections
    /// and display emissions are atomic.
    fn preempts(&mut self, _running: LwpId, _incoming: LwpId, _ctx: &KernelCtx) -> bool {
        false
    }

    /// `true` if at least one LWP waits for the CPU.
    fn has_ready(&self) -> bool {
        self.ready_len() > 0
    }

    /// Number of LWPs waiting for the CPU.
    fn ready_len(&self) -> usize;

    /// Snapshot of the ready set in the policy's internal order.
    fn ready_lwps(&self) -> Vec<LwpId>;

    /// Remove `lwp` from the ready set out of band (the fuzz wrapper's
    /// steal hook). Returns `false` if it was not present.
    fn steal(&mut self, lwp: LwpId) -> bool;
}

/// Declarative scheduler selection, carried by
/// [`MachineConfig`](crate::config::MachineConfig) and threaded through
/// the pipeline, harness CLI, and artifacts.
///
/// The canonical [`name`](SchedulerKind::name) round-trips through
/// [`parse`](SchedulerKind::parse), so artifacts can record the string
/// and comparisons can match on it.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum SchedulerKind {
    /// Non-preemptive FIFO round-robin — the stock SUPRENUM kernel.
    #[default]
    RoundRobin,
    /// Fixed-priority (mailbox over user) with quantum preemption.
    Preemptive {
        /// Time slice granted to user LWPs.
        quantum: SimDuration,
    },
    /// CFS-style minimum-vruntime policy with wakeup preemption.
    Cfs {
        /// Time slice granted to user LWPs.
        quantum: SimDuration,
    },
    /// Seeded fuzzing wrapper perturbing a base policy's decisions.
    Fuzz {
        /// The policy whose decisions are perturbed.
        base: Box<SchedulerKind>,
        /// Seed for the perturbation stream (combined with the machine
        /// seed and node index, so distinct nodes draw independently).
        seed: u64,
    },
}

impl SchedulerKind {
    /// Canonical textual name: `rr`, `preempt:<quantum_us>`,
    /// `cfs:<quantum_us>`, or `fuzz:<base>:<seed>`. Round-trips through
    /// [`parse`](SchedulerKind::parse) and is the identity recorded in
    /// harness artifacts.
    pub fn name(&self) -> String {
        match self {
            SchedulerKind::RoundRobin => "rr".to_owned(),
            SchedulerKind::Preemptive { quantum } => {
                format!("preempt:{}", quantum.as_nanos() / 1_000)
            }
            SchedulerKind::Cfs { quantum } => format!("cfs:{}", quantum.as_nanos() / 1_000),
            SchedulerKind::Fuzz { base, seed } => format!("fuzz:{}:{seed}", base.name()),
        }
    }

    /// Parses a scheduler spec as accepted by the `--scheduler` CLI
    /// knob:
    ///
    /// * `rr` (or `round-robin`)
    /// * `preempt` / `preempt:<quantum_us>`
    /// * `cfs` / `cfs:<quantum_us>`
    /// * `fuzz` / `fuzz:<base>` / `fuzz:<base>:<seed>` — the trailing
    ///   integer is the seed, so a base with its own quantum needs the
    ///   seed spelled out (`fuzz:preempt:5000:7`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown policies, malformed
    /// quantums/seeds, or nested fuzz wrappers.
    pub fn parse(spec: &str) -> Result<SchedulerKind, String> {
        let (head, rest) = match spec.split_once(':') {
            Some((h, r)) => (h, Some(r)),
            None => (spec, None),
        };
        let quantum_of = |rest: Option<&str>| -> Result<SimDuration, String> {
            match rest {
                None => Ok(DEFAULT_QUANTUM),
                Some(us) => us
                    .parse::<u64>()
                    .map(SimDuration::from_micros)
                    .map_err(|_| format!("bad quantum '{us}' (want microseconds)")),
            }
        };
        match head {
            "rr" | "round-robin" => match rest {
                None => Ok(SchedulerKind::RoundRobin),
                Some(r) => Err(format!("round-robin takes no parameter (got '{r}')")),
            },
            "preempt" | "priority" => Ok(SchedulerKind::Preemptive {
                quantum: quantum_of(rest)?,
            }),
            "cfs" => Ok(SchedulerKind::Cfs {
                quantum: quantum_of(rest)?,
            }),
            "fuzz" => {
                let (base, seed) = match rest {
                    None => (SchedulerKind::RoundRobin, 0),
                    Some(r) => match r.rsplit_once(':') {
                        Some((base, seed)) if seed.parse::<u64>().is_ok() => (
                            SchedulerKind::parse(base)?,
                            seed.parse::<u64>().expect("checked above"),
                        ),
                        _ => (SchedulerKind::parse(r)?, 0),
                    },
                };
                if matches!(base, SchedulerKind::Fuzz { .. }) {
                    return Err("fuzz wrappers do not nest".to_owned());
                }
                Ok(SchedulerKind::Fuzz {
                    base: Box::new(base),
                    seed,
                })
            }
            other => Err(format!(
                "unknown scheduler '{other}' (want rr, preempt[:us], cfs[:us], or fuzz[:base[:seed]])"
            )),
        }
    }

    /// `true` for every policy that can take the CPU away from a
    /// running user LWP — everything except the stock round-robin.
    pub fn is_preemptive(&self) -> bool {
        !matches!(self, SchedulerKind::RoundRobin)
    }

    /// The fuzz seed, when this is a fuzz wrapper.
    pub fn fuzz_seed(&self) -> Option<u64> {
        match self {
            SchedulerKind::Fuzz { seed, .. } => Some(*seed),
            _ => None,
        }
    }

    /// Validates the selection (no nested fuzz wrappers, non-zero
    /// quantums).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message describing the first problem.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            SchedulerKind::RoundRobin => Ok(()),
            SchedulerKind::Preemptive { quantum } | SchedulerKind::Cfs { quantum } => {
                if quantum.is_zero() {
                    Err("scheduler quantum must be non-zero".to_owned())
                } else {
                    Ok(())
                }
            }
            SchedulerKind::Fuzz { base, .. } => {
                if matches!(**base, SchedulerKind::Fuzz { .. }) {
                    Err("fuzz wrappers do not nest".to_owned())
                } else {
                    base.validate()
                }
            }
        }
    }

    /// Builds one per-node policy instance. `rng` seeds the fuzz
    /// wrapper's perturbation stream and is ignored by deterministic
    /// policies; the kernel derives it from the machine seed and the
    /// global node index.
    pub fn build(&self, rng: DetRng) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::RoundRobin => Box::new(RoundRobinScheduler::new()),
            SchedulerKind::Preemptive { quantum } => Box::new(PreemptiveScheduler::new(*quantum)),
            SchedulerKind::Cfs { quantum } => Box::new(CfsScheduler::new(*quantum)),
            SchedulerKind::Fuzz { base, seed } => Box::new(FuzzScheduler::new(
                base.build(rng.derive("fuzz-base")),
                rng.derive_indexed("fuzz", *seed),
            )),
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// The stock SUPRENUM policy: FIFO ready queue, no preemption.
///
/// Every hook is the identity the pre-trait kernel hard-wired, so runs
/// under this policy are bit-identical to the pre-refactor goldens.
#[derive(Debug, Default)]
pub struct RoundRobinScheduler {
    ready: VecDeque<LwpId>,
}

impl RoundRobinScheduler {
    /// Creates an empty round-robin ready queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn on_ready(&mut self, lwp: LwpId, _ctx: &KernelCtx) {
        self.ready.push_back(lwp);
    }

    fn pick_next(&mut self, _ctx: &KernelCtx) -> Option<LwpId> {
        self.ready.pop_front()
    }

    fn ready_len(&self) -> usize {
        self.ready.len()
    }

    fn ready_lwps(&self) -> Vec<LwpId> {
        self.ready.iter().copied().collect()
    }

    fn steal(&mut self, lwp: LwpId) -> bool {
        match self.ready.iter().position(|&l| l == lwp) {
            Some(idx) => {
                self.ready.remove(idx);
                true
            }
            None => false,
        }
    }
}

/// Fixed-priority preemptive policy: mailbox LWPs outrank user LWPs,
/// and a mailbox arrival seizes the CPU from a computing user process.
///
/// This is precisely the scheduler the static `sched` model's
/// preemptive toggle describes — under it the kernel no longer keeps
/// the sender blocked until the receiver's mailbox wins the CPU
/// round-robin style, so the paper's effective-synchrony property
/// collapses and the AN-RACE-004 monitoring interleaving becomes
/// observable in recorded traces.
#[derive(Debug)]
pub struct PreemptiveScheduler {
    quantum: SimDuration,
    ready: VecDeque<LwpId>,
}

impl PreemptiveScheduler {
    /// Creates the policy with the given user-LWP quantum.
    pub fn new(quantum: SimDuration) -> Self {
        PreemptiveScheduler {
            quantum,
            ready: VecDeque::new(),
        }
    }
}

impl Scheduler for PreemptiveScheduler {
    fn on_ready(&mut self, lwp: LwpId, _ctx: &KernelCtx) {
        self.ready.push_back(lwp);
    }

    fn pick_next(&mut self, _ctx: &KernelCtx) -> Option<LwpId> {
        match self.ready.iter().position(|l| l.is_mailbox()) {
            Some(idx) => self.ready.remove(idx),
            None => self.ready.pop_front(),
        }
    }

    fn time_slice(&mut self, lwp: LwpId, _ctx: &KernelCtx) -> Option<SimDuration> {
        (!lwp.is_mailbox()).then_some(self.quantum)
    }

    fn preempts(&mut self, running: LwpId, incoming: LwpId, _ctx: &KernelCtx) -> bool {
        incoming.is_mailbox() && !running.is_mailbox()
    }

    fn ready_len(&self) -> usize {
        self.ready.len()
    }

    fn ready_lwps(&self) -> Vec<LwpId> {
        self.ready.iter().copied().collect()
    }

    fn steal(&mut self, lwp: LwpId) -> bool {
        match self.ready.iter().position(|&l| l == lwp) {
            Some(idx) => {
                self.ready.remove(idx);
                true
            }
            None => false,
        }
    }
}

/// CFS-style policy: pick the ready LWP with the minimum virtual
/// runtime, deterministic tie-break by enqueue order.
///
/// Virtual runtime is charged wall-clock (all weights equal) between
/// [`Scheduler::on_run`] and [`Scheduler::on_block`]. Wakers are
/// clamped to the policy's monotonic vruntime floor so long sleepers
/// cannot monopolise the CPU afterwards, and a waking mailbox LWP
/// preempts a computing user LWP — CFS wakeup preemption, which keeps
/// this policy in the same preemptive family as
/// [`PreemptiveScheduler`] for race-model purposes.
#[derive(Debug)]
pub struct CfsScheduler {
    quantum: SimDuration,
    /// Ready set with enqueue sequence numbers for deterministic ties.
    ready: Vec<(LwpId, u64)>,
    /// Accumulated virtual runtime per LWP, surviving blocks.
    vruntime: HashMap<LwpId, u64>,
    /// `(lwp, since)` while an LWP holds the CPU.
    run_start: Option<(LwpId, SimTime)>,
    /// Monotonic floor: new and waking LWPs never enqueue below this.
    min_vruntime: u64,
    next_seq: u64,
}

impl CfsScheduler {
    /// Creates the policy with the given user-LWP quantum.
    pub fn new(quantum: SimDuration) -> Self {
        CfsScheduler {
            quantum,
            ready: Vec::new(),
            vruntime: HashMap::new(),
            run_start: None,
            min_vruntime: 0,
            next_seq: 0,
        }
    }

    fn vrt(&self, lwp: LwpId) -> u64 {
        self.vruntime
            .get(&lwp)
            .copied()
            .unwrap_or(self.min_vruntime)
    }
}

impl Scheduler for CfsScheduler {
    fn on_ready(&mut self, lwp: LwpId, _ctx: &KernelCtx) {
        let clamped = self.vrt(lwp).max(self.min_vruntime);
        self.vruntime.insert(lwp, clamped);
        self.ready.push((lwp, self.next_seq));
        self.next_seq += 1;
    }

    fn pick_next(&mut self, _ctx: &KernelCtx) -> Option<LwpId> {
        let best = self
            .ready
            .iter()
            .enumerate()
            .min_by_key(|(_, &(lwp, seq))| (self.vrt(lwp), seq))
            .map(|(idx, _)| idx)?;
        let (lwp, _) = self.ready.remove(best);
        self.min_vruntime = self.min_vruntime.max(self.vrt(lwp));
        Some(lwp)
    }

    fn on_run(&mut self, lwp: LwpId, ctx: &KernelCtx) {
        self.run_start = Some((lwp, ctx.now));
    }

    fn on_block(&mut self, lwp: LwpId, ctx: &KernelCtx) {
        if let Some((running, since)) = self.run_start.take() {
            if running == lwp {
                let charge = (ctx.now - since).as_nanos();
                *self.vruntime.entry(lwp).or_insert(self.min_vruntime) += charge;
            } else {
                self.run_start = Some((running, since));
            }
        }
    }

    fn time_slice(&mut self, lwp: LwpId, _ctx: &KernelCtx) -> Option<SimDuration> {
        (!lwp.is_mailbox()).then_some(self.quantum)
    }

    fn preempts(&mut self, running: LwpId, incoming: LwpId, _ctx: &KernelCtx) -> bool {
        incoming.is_mailbox() && !running.is_mailbox()
    }

    fn ready_len(&self) -> usize {
        self.ready.len()
    }

    fn ready_lwps(&self) -> Vec<LwpId> {
        self.ready.iter().map(|&(lwp, _)| lwp).collect()
    }

    fn steal(&mut self, lwp: LwpId) -> bool {
        match self.ready.iter().position(|&(l, _)| l == lwp) {
            Some(idx) => {
                self.ready.remove(idx);
                true
            }
            None => false,
        }
    }
}

/// Probability the fuzz wrapper overrides the base policy's pick with a
/// uniformly random ready LWP.
const FUZZ_SHUFFLE_P: f64 = 0.25;
/// Probability an injected preemption point fires on a wakeup the base
/// policy would let run to completion.
const FUZZ_PREEMPT_P: f64 = 0.125;
/// Probability a dispatch the base policy left unbounded gets a random
/// time slice.
const FUZZ_SLICE_P: f64 = 0.25;

/// Seeded concurrency fuzzing as a first-class policy.
///
/// Wraps any base policy and perturbs its decisions from a [`DetRng`]
/// stream: ready-queue picks are shuffled, preemption points are
/// injected on wakeups, and random time slices bound dispatches the
/// base left unbounded. Every perturbation is a pure function of the
/// (machine seed, fuzz seed, node index) stream and the per-node call
/// sequence — which the engine keeps deterministic across worker
/// counts — so a fuzz run's trace digest reproduces exactly for a given
/// seed.
pub struct FuzzScheduler {
    base: Box<dyn Scheduler>,
    rng: DetRng,
}

impl FuzzScheduler {
    /// Wraps `base`, drawing perturbations from `rng`.
    pub fn new(base: Box<dyn Scheduler>, rng: DetRng) -> Self {
        FuzzScheduler { base, rng }
    }
}

impl fmt::Debug for FuzzScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FuzzScheduler")
            .field("seed", &self.rng.seed())
            .finish_non_exhaustive()
    }
}

impl Scheduler for FuzzScheduler {
    fn on_ready(&mut self, lwp: LwpId, ctx: &KernelCtx) {
        self.base.on_ready(lwp, ctx);
    }

    fn pick_next(&mut self, ctx: &KernelCtx) -> Option<LwpId> {
        let len = self.base.ready_len();
        if len > 1 && self.rng.uniform() < FUZZ_SHUFFLE_P {
            let victims = self.base.ready_lwps();
            let pick = victims[self.rng.uniform_u64(0, victims.len() as u64) as usize];
            if self.base.steal(pick) {
                return Some(pick);
            }
        }
        self.base.pick_next(ctx)
    }

    fn on_run(&mut self, lwp: LwpId, ctx: &KernelCtx) {
        self.base.on_run(lwp, ctx);
    }

    fn on_block(&mut self, lwp: LwpId, ctx: &KernelCtx) {
        self.base.on_block(lwp, ctx);
    }

    fn time_slice(&mut self, lwp: LwpId, ctx: &KernelCtx) -> Option<SimDuration> {
        match self.base.time_slice(lwp, ctx) {
            Some(q) => Some(q),
            None if !lwp.is_mailbox() && self.rng.uniform() < FUZZ_SLICE_P => {
                Some(SimDuration::from_micros(self.rng.uniform_u64(500, 8_000)))
            }
            None => None,
        }
    }

    fn preempts(&mut self, running: LwpId, incoming: LwpId, ctx: &KernelCtx) -> bool {
        // Draw unconditionally so the stream does not depend on the
        // base policy's answer.
        let injected = self.rng.uniform() < FUZZ_PREEMPT_P;
        self.base.preempts(running, incoming, ctx) || (injected && !running.is_mailbox())
    }

    fn ready_len(&self) -> usize {
        self.base.ready_len()
    }

    fn ready_lwps(&self) -> Vec<LwpId> {
        self.base.ready_lwps()
    }

    fn steal(&mut self, lwp: LwpId) -> bool {
        self.base.steal(lwp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcessId;

    fn ctx() -> KernelCtx {
        KernelCtx {
            node: NodeId::new(0),
            now: SimTime::ZERO,
            running: None,
        }
    }

    fn user(raw: u32) -> LwpId {
        LwpId::User(ProcessId::new(raw))
    }

    fn mbox(raw: u32) -> LwpId {
        LwpId::Mailbox(ProcessId::new(raw))
    }

    #[test]
    fn names_round_trip_through_parse() {
        let kinds = [
            SchedulerKind::RoundRobin,
            SchedulerKind::Preemptive {
                quantum: SimDuration::from_micros(5_000),
            },
            SchedulerKind::Cfs {
                quantum: SimDuration::from_micros(1_250),
            },
            SchedulerKind::Fuzz {
                base: Box::new(SchedulerKind::Preemptive {
                    quantum: SimDuration::from_micros(5_000),
                }),
                seed: 7,
            },
        ];
        for kind in kinds {
            let reparsed = SchedulerKind::parse(&kind.name()).expect("canonical name parses");
            assert_eq!(reparsed, kind, "{} did not round-trip", kind.name());
        }
    }

    #[test]
    fn parse_accepts_shorthand() {
        assert_eq!(
            SchedulerKind::parse("rr").unwrap(),
            SchedulerKind::RoundRobin
        );
        assert_eq!(
            SchedulerKind::parse("preempt").unwrap(),
            SchedulerKind::Preemptive {
                quantum: DEFAULT_QUANTUM
            }
        );
        assert_eq!(
            SchedulerKind::parse("cfs:250").unwrap(),
            SchedulerKind::Cfs {
                quantum: SimDuration::from_micros(250)
            }
        );
        assert_eq!(
            SchedulerKind::parse("fuzz").unwrap(),
            SchedulerKind::Fuzz {
                base: Box::new(SchedulerKind::RoundRobin),
                seed: 0
            }
        );
        assert_eq!(
            SchedulerKind::parse("fuzz:cfs:9").unwrap(),
            SchedulerKind::Fuzz {
                base: Box::new(SchedulerKind::Cfs {
                    quantum: DEFAULT_QUANTUM
                }),
                seed: 9
            }
        );
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert!(SchedulerKind::parse("fifo").is_err());
        assert!(SchedulerKind::parse("preempt:abc").is_err());
        assert!(SchedulerKind::parse("fuzz:fuzz:rr:1").is_err());
        assert!(SchedulerKind::parse("rr:5").is_err());
    }

    #[test]
    fn validate_rejects_zero_quantum() {
        assert!(SchedulerKind::Preemptive {
            quantum: SimDuration::ZERO
        }
        .validate()
        .is_err());
        assert!(SchedulerKind::default().validate().is_ok());
    }

    #[test]
    fn round_robin_is_fifo_and_never_preempts() {
        let mut s = RoundRobinScheduler::new();
        let c = ctx();
        s.on_ready(user(1), &c);
        s.on_ready(mbox(2), &c);
        s.on_ready(user(3), &c);
        assert_eq!(s.time_slice(user(1), &c), None);
        assert!(!s.preempts(user(1), mbox(2), &c));
        assert_eq!(s.pick_next(&c), Some(user(1)));
        assert_eq!(s.pick_next(&c), Some(mbox(2)));
        assert_eq!(s.pick_next(&c), Some(user(3)));
        assert_eq!(s.pick_next(&c), None);
    }

    #[test]
    fn preemptive_prioritises_mailboxes() {
        let mut s = PreemptiveScheduler::new(DEFAULT_QUANTUM);
        let c = ctx();
        s.on_ready(user(1), &c);
        s.on_ready(mbox(2), &c);
        assert_eq!(s.pick_next(&c), Some(mbox(2)), "mailbox outranks user");
        assert_eq!(s.pick_next(&c), Some(user(1)));
        assert!(s.preempts(user(1), mbox(2), &c));
        assert!(!s.preempts(mbox(2), mbox(3), &c));
        assert_eq!(s.time_slice(user(1), &c), Some(DEFAULT_QUANTUM));
        assert_eq!(s.time_slice(mbox(2), &c), None);
    }

    #[test]
    fn cfs_picks_minimum_vruntime_with_stable_ties() {
        let mut s = CfsScheduler::new(DEFAULT_QUANTUM);
        let c = ctx();
        s.on_ready(user(1), &c);
        s.on_ready(user(2), &c);
        // Equal vruntime: enqueue order breaks the tie.
        assert_eq!(s.pick_next(&c), Some(user(1)));
        s.on_run(user(1), &c);
        let later = KernelCtx {
            now: SimTime::from_millis(10),
            ..c
        };
        s.on_block(user(1), &later);
        s.on_ready(user(1), &later);
        // User 1 accumulated 10ms of vruntime; user 2 has none.
        assert_eq!(s.pick_next(&later), Some(user(2)));
    }

    #[test]
    fn fuzz_is_deterministic_per_seed_and_diverges_across_seeds() {
        let run = |seed: u64| -> Vec<LwpId> {
            let kind = SchedulerKind::Fuzz {
                base: Box::new(SchedulerKind::RoundRobin),
                seed,
            };
            let mut s = kind.build(DetRng::new(42).derive_indexed("sched", 0));
            let c = ctx();
            let mut picked = Vec::new();
            for round in 0..64u32 {
                s.on_ready(user(round * 2 + 1), &c);
                s.on_ready(mbox(round * 2 + 2), &c);
                picked.extend(s.pick_next(&c));
                picked.extend(s.pick_next(&c));
            }
            picked
        };
        assert_eq!(run(7), run(7), "same seed must replay identically");
        assert_ne!(run(7), run(8), "different seeds should perturb picks");
    }
}
