//! Hardware signal logs observable from outside the machine.
//!
//! These are the streams an external hardware monitor can probe without
//! perturbing the object system: every pattern written to each node's
//! seven-segment display and every byte leaving each node's V.24 terminal
//! interface, with exact (true) global timestamps. The ZM4 simulation
//! consumes these logs; nothing inside the machine reads them back.

use des::time::SimTime;
use hybridmon::Pattern;

use crate::ids::NodeId;

/// One pattern written to a node's seven-segment display.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisplayWrite {
    /// True global time of the write.
    pub time: SimTime,
    /// The node whose display was written.
    pub node: NodeId,
    /// The pattern shown.
    pub pattern: Pattern,
}

/// One byte transmitted on a node's V.24 terminal interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TerminalWrite {
    /// True global time the byte finished transmitting.
    pub time: SimTime,
    /// The transmitting node.
    pub node: NodeId,
    /// The byte value.
    pub byte: u8,
}

/// All externally probed signals of one run.
#[derive(Debug, Clone, Default)]
pub struct SignalLog {
    display: Vec<DisplayWrite>,
    terminal: Vec<TerminalWrite>,
}

impl SignalLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        SignalLog::default()
    }

    /// Records a display write.
    pub fn push_display(&mut self, write: DisplayWrite) {
        self.display.push(write);
    }

    /// Records a terminal byte.
    pub fn push_terminal(&mut self, write: TerminalWrite) {
        self.terminal.push(write);
    }

    /// All display writes in emission order.
    pub fn display_writes(&self) -> &[DisplayWrite] {
        &self.display
    }

    /// All terminal bytes in emission order.
    pub fn terminal_writes(&self) -> &[TerminalWrite] {
        &self.terminal
    }

    /// Display writes of one node, in time order.
    pub fn display_writes_for(&self, node: NodeId) -> Vec<DisplayWrite> {
        let mut v: Vec<DisplayWrite> = self
            .display
            .iter()
            .copied()
            .filter(|w| w.node == node)
            .collect();
        v.sort_by_key(|w| w.time);
        v
    }

    /// Moves every record of `other` into this log. Used when merging
    /// per-cluster partitions after a sharded run; callers re-establish
    /// global time order with [`sort`](Self::sort) afterwards.
    pub fn absorb(&mut self, other: &mut SignalLog) {
        self.display.append(&mut other.display);
        self.terminal.append(&mut other.terminal);
    }

    /// Sorts both logs by time. The kernel emits display writes of one
    /// `hybrid_mon` call with increasing future timestamps, so logs from
    /// concurrent nodes interleave; sorting restores global time order.
    pub fn sort(&mut self) {
        self.display.sort_by_key(|w| w.time);
        self.terminal.sort_by_key(|w| w.time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dw(ns: u64, node: u16, pattern: u8) -> DisplayWrite {
        DisplayWrite {
            time: SimTime::from_nanos(ns),
            node: NodeId::new(node),
            pattern: Pattern::new(pattern).unwrap(),
        }
    }

    #[test]
    fn filter_by_node_sorts() {
        let mut log = SignalLog::new();
        log.push_display(dw(30, 0, 1));
        log.push_display(dw(10, 1, 2));
        log.push_display(dw(20, 0, 3));
        let n0 = log.display_writes_for(NodeId::new(0));
        assert_eq!(n0.len(), 2);
        assert!(n0[0].time < n0[1].time);
        assert_eq!(log.display_writes_for(NodeId::new(1)).len(), 1);
        assert!(log.display_writes_for(NodeId::new(9)).is_empty());
    }

    #[test]
    fn sort_orders_globally() {
        let mut log = SignalLog::new();
        log.push_display(dw(30, 0, 1));
        log.push_display(dw(10, 1, 2));
        log.push_terminal(TerminalWrite {
            time: SimTime::from_nanos(5),
            node: NodeId::new(0),
            byte: 0xAA,
        });
        log.sort();
        assert_eq!(log.display_writes()[0].time, SimTime::from_nanos(10));
        assert_eq!(log.terminal_writes()[0].byte, 0xAA);
    }
}
