//! Ground-truth process state recording.
//!
//! The kernel records every true process state transition with exact
//! global time. A real SUPRENUM offers no such oracle — that is the whole
//! point of the paper — but the simulator can use it to *validate* the
//! monitoring pipeline: activities derived from the hybrid-monitoring
//! trace must agree with the ground truth up to instrumentation
//! granularity. This also implements the paper's stated future work of
//! instrumenting the operating system itself (scheduler states are
//! exactly what they wanted to see).

use std::collections::BTreeMap;

use des::time::{SimDuration, SimTime};

use crate::ids::{NodeId, ProcessId};

/// Why a process is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockReason {
    /// Waiting for a synchronous send to be accepted.
    SendSync,
    /// Waiting for a mailbox send to be accepted by the remote mailbox
    /// LWP.
    MailboxSend,
    /// Waiting in a synchronous receive.
    Recv,
    /// Waiting on an empty mailbox.
    MailboxRecv,
    /// Sleeping for a fixed time.
    Sleep,
    /// Waiting for a disk write.
    Disk,
    /// Waiting on a condition variable.
    Cond,
}

/// True scheduler state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcState {
    /// Runnable, waiting in the ready queue.
    Ready,
    /// Executing on the CPU.
    Running,
    /// Blocked for the given reason.
    Blocked(BlockReason),
    /// Terminated.
    Exited,
}

impl ProcState {
    /// Short state name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ProcState::Ready => "ready",
            ProcState::Running => "running",
            ProcState::Blocked(BlockReason::SendSync) => "blocked:send",
            ProcState::Blocked(BlockReason::MailboxSend) => "blocked:mbox-send",
            ProcState::Blocked(BlockReason::Recv) => "blocked:recv",
            ProcState::Blocked(BlockReason::MailboxRecv) => "blocked:mbox-recv",
            ProcState::Blocked(BlockReason::Sleep) => "blocked:sleep",
            ProcState::Blocked(BlockReason::Disk) => "blocked:disk",
            ProcState::Blocked(BlockReason::Cond) => "blocked:cond",
            ProcState::Exited => "exited",
        }
    }
}

/// One recorded state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// When the process entered `state`.
    pub time: SimTime,
    /// The state entered.
    pub state: ProcState,
}

/// Per-process metadata and state history.
#[derive(Debug, Clone)]
pub struct ProcHistory {
    /// The node the process ran on.
    pub node: NodeId,
    /// The process label (from [`crate::Process::label`]).
    pub label: String,
    /// Chronological state transitions.
    pub transitions: Vec<Transition>,
}

impl ProcHistory {
    /// Total time spent in states matching `pred`, up to `end`.
    pub fn time_in<F>(&self, end: SimTime, pred: F) -> SimDuration
    where
        F: Fn(ProcState) -> bool,
    {
        let mut total = SimDuration::ZERO;
        for pair in self.transitions.windows(2) {
            if pred(pair[0].state) {
                total += pair[1].time.min(end).saturating_since(pair[0].time);
            }
        }
        if let Some(last) = self.transitions.last() {
            if pred(last.state) {
                total += end.saturating_since(last.time);
            }
        }
        total
    }

    /// The state at time `t`, if the process existed then.
    pub fn state_at(&self, t: SimTime) -> Option<ProcState> {
        let idx = self.transitions.partition_point(|tr| tr.time <= t);
        idx.checked_sub(1).map(|i| self.transitions[i].state)
    }
}

/// Ground-truth recorder for all processes of a run.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    procs: BTreeMap<ProcessId, ProcHistory>,
}

impl GroundTruth {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        GroundTruth::default()
    }

    /// Registers a process at creation time.
    ///
    /// # Panics
    ///
    /// Panics if the process was already registered.
    pub fn register(&mut self, pid: ProcessId, node: NodeId, label: String, now: SimTime) {
        let prev = self.procs.insert(
            pid,
            ProcHistory {
                node,
                label,
                transitions: vec![Transition {
                    time: now,
                    state: ProcState::Ready,
                }],
            },
        );
        assert!(prev.is_none(), "process {pid} registered twice");
    }

    /// Records that `pid` entered `state` at `now`. Consecutive duplicate
    /// states are coalesced.
    pub fn record(&mut self, pid: ProcessId, now: SimTime, state: ProcState) {
        let hist = self
            .procs
            .get_mut(&pid)
            .expect("state recorded for unregistered process");
        if hist.transitions.last().map(|t| t.state) == Some(state) {
            return;
        }
        debug_assert!(
            hist.transitions.last().is_none_or(|t| t.time <= now),
            "ground-truth time went backwards"
        );
        hist.transitions.push(Transition { time: now, state });
    }

    /// Moves every process history of `other` into this recorder. Used
    /// when merging per-cluster partitions after a sharded run; the
    /// partitions own disjoint pid namespaces.
    ///
    /// # Panics
    ///
    /// Panics if a pid is present in both recorders.
    pub fn absorb(&mut self, other: &mut GroundTruth) {
        for (pid, hist) in std::mem::take(&mut other.procs) {
            let prev = self.procs.insert(pid, hist);
            assert!(prev.is_none(), "process {pid} recorded in two partitions");
        }
    }

    /// History of one process.
    pub fn history(&self, pid: ProcessId) -> Option<&ProcHistory> {
        self.procs.get(&pid)
    }

    /// Iterates over all `(pid, history)` pairs in pid order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &ProcHistory)> {
        self.procs.iter().map(|(&p, h)| (p, h))
    }

    /// Number of processes seen.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Returns `true` if no process was registered.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u32) -> ProcessId {
        ProcessId::new(n)
    }

    #[test]
    fn records_and_coalesces() {
        let mut gt = GroundTruth::new();
        gt.register(pid(1), NodeId::new(0), "m".into(), SimTime::ZERO);
        gt.record(pid(1), SimTime::from_micros(10), ProcState::Running);
        gt.record(pid(1), SimTime::from_micros(10), ProcState::Running); // duplicate
        gt.record(
            pid(1),
            SimTime::from_micros(30),
            ProcState::Blocked(BlockReason::Recv),
        );
        let h = gt.history(pid(1)).unwrap();
        assert_eq!(h.transitions.len(), 3);
        assert_eq!(h.label, "m");
    }

    #[test]
    fn time_in_running() {
        let mut gt = GroundTruth::new();
        gt.register(pid(1), NodeId::new(0), "m".into(), SimTime::ZERO);
        gt.record(pid(1), SimTime::from_micros(10), ProcState::Running);
        gt.record(pid(1), SimTime::from_micros(30), ProcState::Ready);
        gt.record(pid(1), SimTime::from_micros(40), ProcState::Running);
        let h = gt.history(pid(1)).unwrap();
        // Running 10..30 plus 40..50 against end=50.
        let t = h.time_in(SimTime::from_micros(50), |s| s == ProcState::Running);
        assert_eq!(t, SimDuration::from_micros(30));
    }

    #[test]
    fn state_at_lookup() {
        let mut gt = GroundTruth::new();
        gt.register(pid(2), NodeId::new(1), "s".into(), SimTime::from_micros(5));
        gt.record(pid(2), SimTime::from_micros(10), ProcState::Running);
        let h = gt.history(pid(2)).unwrap();
        assert_eq!(h.state_at(SimTime::from_micros(3)), None);
        assert_eq!(h.state_at(SimTime::from_micros(7)), Some(ProcState::Ready));
        assert_eq!(
            h.state_at(SimTime::from_micros(10)),
            Some(ProcState::Running)
        );
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_register_panics() {
        let mut gt = GroundTruth::new();
        gt.register(pid(1), NodeId::new(0), "a".into(), SimTime::ZERO);
        gt.register(pid(1), NodeId::new(0), "b".into(), SimTime::ZERO);
    }

    #[test]
    fn state_names_are_distinct() {
        use std::collections::HashSet;
        let states = [
            ProcState::Ready,
            ProcState::Running,
            ProcState::Blocked(BlockReason::SendSync),
            ProcState::Blocked(BlockReason::MailboxSend),
            ProcState::Blocked(BlockReason::Recv),
            ProcState::Blocked(BlockReason::MailboxRecv),
            ProcState::Blocked(BlockReason::Sleep),
            ProcState::Blocked(BlockReason::Disk),
            ProcState::Blocked(BlockReason::Cond),
            ProcState::Exited,
        ];
        let names: HashSet<&str> = states.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), states.len());
    }
}
