//! The process programming model.
//!
//! SUPRENUM user programs consist of processes that compute, exchange
//! messages (synchronously or through mailboxes) and may create further
//! processes. The simulator expresses a process as a resumable state
//! machine: the kernel calls [`Process::resume`] with the reason the
//! process woke up ([`Resume`]) and the process answers with its next
//! action ([`Action`]). Actions that take simulated time (compute, I/O,
//! blocking communication) suspend the process until the kernel resumes
//! it again.
//!
//! This is the classic "process = explicit continuation" encoding of
//! discrete-event simulation; it keeps the whole machine single-threaded
//! and deterministic.
//!
//! # Examples
//!
//! A process that computes for 1 ms, emits a monitoring event, and exits:
//!
//! ```
//! use des::time::SimDuration;
//! use suprenum::{Action, ProcCtx, Process, Resume};
//!
//! struct OneShot {
//!     step: u8,
//! }
//!
//! impl Process for OneShot {
//!     fn resume(&mut self, _ctx: &ProcCtx, _why: Resume) -> Action {
//!         self.step += 1;
//!         match self.step {
//!             1 => Action::Compute(SimDuration::from_millis(1)),
//!             2 => Action::Emit { token: 0x10, param: 0 },
//!             _ => Action::Exit,
//!         }
//!     }
//! }
//! ```

use des::time::{SimDuration, SimTime};

use crate::ids::{CondId, NodeId, ProcessId};
use crate::message::Message;

/// Read-only context the kernel passes to every [`Process::resume`] call.
#[derive(Debug, Clone, Copy)]
pub struct ProcCtx {
    /// The process's own id.
    pub pid: ProcessId,
    /// The node the process runs on.
    pub node: NodeId,
    /// Current simulated time.
    pub now: SimTime,
}

/// Why the kernel resumed a process.
#[derive(Debug)]
pub enum Resume {
    /// First activation after the process was created.
    Start,
    /// A [`Action::Compute`] span finished.
    ComputeDone,
    /// A blocking send completed: the message was accepted by the
    /// receiver (synchronous send) or by the receiver's mailbox process
    /// (mailbox send).
    Sent,
    /// A synchronous receive completed with this message.
    Msg(Message),
    /// A mailbox read completed with this message.
    MailboxMsg(Message),
    /// A spawned child process was created with this id.
    Spawned(ProcessId),
    /// An [`Action::Emit`] instrumentation call finished.
    EmitDone,
    /// An [`Action::Sleep`] elapsed.
    Slept,
    /// A disk write completed.
    DiskDone,
    /// The awaited condition was signalled.
    Signalled,
    /// A [`Action::SignalCond`] completed (the signaller continues
    /// immediately).
    SignalSent,
    /// A yield completed and the process was rescheduled.
    Yielded,
}

/// The next thing a process wants the kernel to do.
#[derive(Debug)]
pub enum Action {
    /// Occupy the CPU for the given time, then resume with
    /// [`Resume::ComputeDone`].
    Compute(SimDuration),
    /// Synchronous send: block until the receiver accepts the message in
    /// a [`Action::Recv`], then resume with [`Resume::Sent`].
    SendSync {
        /// Destination process.
        to: ProcessId,
        /// The message.
        msg: Message,
    },
    /// Blocking synchronous receive from any sender; resumes with
    /// [`Resume::Msg`].
    Recv,
    /// Asynchronous send via the destination's mailbox. **Observed
    /// SUPRENUM semantics**: the sender still blocks until the receiving
    /// node's mailbox LWP is actually *scheduled* and accepts the
    /// message — which under non-preemptive round-robin only happens
    /// once the currently running process on that node blocks or yields.
    /// Resumes with [`Resume::Sent`].
    MailboxSend {
        /// Destination process (owner of the mailbox).
        to: ProcessId,
        /// The message.
        msg: Message,
    },
    /// Read own mailbox; blocks if empty. Resumes with
    /// [`Resume::MailboxMsg`].
    MailboxRecv,
    /// Relinquish the CPU; rejoin the back of the ready queue. Resumes
    /// with [`Resume::Yielded`].
    Yield,
    /// Block for the given simulated time; resumes with [`Resume::Slept`].
    Sleep(SimDuration),
    /// Create a new process on `node`; resumes with [`Resume::Spawned`].
    Spawn {
        /// Node to create the process on.
        node: NodeId,
        /// The process body.
        body: Box<dyn Process>,
    },
    /// Call `hybrid_mon(token, param)` (or the configured monitoring
    /// technique's equivalent); resumes with [`Resume::EmitDone`].
    Emit {
        /// The 16-bit event token.
        token: u16,
        /// The 32-bit parameter.
        param: u32,
    },
    /// Write `bytes` to the cluster's disk node; blocks until complete
    /// (the CPU is free for other LWPs meanwhile). Resumes with
    /// [`Resume::DiskDone`].
    DiskWrite {
        /// Payload size in bytes.
        bytes: u32,
    },
    /// Block until another process signals `cond`; resumes with
    /// [`Resume::Signalled`].
    WaitCond(CondId),
    /// Wake every process waiting on `cond`; continues immediately with
    /// [`Resume::SignalSent`].
    SignalCond(CondId),
    /// Terminate. If the *initial* process exits, the whole application
    /// terminates (paper §2.2).
    Exit,
}

/// A resumable process body.
///
/// Implementations are state machines: each [`resume`](Process::resume)
/// call advances the process to its next blocking action. The kernel
/// guarantees that between two `resume` calls of the *same* process no
/// other process runs on that node unless the action blocks — matching
/// SUPRENUM's non-preemptive scheduling.
///
/// Bodies must be `Send`: when a machine spans multiple clusters, each
/// cluster's processes execute on an engine-shard worker thread, and
/// remote spawns carry the boxed body across the shard boundary. Within
/// one cluster execution remains strictly sequential, so `Sync` is not
/// required and per-process interior mutability needs no locking.
pub trait Process: Send {
    /// Advances the process and returns its next action.
    fn resume(&mut self, ctx: &ProcCtx, why: Resume) -> Action;

    /// A short label for traces and ground-truth records.
    fn label(&self) -> String {
        "process".to_owned()
    }
}

impl std::fmt::Debug for dyn Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Process({})", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Process for Nop {
        fn resume(&mut self, _ctx: &ProcCtx, _why: Resume) -> Action {
            Action::Exit
        }
    }

    #[test]
    fn default_label() {
        let p = Nop;
        assert_eq!(p.label(), "process");
        let boxed: Box<dyn Process> = Box::new(Nop);
        assert_eq!(format!("{boxed:?}"), "Process(process)");
    }

    #[test]
    fn ctx_is_copy() {
        let ctx = ProcCtx {
            pid: ProcessId::new(1),
            node: NodeId::new(0),
            now: SimTime::ZERO,
        };
        let copy = ctx;
        assert_eq!(copy.pid, ctx.pid);
    }
}
