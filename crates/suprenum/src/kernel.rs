//! The machine kernel: node schedulers, messaging, mailboxes and
//! monitoring hooks.
//!
//! [`Machine`] owns every simulated node, process and bus. Its default
//! scheduling policy is the one the paper reverse-engineered from
//! SUPRENUM's node operating system:
//!
//! * light-weight processes are scheduled **round-robin without time
//!   slicing** — a running process keeps the CPU until it blocks or
//!   deliberately relinquishes it. The policy is pluggable through
//!   [`crate::sched::Scheduler`] (selected by
//!   [`MachineConfig::scheduler`]); preemptive policies may take the
//!   CPU away inside timed compute sections, which the kernel records
//!   as [`crate::os_tokens::KERNEL_PREEMPT`] events;
//! * each process's **mailbox is itself a light-weight process** that must
//!   be scheduled to accept an incoming message; the *sender stays
//!   blocked* until that happens. This is the mechanism that makes
//!   SUPRENUM's "asynchronous" mailbox communication behave synchronously
//!   (paper §4.3, version 1) and the simulator reproduces it structurally.
//!
//! Instrumentation ([`Action::Emit`]) is dispatched to the configured
//! monitoring technique: hybrid monitoring writes the encoded pattern
//! sequence to the node's seven-segment display (externally observable in
//! the [`SignalLog`]), terminal monitoring serializes the event over the
//! V.24 interface, software monitoring appends to a node-local buffer
//! stamped with the node's skewed local clock.
//!
//! # Parallel event execution
//!
//! Kernel state is split into one `Partition` (private) per cluster. Each
//! partition owns its nodes' LWPs, mailboxes, cluster-bus rails and the
//! cluster's token-ring egress port, so *every* event of a single-cluster
//! machine — and every intra-cluster event of a larger one — touches only
//! one partition. The only cross-partition traffic is the token ring,
//! whose token rotation plus per-hop latency gives a hard lower bound on
//! inter-cluster delivery. That bound is exactly the conservative
//! lookahead a [`des::shard::ShardedEventLoop`] needs: multi-cluster
//! machines run one engine shard per cluster, synchronizing only at
//! lookahead-wide window boundaries.
//!
//! Single-cluster machines keep the plain sequential [`EventLoop`], so
//! their traces are bit-for-bit what they always were. For multi-cluster
//! machines the *logical* schedule is fixed by the cluster decomposition;
//! [`Machine::set_engine_shards`] only chooses how many worker threads
//! the per-cluster shards are packed onto, which cannot change any
//! digest.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, RwLock};

use des::clock::ClockModel;
use des::engine::{EventLoop, StopReason};
use des::rng::DetRng;
use des::shard::{ShardCtx, ShardedEventLoop};
use des::time::{SimDuration, SimTime};
use hybridmon::software::SoftwareMonitor;
use hybridmon::{encode::encode, IntrusionReport, MonEvent, MonitoringMode};

use crate::bus::{Interconnect, InterconnectStats};
use crate::config::MachineConfig;
use crate::emission::EmissionRecord;
use crate::ground_truth::{BlockReason, GroundTruth, ProcState};
use crate::ids::{ClusterId, CondId, LwpId, NodeId, ProcessId, TeamId};
use crate::message::Message;
use crate::process::{Action, ProcCtx, Process, Resume};
use crate::sched::{KernelCtx, Scheduler};
use crate::signals::{DisplayWrite, SignalLog, TerminalWrite};
use crate::topology::{Route, Topology};

/// Safety valve against processes that loop through zero-cost actions
/// without ever blocking or computing.
const MAX_ZERO_COST_ACTIONS: u32 = 1_000_000;

/// [`crate::os_tokens::KERNEL_PREEMPT`] parameter code: a mailbox LWP
/// seized the CPU from a computing user process.
const PREEMPT_MAILBOX: u8 = 1;
/// [`crate::os_tokens::KERNEL_PREEMPT`] parameter code: the running
/// process's time slice expired with other work ready.
const PREEMPT_QUANTUM: u8 = 2;
/// [`crate::os_tokens::KERNEL_PREEMPT`] parameter code: an injected
/// (fuzz) preemption point fired on a user wakeup.
const PREEMPT_WAKE: u8 = 3;

/// Per-epoch observer callback of the sharded engine: receives the
/// window watermark and the machine-level emission drain.
type WindowHook<'a> = &'a mut dyn FnMut(SimTime, &mut Vec<EmissionRecord>);

/// Kernel events.
#[derive(Debug)]
enum Ev {
    /// Try to start the next ready LWP on a node.
    Dispatch(NodeId),
    /// Context switch finished; `lwp` starts running.
    Started { node: NodeId, lwp: LwpId },
    /// A running process's timed action (emit, spawn bookkeeping)
    /// completed; it continues without a scheduling decision.
    ResumeRunning { pid: ProcessId, resume: Resume },
    /// A running process's timed compute section completed. Separate
    /// from [`Ev::ResumeRunning`] because computes are the only
    /// preemptible sections: the epoch stamp lets a preemption abandon
    /// the in-flight completion (a stale epoch is ignored).
    ComputeDone { pid: ProcessId, epoch: u32 },
    /// The running process's time slice expired (preemptive policies
    /// only). Stale epochs — the process blocked or was preempted since
    /// the slice was granted — are ignored.
    QuantumExpiry { pid: ProcessId, epoch: u32 },
    /// A blocked process becomes ready again with this resume value.
    Unblock { pid: ProcessId, resume: Resume },
    /// A synchronous message arrives at the destination node.
    SyncArrive {
        dst: ProcessId,
        src: ProcessId,
        msg: Message,
    },
    /// A mailbox message arrives at the destination node, awaiting the
    /// mailbox LWP.
    MailboxArrive {
        dst: ProcessId,
        src: ProcessId,
        msg: Message,
    },
    /// A remotely spawned process becomes runnable.
    SpawnReady { pid: ProcessId },
    /// The mailbox LWP of `owner` finished accepting `count` messages.
    MailboxServiced { owner: ProcessId, count: usize },
    /// A message comes off the token ring at the destination cluster's
    /// communication node; the destination partition still has to carry
    /// it over its own cluster bus.
    RingDeliver {
        dst: ProcessId,
        src: ProcessId,
        msg: Message,
        mailbox: bool,
    },
    /// A cross-cluster spawn request arrives at the target cluster. The
    /// request travels at ring latency, ahead of any message addressed to
    /// the child, so the target partition always creates the process
    /// before traffic for it can arrive.
    RemoteSpawn {
        pid: ProcessId,
        node: NodeId,
        team: TeamId,
        ready_at: SimTime,
        body: Box<dyn Process>,
    },
    /// A condition variable was signalled on another cluster.
    CondSignal { cond: CondId },
    /// The initial process exited on another cluster; this partition
    /// stops processing.
    HaltCluster,
}

/// Why [`Machine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEnd {
    /// The initial process exited; the application terminated normally.
    Completed,
    /// No events remain but the application has not terminated: every
    /// live process is blocked forever. A bug in the measured program —
    /// exactly what the monitoring is for.
    Deadlock,
    /// The time horizon was reached first.
    Horizon,
    /// The operator's job time limit expired and the partition was
    /// released with the application unfinished (paper §2.2).
    ResourcesReleased,
    /// The event budget was exhausted (indicates a livelock).
    EventBudget,
}

impl RunEnd {
    /// Returns `true` if the run was cut short — any end other than
    /// [`RunEnd::Completed`]. A truncated run's derived statistics
    /// (utilization, job counts, phase durations) describe an
    /// *interrupted* execution and must not be compared against
    /// completed runs.
    pub fn is_truncation(self) -> bool {
        self != RunEnd::Completed
    }
}

impl std::fmt::Display for RunEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RunEnd::Completed => "completed",
            RunEnd::Deadlock => "deadlock",
            RunEnd::Horizon => "horizon",
            RunEnd::ResourcesReleased => "resources-released",
            RunEnd::EventBudget => "event-budget",
        })
    }
}

/// Result of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Final simulated time.
    pub end: SimTime,
    /// Why the run ended.
    pub reason: RunEnd,
    /// Kernel events the simulation loop processed during this run —
    /// the measure a step budget is charged against.
    pub events: u64,
}

impl RunOutcome {
    /// Returns `true` if the run was cut short (see
    /// [`RunEnd::is_truncation`]).
    pub fn truncated(&self) -> bool {
        self.reason.is_truncation()
    }
}

/// Execution profile of the sharded (multi-cluster) engine — see
/// [`Machine::engine_profile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineProfile {
    /// Lookahead windows (epochs) the engine executed.
    pub epochs: u64,
    /// Kernel events handled by each cluster shard, in cluster order.
    pub shard_events: Vec<u64>,
}

impl EngineProfile {
    /// Total events / busiest shard's events — the upper bound on the
    /// speedup any worker-thread packing could extract from this run's
    /// event distribution (ignores windowing granularity, so the real
    /// bound is tighter).
    pub fn balance_bound(&self) -> f64 {
        let total: u64 = self.shard_events.iter().sum();
        let max = self.shard_events.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        total as f64 / max as f64
    }

    /// Mean events executed per lookahead window across all shards —
    /// the grain the epoch barrier must amortize. Sync-bound shapes sit
    /// near (or below) one event per window.
    pub fn events_per_window(&self) -> f64 {
        if self.epochs == 0 {
            return 0.0;
        }
        let total: u64 = self.shard_events.iter().sum();
        total as f64 / self.epochs as f64
    }
}

/// Aggregate kernel counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Context switches performed across all nodes.
    pub ctx_switches: u64,
    /// Context switches that crossed a team boundary (expensive).
    pub inter_team_switches: u64,
    /// Mailbox-LWP scheduling rounds.
    pub mailbox_services: u64,
    /// Messages accepted by mailbox LWPs.
    pub mailbox_messages: u64,
    /// Synchronous rendezvous completed.
    pub sync_messages: u64,
    /// Instrumentation events emitted.
    pub events_emitted: u64,
    /// Processes created.
    pub processes_spawned: u64,
    /// Kernel (OS) instrumentation events emitted.
    pub kernel_events: u64,
    /// Times a running user process lost the CPU involuntarily
    /// (mailbox seizure, quantum expiry, or injected fuzz preemption).
    /// Always zero under the stock non-preemptive round-robin policy.
    pub preemptions: u64,
}

impl KernelStats {
    /// Adds `other`'s counters to this instance's (partition merge).
    fn merge(&mut self, other: KernelStats) {
        self.ctx_switches += other.ctx_switches;
        self.inter_team_switches += other.inter_team_switches;
        self.mailbox_services += other.mailbox_services;
        self.mailbox_messages += other.mailbox_messages;
        self.sync_messages += other.sync_messages;
        self.events_emitted += other.events_emitted;
        self.processes_spawned += other.processes_spawned;
        self.kernel_events += other.kernel_events;
        self.preemptions += other.preemptions;
    }
}

struct Proc {
    node: NodeId,
    team: TeamId,
    body: Option<Box<dyn Process>>,
    state: ProcState,
    mbox: VecDeque<Message>,
    pending_resume: Option<Resume>,
    /// While inside a timed compute section: when it completes. The
    /// only window a preemptive policy may take the CPU in.
    compute_until: Option<SimTime>,
    /// Bumped at every dispatch and preemption; a [`Ev::ComputeDone`]
    /// or [`Ev::QuantumExpiry`] whose stamp does not match is stale.
    run_epoch: u32,
    /// Compute time left over from a preemption, resumed at the next
    /// dispatch instead of calling back into the process body.
    preempted_compute: Option<SimDuration>,
}

struct Node {
    /// The pluggable scheduling policy owning this node's ready set.
    sched: Box<dyn Scheduler>,
    running: Option<LwpId>,
    dispatching: bool,
    /// Team of the last LWP that held the CPU (for switch pricing).
    last_team: Option<TeamId>,
    /// Synchronous messages that arrived before the receiver called
    /// `Recv`, per destination process.
    pending_sync: HashMap<ProcessId, VecDeque<(ProcessId, Message)>>,
    /// Mailbox messages that arrived but have not yet been *accepted* by
    /// the destination's mailbox LWP (their senders are still blocked).
    mailbox_arrivals: HashMap<ProcessId, VecDeque<(ProcessId, Message)>>,
    /// Mailbox LWPs currently enqueued or running.
    mailbox_active: HashSet<ProcessId>,
}

impl Node {
    fn new(sched: Box<dyn Scheduler>) -> Self {
        Node {
            sched,
            running: None,
            dispatching: false,
            last_team: None,
            pending_sync: HashMap::new(),
            mailbox_arrivals: HashMap::new(),
            mailbox_active: HashSet::new(),
        }
    }
}

/// Scheduling interface a partition's event handlers run against. The
/// sequential engine and the sharded engine expose the same operations;
/// the handlers are written once against this trait.
trait Sched {
    /// Current simulated time.
    fn now(&self) -> SimTime;
    /// Schedules an event on this partition at absolute time `at`.
    fn schedule(&mut self, at: SimTime, ev: Ev);
    /// Schedules an event on this partition `delay` from now.
    fn schedule_in(&mut self, delay: SimDuration, ev: Ev);
    /// Delivers an event to another cluster's partition at `at`, which
    /// must respect the ring lookahead.
    fn send_cluster(&mut self, dst: ClusterId, at: SimTime, ev: Ev);
    /// Drops every event still queued for this partition.
    fn halt_local(&mut self);
}

/// [`Sched`] over the plain sequential event loop. Single-cluster
/// machines never route cross-cluster events, so `send_cluster` is
/// unreachable.
struct SeqSched<'a> {
    sim: &'a mut EventLoop<Ev>,
}

impl Sched for SeqSched<'_> {
    fn now(&self) -> SimTime {
        self.sim.now()
    }

    fn schedule(&mut self, at: SimTime, ev: Ev) {
        self.sim.schedule(at, ev);
    }

    fn schedule_in(&mut self, delay: SimDuration, ev: Ev) {
        self.sim.schedule_in(delay, ev);
    }

    fn send_cluster(&mut self, _dst: ClusterId, _at: SimTime, _ev: Ev) {
        unreachable!("sequential machine routed a cross-cluster event");
    }

    fn halt_local(&mut self) {
        self.sim.clear();
    }
}

/// [`Sched`] over one shard of the conservative parallel engine.
struct ShardSched<'a, 'b> {
    ctx: &'a mut ShardCtx<'b, Ev>,
}

impl Sched for ShardSched<'_, '_> {
    fn now(&self) -> SimTime {
        self.ctx.now()
    }

    fn schedule(&mut self, at: SimTime, ev: Ev) {
        self.ctx.schedule(at, ev);
    }

    fn schedule_in(&mut self, delay: SimDuration, ev: Ev) {
        self.ctx.schedule_in(delay, ev);
    }

    fn send_cluster(&mut self, dst: ClusterId, at: SimTime, ev: Ev) {
        self.ctx.send(dst.index() as usize, at, ev);
    }

    fn halt_local(&mut self) {
        self.ctx.clear_local();
    }
}

/// The event engine a machine runs on: the plain sequential loop for
/// single-cluster configurations, one conservative engine shard per
/// cluster otherwise.
enum Engine {
    Seq(EventLoop<Ev>),
    Sharded(ShardedEventLoop<Ev>),
}

/// Kernel state of one cluster. Every field is owned by exactly one
/// partition; the only way state crosses partitions during a run is a
/// [`Sched::send_cluster`] event, which models the token ring and
/// therefore always respects the ring lookahead. A single-cluster
/// machine is one partition holding everything.
struct Partition {
    cluster: ClusterId,
    /// Lowest global node id of this cluster (local index offset).
    first_node: u16,
    /// Total clusters in the machine (pid/team allocation stride).
    clusters: u32,
    cfg: MachineConfig,
    topo: Topology,
    /// This cluster's bus rails and ring-egress port. Built full-size
    /// for index alignment; each partition only ever reserves its own
    /// cluster's resources.
    interconnect: Interconnect,
    /// Indexed by raw pid. Clusters allocate pids strided by the cluster
    /// count, so multi-cluster tables are sparse; single-cluster tables
    /// are dense.
    procs: Vec<Option<Proc>>,
    /// Local nodes, indexed by `node.index() - first_node`.
    nodes: Vec<Node>,
    conds: HashMap<CondId, Vec<ProcessId>>,
    signals: SignalLog,
    ground_truth: GroundTruth,
    intrusion: IntrusionReport,
    /// Local nodes' software monitors, same indexing as `nodes`.
    software: Vec<SoftwareMonitor>,
    stats: KernelStats,
    /// Per local node: earliest time the display is free for a kernel
    /// event (serializes kernel emissions so pattern pairs never
    /// interleave).
    kernel_display_free: Vec<SimTime>,
    /// Hybrid emissions awaiting expansion when
    /// [`MachineConfig::deferred_display`] is set; drained by the
    /// monitor plane during [`Machine::run_observed`] or expanded into
    /// the signal log when the run ends.
    deferred: Vec<EmissionRecord>,
    /// Per-cluster allocation counters; raw id = cluster + clusters * k,
    /// so partitions mint ids independently without collisions.
    next_pid: u32,
    next_team: u32,
    initial: Option<ProcessId>,
    halted: bool,
    /// Events this partition handled (the sharded engine's step count).
    events_handled: u64,
    /// Local clock of the partition's shard, tracked for the merged
    /// outcome's end time.
    now_local: SimTime,
    /// pid → node map shared by all partitions of a multi-cluster
    /// machine. Writes happen at process creation in the creating
    /// partition; any other partition can only learn a pid through a
    /// message, which arrives at least one ring latency later — after
    /// the epoch barrier — so reads always see the write.
    directory: Option<Arc<RwLock<HashMap<u32, NodeId>>>>,
}

impl Partition {
    fn local_idx(&self, node: NodeId) -> usize {
        debug_assert_eq!(
            self.topo.cluster_of(node),
            self.cluster,
            "node {node} handled by the wrong partition"
        );
        (node.index() - self.first_node) as usize
    }

    fn local_node(&self, node: NodeId) -> &Node {
        &self.nodes[self.local_idx(node)]
    }

    fn local_node_mut(&mut self, node: NodeId) -> &mut Node {
        let idx = self.local_idx(node);
        &mut self.nodes[idx]
    }

    fn proc(&self, pid: ProcessId) -> &Proc {
        self.procs
            .get(pid.raw() as usize)
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("process {pid} is not in this partition"))
    }

    fn proc_mut(&mut self, pid: ProcessId) -> &mut Proc {
        self.procs
            .get_mut(pid.raw() as usize)
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("process {pid} is not in this partition"))
    }

    /// The node a message to `pid` must be routed to: local process
    /// table first, shared directory for remote pids.
    fn target_node(&self, pid: ProcessId) -> NodeId {
        if let Some(Some(p)) = self.procs.get(pid.raw() as usize) {
            return p.node;
        }
        let dir = self
            .directory
            .as_ref()
            .unwrap_or_else(|| panic!("message routed to unknown process {pid}"));
        let map = dir
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *map.get(&pid.raw())
            .unwrap_or_else(|| panic!("message routed to unknown process {pid}"))
    }

    /// Mints the next process id of this cluster's namespace.
    fn alloc_pid(&mut self) -> ProcessId {
        let raw = self.cluster.index() as u32 + self.clusters * self.next_pid;
        self.next_pid += 1;
        ProcessId::new(raw)
    }

    /// Mints the next team id of this cluster's namespace.
    fn alloc_team(&mut self) -> TeamId {
        let raw = self.cluster.index() as u32 + self.clusters * self.next_team;
        self.next_team += 1;
        TeamId::new(raw)
    }

    /// Ring token + hop delay from this cluster to `dst` — the minimum
    /// a cross-cluster event must trail the current time by, and never
    /// below the engine lookahead.
    fn ring_delay(&self, dst: ClusterId) -> SimDuration {
        let hops = self.topo.ring_hops(self.cluster, dst);
        self.cfg.ring_token_latency + self.cfg.ring_hop_latency * hops as u64
    }

    fn create_proc(
        &mut self,
        pid: ProcessId,
        node: NodeId,
        team: TeamId,
        body: Box<dyn Process>,
        now: SimTime,
    ) {
        assert!(
            node.index() < self.topo.total_nodes(),
            "process placed on nonexistent node {node}"
        );
        let idx = pid.raw() as usize;
        if self.procs.len() <= idx {
            self.procs.resize_with(idx + 1, || None);
        }
        let label = body.label();
        let prev = self.procs[idx].replace(Proc {
            node,
            team,
            body: Some(body),
            state: ProcState::Ready,
            mbox: VecDeque::new(),
            pending_resume: Some(Resume::Start),
            compute_until: None,
            run_epoch: 0,
            preempted_compute: None,
        });
        assert!(prev.is_none(), "process {pid} created twice");
        self.ground_truth.register(pid, node, label, now);
        self.stats.processes_spawned += 1;
        if let Some(dir) = &self.directory {
            dir.write()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(pid.raw(), node);
        }
    }

    /// Expands every still-buffered deferred emission into the signal
    /// log (in emission order, matching the inline path's push order).
    fn materialize_deferred(&mut self) {
        for rec in std::mem::take(&mut self.deferred) {
            for w in rec.writes() {
                self.signals.push_display(w);
            }
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle<S: Sched>(&mut self, sched: &mut S, ev: Ev) {
        self.events_handled += 1;
        self.now_local = sched.now();
        if self.halted {
            return;
        }
        match ev {
            Ev::Dispatch(node) => self.try_dispatch(sched, node),
            Ev::Started { node, lwp } => self.start_lwp(sched, node, lwp),
            Ev::ResumeRunning { pid, resume } => {
                debug_assert_eq!(self.proc(pid).state, ProcState::Running);
                self.step_process(sched, pid, resume);
            }
            Ev::ComputeDone { pid, epoch } => {
                // A stale epoch means the compute was preempted and will
                // complete under a later (rescheduled) event.
                if self.proc(pid).run_epoch == epoch {
                    debug_assert_eq!(self.proc(pid).state, ProcState::Running);
                    self.proc_mut(pid).compute_until = None;
                    self.step_process(sched, pid, Resume::ComputeDone);
                }
            }
            Ev::QuantumExpiry { pid, epoch } => self.quantum_expiry(sched, pid, epoch),
            Ev::Unblock { pid, resume } => self.unblock(sched, pid, resume),
            Ev::SyncArrive { dst, src, msg } => self.sync_arrive(sched, dst, src, msg),
            Ev::MailboxArrive { dst, src, msg } => self.mailbox_arrive(sched, dst, src, msg),
            Ev::SpawnReady { pid } => {
                let node = self.proc(pid).node;
                self.wake(sched, node, LwpId::User(pid));
            }
            Ev::MailboxServiced { owner, count } => self.mailbox_serviced(sched, owner, count),
            Ev::RingDeliver {
                dst,
                src,
                msg,
                mailbox,
            } => {
                // The message came off the ring at this cluster's
                // communication node; carry it over the local bus.
                let arrival =
                    self.interconnect
                        .ring_ingress(sched.now(), self.cluster, msg.bytes());
                let ev = if mailbox {
                    Ev::MailboxArrive { dst, src, msg }
                } else {
                    Ev::SyncArrive { dst, src, msg }
                };
                sched.schedule(arrival, ev);
            }
            Ev::RemoteSpawn {
                pid,
                node,
                team,
                ready_at,
                body,
            } => {
                let now = sched.now();
                self.create_proc(pid, node, team, body, now);
                sched.schedule(ready_at.max(now), Ev::SpawnReady { pid });
            }
            Ev::CondSignal { cond } => {
                if let Some(waiters) = self.conds.remove(&cond) {
                    for w in waiters {
                        self.unblock(sched, w, Resume::Signalled);
                    }
                }
            }
            Ev::HaltCluster => {
                self.halted = true;
                sched.halt_local();
            }
        }
    }

    /// The policy's view of one node's kernel state right now.
    fn node_ctx(&self, now: SimTime, node: NodeId) -> KernelCtx {
        KernelCtx {
            node,
            now,
            running: self.local_node(node).running,
        }
    }

    /// Marks `lwp` ready with the node's policy, lets preemptive
    /// policies seize the CPU for it, and dispatches if the CPU is
    /// free.
    fn wake<S: Sched>(&mut self, sched: &mut S, node: NodeId, lwp: LwpId) {
        let ctx = self.node_ctx(sched.now(), node);
        self.local_node_mut(node).sched.on_ready(lwp, &ctx);
        // Preemption is only honoured inside a timed compute section —
        // kernel sections and display emissions are atomic — and never
        // while a dispatch is already in flight (the `dispatching`
        // guard also protects the context-switch window).
        if let Some(running @ LwpId::User(owner)) = ctx.running {
            let computing = self.proc(owner).compute_until.is_some();
            let dispatching = self.local_node(node).dispatching;
            if computing
                && !dispatching
                && self.local_node_mut(node).sched.preempts(running, lwp, &ctx)
            {
                let code = if lwp.is_mailbox() {
                    PREEMPT_MAILBOX
                } else {
                    PREEMPT_WAKE
                };
                self.preempt(sched, owner, code);
                return;
            }
        }
        self.try_dispatch(sched, node);
    }

    /// Takes the CPU away from `pid` mid-compute: the remaining compute
    /// time is stashed and resumed at its next dispatch, and the victim
    /// re-enters the ready set through the policy.
    fn preempt<S: Sched>(&mut self, sched: &mut S, pid: ProcessId, code: u8) {
        let now = sched.now();
        let node = self.proc(pid).node;
        debug_assert_eq!(self.local_node(node).running, Some(LwpId::User(pid)));
        debug_assert!(!self.local_node(node).dispatching);
        let until = self
            .proc_mut(pid)
            .compute_until
            .take()
            .expect("preempting a process that is not computing");
        self.stats.preemptions += 1;
        if self.kernel_instrumented() {
            self.kernel_emit(
                now,
                node,
                crate::os_tokens::KERNEL_PREEMPT,
                crate::os_tokens::param(pid.raw(), code),
            );
        }
        {
            let p = self.proc_mut(pid);
            p.preempted_compute = Some(until.saturating_since(now));
            p.run_epoch = p.run_epoch.wrapping_add(1);
        }
        self.set_state(pid, ProcState::Ready, now);
        let ctx = self.node_ctx(now, node);
        self.local_node_mut(node)
            .sched
            .on_block(LwpId::User(pid), &ctx);
        self.local_node_mut(node).running = None;
        let ctx = self.node_ctx(now, node);
        self.local_node_mut(node)
            .sched
            .on_ready(LwpId::User(pid), &ctx);
        self.try_dispatch(sched, node);
    }

    /// A granted time slice ran out. Preempts only when the process is
    /// inside a compute section *and* someone else wants the CPU;
    /// otherwise the slice silently renews.
    fn quantum_expiry<S: Sched>(&mut self, sched: &mut S, pid: ProcessId, epoch: u32) {
        if self.proc(pid).run_epoch != epoch {
            return;
        }
        let node = self.proc(pid).node;
        if self.local_node(node).running != Some(LwpId::User(pid)) {
            return;
        }
        if self.proc(pid).compute_until.is_some() && self.local_node(node).sched.has_ready() {
            self.preempt(sched, pid, PREEMPT_QUANTUM);
            return;
        }
        let ctx = self.node_ctx(sched.now(), node);
        if let Some(q) = self
            .local_node_mut(node)
            .sched
            .time_slice(LwpId::User(pid), &ctx)
        {
            sched.schedule_in(q, Ev::QuantumExpiry { pid, epoch });
        }
    }

    fn try_dispatch<S: Sched>(&mut self, sched: &mut S, node: NodeId) {
        let ctx = self.node_ctx(sched.now(), node);
        let n = self.local_node_mut(node);
        if n.running.is_some() || n.dispatching {
            return;
        }
        let Some(lwp) = n.sched.pick_next(&ctx) else {
            return;
        };
        n.dispatching = true;
        self.stats.ctx_switches += 1;
        // Switch pricing (paper §2.2): cheap within a team, a full
        // address-space switch across teams.
        let next_team = self.proc(lwp.owner()).team;
        let n = self.local_node_mut(node);
        let same_team = n.last_team.is_none_or(|t| t == next_team);
        n.last_team = Some(next_team);
        let mut delay = if same_team {
            self.cfg.ctx_switch
        } else {
            self.stats.inter_team_switches += 1;
            self.cfg.ctx_switch_inter_team
        };
        if self.kernel_instrumented() {
            delay += self.cfg.kernel_event_cost;
            let code = u8::from(lwp.is_mailbox());
            self.kernel_emit(
                sched.now(),
                node,
                crate::os_tokens::KERNEL_DISPATCH,
                crate::os_tokens::param(lwp.owner().raw(), code),
            );
        }
        sched.schedule_in(delay, Ev::Started { node, lwp });
    }

    fn start_lwp<S: Sched>(&mut self, sched: &mut S, node: NodeId, lwp: LwpId) {
        let n = self.local_node_mut(node);
        n.dispatching = false;
        n.running = Some(lwp);
        match lwp {
            LwpId::User(pid) => {
                let now = sched.now();
                self.set_state(pid, ProcState::Running, now);
                let epoch = {
                    let p = self.proc_mut(pid);
                    p.run_epoch = p.run_epoch.wrapping_add(1);
                    p.run_epoch
                };
                let ctx = self.node_ctx(now, node);
                self.local_node_mut(node).sched.on_run(lwp, &ctx);
                if let Some(q) = self.local_node_mut(node).sched.time_slice(lwp, &ctx) {
                    sched.schedule_in(q, Ev::QuantumExpiry { pid, epoch });
                }
                if let Some(remaining) = self.proc_mut(pid).preempted_compute.take() {
                    // Resume the interrupted compute section without
                    // calling back into the process body.
                    self.proc_mut(pid).compute_until = Some(now + remaining);
                    sched.schedule_in(remaining, Ev::ComputeDone { pid, epoch });
                } else {
                    let resume = self
                        .proc_mut(pid)
                        .pending_resume
                        .take()
                        .expect("dispatched process has no pending resume");
                    self.step_process(sched, pid, resume);
                }
            }
            LwpId::Mailbox(owner) => {
                let ctx = self.node_ctx(sched.now(), node);
                self.local_node_mut(node).sched.on_run(lwp, &ctx);
                // The mailbox process accepts every message waiting right
                // now; later arrivals wait for its next scheduling.
                let count = self
                    .local_node(node)
                    .mailbox_arrivals
                    .get(&owner)
                    .map_or(0, VecDeque::len);
                if self.kernel_instrumented() {
                    self.kernel_emit(
                        sched.now(),
                        node,
                        crate::os_tokens::KERNEL_MAILBOX_SERVICE,
                        crate::os_tokens::param(owner.raw(), count.min(255) as u8),
                    );
                }
                self.stats.mailbox_services += 1;
                let busy = self.cfg.mailbox_accept_cost * count.max(1) as u64;
                sched.schedule_in(busy, Ev::MailboxServiced { owner, count });
            }
        }
    }

    /// Releases a blocked sender once its message was accepted. Senders
    /// on another cluster get their ack over the ring.
    fn send_ack<S: Sched>(&mut self, sched: &mut S, src: ProcessId) {
        let now = sched.now();
        let ev = Ev::Unblock {
            pid: src,
            resume: Resume::Sent,
        };
        let src_cluster = self.topo.cluster_of(self.target_node(src));
        if src_cluster == self.cluster {
            sched.schedule(now + self.cfg.ack_latency, ev);
        } else {
            let at = now + self.cfg.ack_latency + self.ring_delay(src_cluster);
            sched.send_cluster(src_cluster, at, ev);
        }
    }

    fn mailbox_serviced<S: Sched>(&mut self, sched: &mut S, owner: ProcessId, count: usize) {
        let node = self.proc(owner).node;
        for _ in 0..count {
            let (src, msg) = self
                .local_node_mut(node)
                .mailbox_arrivals
                .get_mut(&owner)
                .and_then(VecDeque::pop_front)
                .expect("mailbox service count exceeds arrivals");
            self.stats.mailbox_messages += 1;
            // Accepting the message releases the (still blocked) sender.
            self.send_ack(sched, src);
            // Hand to the owner: directly if it is waiting, else queue.
            let owner_proc = self.proc_mut(owner);
            let waiting = owner_proc.state == ProcState::Blocked(BlockReason::MailboxRecv)
                && owner_proc.pending_resume.is_none();
            if waiting {
                self.unblock(sched, owner, Resume::MailboxMsg(msg));
            } else {
                owner_proc.mbox.push_back(msg);
            }
        }
        // Mailbox LWP blocks again (it is "always in a receive state").
        let now = sched.now();
        let ctx = self.node_ctx(now, node);
        {
            let n = self.local_node_mut(node);
            n.sched.on_block(LwpId::Mailbox(owner), &ctx);
            n.running = None;
            n.mailbox_active.remove(&owner);
        }
        // Messages that arrived during servicing require another round.
        let more = self
            .local_node(node)
            .mailbox_arrivals
            .get(&owner)
            .is_some_and(|q| !q.is_empty());
        if more {
            let ctx = self.node_ctx(now, node);
            let n = self.local_node_mut(node);
            n.sched.on_ready(LwpId::Mailbox(owner), &ctx);
            n.mailbox_active.insert(owner);
        }
        self.try_dispatch(sched, node);
    }

    fn sync_arrive<S: Sched>(
        &mut self,
        sched: &mut S,
        dst: ProcessId,
        src: ProcessId,
        msg: Message,
    ) {
        let dst_proc = self.proc(dst);
        assert!(
            dst_proc.state != ProcState::Exited,
            "synchronous message to exited process {dst}"
        );
        let node = dst_proc.node;
        let waiting = dst_proc.state == ProcState::Blocked(BlockReason::Recv)
            && dst_proc.pending_resume.is_none();
        if waiting {
            self.complete_rendezvous(sched, dst, src, msg);
        } else {
            self.local_node_mut(node)
                .pending_sync
                .entry(dst)
                .or_default()
                .push_back((src, msg));
        }
    }

    fn complete_rendezvous<S: Sched>(
        &mut self,
        sched: &mut S,
        dst: ProcessId,
        src: ProcessId,
        msg: Message,
    ) {
        self.stats.sync_messages += 1;
        self.send_ack(sched, src);
        self.unblock(sched, dst, Resume::Msg(msg));
    }

    fn mailbox_arrive<S: Sched>(
        &mut self,
        sched: &mut S,
        dst: ProcessId,
        src: ProcessId,
        msg: Message,
    ) {
        let dst_proc = self.proc(dst);
        assert!(
            dst_proc.state != ProcState::Exited,
            "mailbox message to exited process {dst}"
        );
        let node = dst_proc.node;
        let n = self.local_node_mut(node);
        n.mailbox_arrivals
            .entry(dst)
            .or_default()
            .push_back((src, msg));
        // Wake the mailbox LWP; under the stock policy it still has to
        // *win the CPU* before the sender is released — the crux of the
        // paper's observation. A preemptive policy may seize the CPU
        // for it here instead, which is exactly the transition that
        // breaks the effective-synchrony property.
        if n.mailbox_active.insert(dst) {
            self.wake(sched, node, LwpId::Mailbox(dst));
        } else {
            self.try_dispatch(sched, node);
        }
    }

    fn unblock<S: Sched>(&mut self, sched: &mut S, pid: ProcessId, resume: Resume) {
        let now = sched.now();
        let proc = self.proc_mut(pid);
        debug_assert!(
            matches!(proc.state, ProcState::Blocked(_)),
            "unblock of non-blocked process {pid} in state {:?}",
            proc.state
        );
        debug_assert!(proc.pending_resume.is_none(), "double unblock of {pid}");
        proc.pending_resume = Some(resume);
        let node = proc.node;
        self.set_state(pid, ProcState::Ready, now);
        self.wake(sched, node, LwpId::User(pid));
    }

    fn set_state(&mut self, pid: ProcessId, state: ProcState, now: SimTime) {
        self.proc_mut(pid).state = state;
        self.ground_truth.record(pid, now, state);
    }

    /// Runs one process forward until it issues an action that takes
    /// simulated time or blocks.
    fn step_process<S: Sched>(&mut self, sched: &mut S, pid: ProcessId, mut resume: Resume) {
        let mut guard = 0u32;
        loop {
            guard += 1;
            assert!(
                guard < MAX_ZERO_COST_ACTIONS,
                "process {pid} loops through zero-cost actions without blocking"
            );
            let now = sched.now();
            let node = self.proc(pid).node;
            let ctx = ProcCtx { pid, node, now };
            let action = {
                let body = self
                    .proc_mut(pid)
                    .body
                    .as_mut()
                    .expect("resuming an exited process");
                body.resume(&ctx, resume)
            };
            match action {
                Action::Compute(d) => {
                    self.intrusion.record_application(d);
                    let epoch = self.proc(pid).run_epoch;
                    self.proc_mut(pid).compute_until = Some(now + d);
                    sched.schedule_in(d, Ev::ComputeDone { pid, epoch });
                    return;
                }
                Action::Emit { token, param } => {
                    if let Some(cost) = self.emit(now, node, token, param) {
                        sched.schedule_in(
                            cost,
                            Ev::ResumeRunning {
                                pid,
                                resume: Resume::EmitDone,
                            },
                        );
                        return;
                    }
                    resume = Resume::EmitDone;
                }
                Action::SendSync { to, msg } => {
                    self.block(sched, pid, BlockReason::SendSync);
                    self.route_message(sched, now, node, pid, to, msg, false);
                    return;
                }
                Action::Recv => {
                    let pending = self
                        .local_node_mut(node)
                        .pending_sync
                        .get_mut(&pid)
                        .and_then(VecDeque::pop_front);
                    match pending {
                        Some((src, msg)) => {
                            self.stats.sync_messages += 1;
                            self.send_ack(sched, src);
                            resume = Resume::Msg(msg);
                        }
                        None => {
                            self.block(sched, pid, BlockReason::Recv);
                            return;
                        }
                    }
                }
                Action::MailboxSend { to, msg } => {
                    self.block(sched, pid, BlockReason::MailboxSend);
                    self.route_message(sched, now, node, pid, to, msg, true);
                    return;
                }
                Action::MailboxRecv => match self.proc_mut(pid).mbox.pop_front() {
                    Some(msg) => resume = Resume::MailboxMsg(msg),
                    None => {
                        self.block(sched, pid, BlockReason::MailboxRecv);
                        return;
                    }
                },
                Action::Yield => {
                    let now = sched.now();
                    self.set_state(pid, ProcState::Ready, now);
                    self.proc_mut(pid).pending_resume = Some(Resume::Yielded);
                    let ctx = self.node_ctx(now, node);
                    {
                        let n = self.local_node_mut(node);
                        n.sched.on_block(LwpId::User(pid), &ctx);
                        n.running = None;
                    }
                    let ctx = self.node_ctx(now, node);
                    self.local_node_mut(node)
                        .sched
                        .on_ready(LwpId::User(pid), &ctx);
                    self.try_dispatch(sched, node);
                    return;
                }
                Action::Sleep(d) => {
                    self.block(sched, pid, BlockReason::Sleep);
                    sched.schedule_in(
                        d,
                        Ev::Unblock {
                            pid,
                            resume: Resume::Slept,
                        },
                    );
                    return;
                }
                Action::Spawn { node: target, body } => {
                    assert!(
                        target.index() < self.topo.total_nodes(),
                        "process placed on nonexistent node {target}"
                    );
                    let target_cluster = self.topo.cluster_of(target);
                    let child = if target_cluster == self.cluster {
                        // Processes spawned on the spawner's node join its
                        // team (light-weight); remote spawns start new teams.
                        let team = if target == node {
                            self.proc(pid).team
                        } else {
                            self.alloc_team()
                        };
                        let child = self.alloc_pid();
                        self.create_proc(child, target, team, body, now);
                        if target == node {
                            // The spawner keeps the CPU (it is mid-spawn,
                            // not computing), so the child just joins the
                            // ready set.
                            let ctx = self.node_ctx(now, target);
                            self.local_node_mut(target)
                                .sched
                                .on_ready(LwpId::User(child), &ctx);
                        } else {
                            sched.schedule_in(
                                self.cfg.remote_spawn_latency,
                                Ev::SpawnReady { pid: child },
                            );
                        }
                        child
                    } else {
                        // Cross-cluster spawn: the request rides the ring
                        // to the target partition, which creates the
                        // process on arrival. The pid is minted here, from
                        // this cluster's namespace, so the spawner can
                        // address the child immediately.
                        let team = self.alloc_team();
                        let child = self.alloc_pid();
                        if let Some(dir) = &self.directory {
                            dir.write()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .insert(child.raw(), target);
                        }
                        let at = now + self.ring_delay(target_cluster);
                        sched.send_cluster(
                            target_cluster,
                            at,
                            Ev::RemoteSpawn {
                                pid: child,
                                node: target,
                                team,
                                ready_at: now + self.cfg.remote_spawn_latency,
                                body,
                            },
                        );
                        child
                    };
                    self.intrusion.record_application(self.cfg.spawn_cost);
                    sched.schedule_in(
                        self.cfg.spawn_cost,
                        Ev::ResumeRunning {
                            pid,
                            resume: Resume::Spawned(child),
                        },
                    );
                    return;
                }
                Action::DiskWrite { bytes } => {
                    self.block(sched, pid, BlockReason::Disk);
                    // The write travels over the cluster bus to the disk
                    // node, then streams to disk.
                    let cluster = self.topo.cluster_of(node);
                    let arrival = self.interconnect.transfer(
                        now,
                        node,
                        Route::IntraCluster { cluster },
                        bytes,
                    );
                    let write = self.cfg.disk_latency
                        + SimDuration::for_transfer(bytes as u64, self.cfg.disk_bandwidth);
                    sched.schedule(
                        arrival + write,
                        Ev::Unblock {
                            pid,
                            resume: Resume::DiskDone,
                        },
                    );
                    return;
                }
                Action::WaitCond(cond) => {
                    self.conds.entry(cond).or_default().push(pid);
                    self.block(sched, pid, BlockReason::Cond);
                    return;
                }
                Action::SignalCond(cond) => {
                    if let Some(waiters) = self.conds.remove(&cond) {
                        for w in waiters {
                            self.unblock(sched, w, Resume::Signalled);
                        }
                    }
                    // Condition variables are machine-global: waiters on
                    // other clusters learn of the signal one ring
                    // rotation later.
                    if self.clusters > 1 {
                        for c in 0..self.clusters as u8 {
                            let c = ClusterId::new(c);
                            if c == self.cluster {
                                continue;
                            }
                            let at = now + self.ring_delay(c);
                            sched.send_cluster(c, at, Ev::CondSignal { cond });
                        }
                    }
                    resume = Resume::SignalSent;
                }
                Action::Exit => {
                    let now = sched.now();
                    if self.kernel_instrumented() {
                        self.kernel_emit(
                            now,
                            node,
                            crate::os_tokens::KERNEL_EXIT,
                            crate::os_tokens::param(pid.raw(), 0),
                        );
                    }
                    self.set_state(pid, ProcState::Exited, now);
                    self.proc_mut(pid).body = None;
                    let ctx = self.node_ctx(now, node);
                    {
                        let n = self.local_node_mut(node);
                        n.sched.on_block(LwpId::User(pid), &ctx);
                        n.running = None;
                    }
                    if Some(pid) == self.initial {
                        // Termination of the initial process terminates
                        // the whole application (paper §2.2).
                        self.halted = true;
                        sched.halt_local();
                        if self.clusters > 1 {
                            for c in 0..self.clusters as u8 {
                                let c = ClusterId::new(c);
                                if c == self.cluster {
                                    continue;
                                }
                                sched.send_cluster(c, now + self.ring_delay(c), Ev::HaltCluster);
                            }
                        }
                        return;
                    }
                    self.try_dispatch(sched, node);
                    return;
                }
            }
        }
    }

    /// Delivers a blocking send: over the local interconnect for
    /// intra-cluster destinations, over the token ring (a cross-shard
    /// event) otherwise.
    #[allow(clippy::too_many_arguments)]
    fn route_message<S: Sched>(
        &mut self,
        sched: &mut S,
        now: SimTime,
        node: NodeId,
        src: ProcessId,
        dst: ProcessId,
        msg: Message,
        mailbox: bool,
    ) {
        let dst_node = self.target_node(dst);
        match self.topo.route(node, dst_node) {
            Route::InterCluster {
                src_cluster,
                dst_cluster,
                ring_hops,
            } => {
                debug_assert_eq!(src_cluster, self.cluster);
                let handoff = self.interconnect.inter_cluster_egress(
                    now,
                    node,
                    src_cluster,
                    ring_hops,
                    msg.bytes(),
                );
                sched.send_cluster(
                    dst_cluster,
                    handoff,
                    Ev::RingDeliver {
                        dst,
                        src,
                        msg,
                        mailbox,
                    },
                );
            }
            route => {
                let arrival = self.interconnect.transfer(now, node, route, msg.bytes());
                let ev = if mailbox {
                    Ev::MailboxArrive { dst, src, msg }
                } else {
                    Ev::SyncArrive { dst, src, msg }
                };
                sched.schedule(arrival, ev);
            }
        }
    }

    fn block<S: Sched>(&mut self, sched: &mut S, pid: ProcessId, reason: BlockReason) {
        let now = sched.now();
        self.set_state(pid, ProcState::Blocked(reason), now);
        let node = self.proc(pid).node;
        if self.kernel_instrumented() {
            self.kernel_emit(
                now,
                node,
                crate::os_tokens::KERNEL_BLOCK,
                crate::os_tokens::param(pid.raw(), crate::os_tokens::reason_code(reason)),
            );
        }
        let ctx = self.node_ctx(now, node);
        {
            let n = self.local_node_mut(node);
            n.sched.on_block(LwpId::User(pid), &ctx);
            n.running = None;
        }
        self.try_dispatch(sched, node);
    }

    fn kernel_instrumented(&self) -> bool {
        self.cfg.kernel_instrumentation && self.cfg.monitoring == MonitoringMode::Hybrid
    }

    /// Emits a kernel-instrumentation event on `node`'s display. Called
    /// only from contexts where the kernel owns the CPU (dispatch,
    /// mailbox service, the tail of a running process), so the pattern
    /// sequence never interleaves with an application event.
    fn kernel_emit(&mut self, now: SimTime, node: NodeId, token: u16, param: u32) {
        self.stats.kernel_events += 1;
        let spacing = (self.cfg.kernel_event_cost / EmissionRecord::write_count() as u64)
            .max(SimDuration::from_nanos(100));
        self.display_emit(now, node, spacing, token, param);
    }

    /// Writes one event's pattern sequence to `node`'s display —
    /// inline into the signal log, or as a compact [`EmissionRecord`]
    /// when display materialization is deferred. Both paths run the
    /// same serialization arithmetic, so the eventual writes are
    /// bit-identical.
    fn display_emit(
        &mut self,
        now: SimTime,
        node: NodeId,
        spacing: SimDuration,
        token: u16,
        param: u32,
    ) {
        // Serialize per node: two events fired at the same instant
        // (e.g. a block immediately followed by the next dispatch) must
        // not interleave their pattern pairs on the display.
        let idx = self.local_idx(node);
        let start = now.max(self.kernel_display_free[idx]);
        if self.cfg.deferred_display {
            self.deferred.push(EmissionRecord {
                start,
                spacing,
                node,
                token,
                param,
            });
        } else {
            for (i, pattern) in encode(MonEvent::new(token, param)).into_iter().enumerate() {
                self.signals.push_display(DisplayWrite {
                    time: start + spacing * (i as u64 + 1),
                    node,
                    pattern,
                });
            }
        }
        self.kernel_display_free[idx] =
            start + spacing * (EmissionRecord::write_count() as u64 + 1);
    }

    /// Performs the configured monitoring technique's output for one
    /// instrumentation call. Returns the CPU cost, or `None` when the
    /// call is free (monitoring off).
    fn emit(&mut self, now: SimTime, node: NodeId, token: u16, param: u32) -> Option<SimDuration> {
        self.stats.events_emitted += 1;
        let event = MonEvent::new(token, param);
        match self.cfg.monitoring {
            MonitoringMode::Off => None,
            MonitoringMode::Hybrid => {
                let cost = self.cfg.monitor_costs.hybrid_call;
                // The per-node display serializer keeps application
                // pattern pairs from interleaving with kernel-event pairs
                // emitted during the preceding context switch.
                let spacing = self.cfg.monitor_costs.hybrid_write_spacing();
                self.display_emit(now, node, spacing, token, param);
                self.intrusion.record_event(cost);
                Some(cost)
            }
            MonitoringMode::Terminal => {
                let cost = self.cfg.monitor_costs.terminal_transfer
                    + self.cfg.monitor_costs.terminal_ctx_switch;
                let raw = event.raw48();
                let bytes: [u8; 6] = [
                    (raw >> 40) as u8,
                    (raw >> 32) as u8,
                    (raw >> 24) as u8,
                    (raw >> 16) as u8,
                    (raw >> 8) as u8,
                    raw as u8,
                ];
                let spacing = self.cfg.monitor_costs.terminal_transfer / 6;
                let start = now + self.cfg.monitor_costs.terminal_ctx_switch;
                for (i, b) in bytes.into_iter().enumerate() {
                    self.signals.push_terminal(TerminalWrite {
                        time: start + spacing * (i as u64 + 1),
                        node,
                        byte: b,
                    });
                }
                self.intrusion.record_event(cost);
                Some(cost)
            }
            MonitoringMode::Software => {
                let cost = self.cfg.monitor_costs.software_call;
                let idx = self.local_idx(node);
                self.software[idx].record(now, event);
                self.intrusion.record_event(cost);
                if cost.is_zero() {
                    None
                } else {
                    Some(cost)
                }
            }
        }
    }
}

/// A simulated SUPRENUM machine.
///
/// # Examples
///
/// ```
/// use des::time::{SimDuration, SimTime};
/// use suprenum::{Action, Machine, MachineConfig, NodeId, ProcCtx, Process, Resume, RunEnd};
///
/// struct Busy(u8);
/// impl Process for Busy {
///     fn resume(&mut self, _ctx: &ProcCtx, _why: Resume) -> Action {
///         self.0 += 1;
///         if self.0 == 1 {
///             Action::Compute(SimDuration::from_millis(3))
///         } else {
///             Action::Exit
///         }
///     }
/// }
///
/// let mut machine = Machine::new(MachineConfig::single_cluster(2), 42).unwrap();
/// machine.add_process(NodeId::new(0), Box::new(Busy(0)));
/// let outcome = machine.run(SimTime::from_secs(1));
/// assert_eq!(outcome.reason, RunEnd::Completed);
/// assert!(outcome.end >= SimTime::from_millis(3));
/// ```
pub struct Machine {
    cfg: MachineConfig,
    topo: Topology,
    parts: Vec<Partition>,
    engine: Engine,
    /// Worker threads the per-cluster engine shards are packed onto
    /// (presentation only — never affects the logical schedule).
    engine_shards: usize,
    /// Emissions collected from all partitions at epoch barriers,
    /// in cluster-major epoch order (the multi-cluster analogue of a
    /// partition's `deferred` buffer).
    drain: Vec<EmissionRecord>,
    /// End time of the latest sharded run chunk.
    last_end: SimTime,
    initial: Option<ProcessId>,
    initial_cluster: usize,
    /// Set once a sharded run's partitions were merged for reporting;
    /// a merged machine cannot be run again.
    merged: bool,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let processes: usize = self
            .parts
            .iter()
            .map(|p| p.procs.iter().filter(|s| s.is_some()).count())
            .sum();
        f.debug_struct("Machine")
            .field("nodes", &self.topo.total_nodes())
            .field("processes", &processes)
            .field("now", &self.now())
            .field("halted", &self.parts[self.initial_cluster].halted)
            .finish()
    }
}

impl Machine {
    /// Builds a machine from a configuration and a determinism seed.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error if it is inconsistent.
    pub fn new(cfg: MachineConfig, seed: u64) -> Result<Self, crate::config::ConfigError> {
        cfg.validate()?;
        let topo = Topology::new(&cfg);
        let rng = DetRng::new(seed);
        let mut software: VecDeque<SoftwareMonitor> = topo
            .nodes()
            .map(|n| {
                let mut node_rng = rng.derive_indexed("node-clock", n.index() as u64);
                let clock = ClockModel::random_skew(
                    &mut node_rng,
                    cfg.node_clock_max_offset,
                    cfg.node_clock_max_drift_ppm,
                    cfg.node_clock_resolution,
                );
                SoftwareMonitor::new(clock, cfg.software_buffer_capacity)
            })
            .collect();
        let multi = topo.clusters() > 1;
        let directory = multi.then(|| Arc::new(RwLock::new(HashMap::new())));
        let npc = topo.nodes_per_cluster() as usize;
        let parts: Vec<Partition> = (0..topo.clusters())
            .map(|c| {
                let cluster = ClusterId::new(c);
                let first_node = topo.first_node(cluster).index();
                Partition {
                    cluster,
                    first_node,
                    clusters: topo.clusters() as u32,
                    cfg: cfg.clone(),
                    topo: topo.clone(),
                    interconnect: Interconnect::new(&cfg, &topo),
                    procs: Vec::new(),
                    // Each node owns one policy instance; fuzz policies
                    // draw from a stream derived from the machine seed
                    // and the *global* node index, so perturbations are
                    // independent of the cluster decomposition.
                    nodes: (0..npc)
                        .map(|i| {
                            let global = first_node as u64 + i as u64;
                            Node::new(cfg.scheduler.build(rng.derive_indexed("sched", global)))
                        })
                        .collect(),
                    conds: HashMap::new(),
                    signals: SignalLog::new(),
                    ground_truth: GroundTruth::new(),
                    intrusion: IntrusionReport::default(),
                    software: software.drain(..npc).collect(),
                    stats: KernelStats::default(),
                    kernel_display_free: vec![SimTime::ZERO; npc],
                    deferred: Vec::new(),
                    next_pid: 0,
                    next_team: 0,
                    initial: None,
                    halted: false,
                    events_handled: 0,
                    now_local: SimTime::ZERO,
                    directory: directory.clone(),
                }
            })
            .collect();
        let engine = if multi {
            let lookahead = cfg.ring_token_latency + cfg.ring_hop_latency;
            Engine::Sharded(ShardedEventLoop::new(topo.clusters() as usize, lookahead))
        } else {
            Engine::Seq(EventLoop::new())
        };
        Ok(Machine {
            cfg,
            topo,
            parts,
            engine,
            engine_shards: 1,
            drain: Vec::new(),
            last_end: SimTime::ZERO,
            initial: None,
            initial_cluster: 0,
            merged: false,
        })
    }

    /// Adds a root process on `node` before the run starts. The first
    /// process added is the application's *initial process*: its exit
    /// terminates the whole application (paper §2.2).
    ///
    /// # Panics
    ///
    /// Panics if called after [`run`](Self::run) or if `node` is out of
    /// range.
    pub fn add_process(&mut self, node: NodeId, body: Box<dyn Process>) -> ProcessId {
        assert!(
            node.index() < self.topo.total_nodes(),
            "process placed on nonexistent node {node}"
        );
        assert!(
            self.now() == SimTime::ZERO && !self.parts.iter().any(|p| p.halted),
            "add_process before run"
        );
        let c = self.topo.cluster_of(node).index() as usize;
        let part = &mut self.parts[c];
        let team = part.alloc_team();
        let pid = part.alloc_pid();
        part.create_proc(pid, node, team, body, SimTime::ZERO);
        if self.initial.is_none() {
            self.initial = Some(pid);
            self.initial_cluster = c;
            for p in &mut self.parts {
                p.initial = Some(pid);
            }
        }
        let ctx = self.parts[c].node_ctx(SimTime::ZERO, node);
        self.parts[c]
            .local_node_mut(node)
            .sched
            .on_ready(LwpId::User(pid), &ctx);
        pid
    }

    /// Sets how many worker threads a multi-cluster machine's engine
    /// shards are packed onto. The logical shards are always the
    /// clusters; this only controls physical parallelism, so traces are
    /// bit-identical for every value. One thread (the default) runs the
    /// windowed algorithm inline; single-cluster machines ignore this
    /// and stay on the plain sequential loop.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn set_engine_shards(&mut self, shards: usize) {
        assert!(shards >= 1, "engine shards must be nonzero");
        self.engine_shards = shards;
    }

    /// The sharded engine's execution profile — `None` on a
    /// single-cluster machine, which runs the plain sequential loop.
    /// Available after (or during) a run; all counters are
    /// deterministic, so the profile is part of the reproducible
    /// record of a shape, not a wall-clock measurement.
    pub fn engine_profile(&self) -> Option<EngineProfile> {
        match &self.engine {
            Engine::Seq(_) => None,
            Engine::Sharded(eng) => Some(EngineProfile {
                epochs: eng.epochs(),
                shard_events: eng.shard_steps(),
            }),
        }
    }

    /// Runs the application until it terminates, deadlocks, or reaches
    /// `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if no process was added.
    pub fn run(&mut self, horizon: SimTime) -> RunOutcome {
        self.run_budgeted(horizon, u64::MAX)
    }

    /// Like [`run`](Self::run) but also bounded by an event budget. On
    /// a multi-cluster machine the budget is enforced at epoch
    /// granularity, so slightly more events than `max_events` may run.
    pub fn run_budgeted(&mut self, horizon: SimTime, max_events: u64) -> RunOutcome {
        let (horizon, limited) = self.start_run(horizon);
        match self.engine {
            Engine::Seq(_) => {
                let stop = self.run_chunk_seq(horizon, max_events);
                self.finish_seq(stop, limited)
            }
            Engine::Sharded(_) => {
                let stop = self.run_multi(horizon, max_events, None);
                self.finish_multi(stop, limited)
            }
        }
    }

    /// Runs the application like [`run`](Self::run), but pauses every
    /// `window_events` kernel events to let a monitor-plane consumer
    /// observe the run in flight: `on_window(now, emissions)` receives
    /// the current simulated time and the deferred-emission buffer (see
    /// [`MachineConfig::deferred_display`]), which it may drain — e.g.
    /// into monitor shards, releasing their streams up to `now`.
    ///
    /// The watermark guarantee: every emission recorded *after* a
    /// callback at time `now` has all its display writes strictly later
    /// than `now`, so a consumer that drains the buffer may safely
    /// process everything up to (excluding) `now`. The callback runs one
    /// final time after the last event, with `now` at the end time.
    ///
    /// On a multi-cluster machine the engine observes at epoch
    /// boundaries instead — the callback fires once per lookahead
    /// window with the epoch watermark, and `window_events` is not
    /// used. The watermark guarantee is identical.
    ///
    /// Emissions still buffered when the run ends expand into the
    /// signal log as usual, so [`Machine::signals`] stays complete no
    /// matter how much the callback drained.
    ///
    /// # Panics
    ///
    /// Panics if no process was added or `window_events` is zero.
    pub fn run_observed<F>(
        &mut self,
        horizon: SimTime,
        window_events: u64,
        mut on_window: F,
    ) -> RunOutcome
    where
        F: FnMut(SimTime, &mut Vec<EmissionRecord>),
    {
        assert!(window_events > 0, "observation window must be nonzero");
        let (horizon, limited) = self.start_run(horizon);
        match self.engine {
            Engine::Seq(_) => {
                let stop = loop {
                    let stop = self.run_chunk_seq(horizon, window_events);
                    let now = self.now();
                    let part = &mut self.parts[0];
                    on_window(now, &mut part.deferred);
                    if part.halted || stop != StopReason::StepBudget {
                        break stop;
                    }
                };
                self.finish_seq(stop, limited)
            }
            Engine::Sharded(_) => {
                let stop = self.run_multi(horizon, u64::MAX, Some(&mut on_window));
                self.finish_multi(stop, limited)
            }
        }
    }

    /// Applies the job time limit and kicks every node with ready work.
    fn start_run(&mut self, horizon: SimTime) -> (SimTime, bool) {
        assert!(self.initial.is_some(), "machine has no processes");
        // The operator's job time limit releases the partition even if
        // the application has not finished.
        let release_at = self.cfg.job_time_limit.map(|l| SimTime::ZERO + l);
        let (horizon, limited) = match release_at {
            Some(r) if r < horizon => (r, true),
            _ => (horizon, false),
        };
        for n in self.topo.nodes() {
            let c = self.topo.cluster_of(n).index() as usize;
            if !self.parts[c].local_node(n).sched.has_ready() {
                continue;
            }
            match &mut self.engine {
                Engine::Seq(sim) => sim.schedule(SimTime::ZERO, Ev::Dispatch(n)),
                Engine::Sharded(eng) => eng.schedule(c, SimTime::ZERO, Ev::Dispatch(n)),
            }
        }
        (horizon, limited)
    }

    /// Handles up to `max_events` events on the sequential engine
    /// (resumable).
    fn run_chunk_seq(&mut self, horizon: SimTime, max_events: u64) -> StopReason {
        let Engine::Seq(sim) = &mut self.engine else {
            unreachable!("run_chunk_seq on a sharded engine");
        };
        let part = &mut self.parts[0];
        sim.run_bounded(horizon, max_events, |sim, _now, ev| {
            part.handle(&mut SeqSched { sim }, ev);
        })
    }

    /// Runs the sharded engine: every partition advances in lockstep
    /// lookahead windows, `engine_shards` worker threads wide. Each
    /// epoch barrier collects the partitions' deferred emissions into
    /// the machine-level drain (cluster order) and, when observing,
    /// fires the window callback with the epoch watermark.
    fn run_multi(
        &mut self,
        horizon: SimTime,
        max_events: u64,
        mut on_window: Option<WindowHook<'_>>,
    ) -> StopReason {
        assert!(
            !self.merged,
            "a multi-cluster machine cannot run again after it finished"
        );
        let threads = self.engine_shards;
        let Engine::Sharded(eng) = &mut self.engine else {
            unreachable!("run_multi on a sequential engine");
        };
        let parts = &mut self.parts;
        let drain = &mut self.drain;
        let mut last_wm = self.last_end;
        let stop = eng.run_threaded(
            parts,
            horizon,
            max_events,
            threads,
            |part: &mut Partition, ctx, _now, ev| part.handle(&mut ShardSched { ctx }, ev),
            |part: &mut Partition| std::mem::take(&mut part.deferred),
            |watermark, collected: Vec<Vec<EmissionRecord>>| {
                for mut c in collected {
                    drain.append(&mut c);
                }
                // Clamp to non-decreasing: the final epoch reports
                // SimTime::MAX when drained, and a horizon stop can
                // leave the last window start behind an earlier one.
                last_wm = watermark.max(last_wm);
                if let Some(cb) = on_window.as_deref_mut() {
                    cb(last_wm, drain);
                }
            },
        );
        // Anything deferred after the last collected epoch.
        for part in parts.iter_mut() {
            drain.append(&mut part.deferred);
        }
        let end = parts
            .iter()
            .map(|p| p.now_local)
            .max()
            .unwrap_or(SimTime::ZERO);
        self.last_end = self.last_end.max(end);
        if let Some(cb) = on_window {
            cb(last_wm.max(self.last_end), drain);
        }
        stop
    }

    /// Expands leftover deferred emissions, sorts the signal log, and
    /// folds the stop reason into the outcome (sequential engine).
    fn finish_seq(&mut self, stop: StopReason, limited: bool) -> RunOutcome {
        let part = &mut self.parts[0];
        part.materialize_deferred();
        part.signals.sort();
        let reason = if part.halted {
            RunEnd::Completed
        } else {
            Self::stop_reason(stop, limited)
        };
        let Engine::Seq(sim) = &self.engine else {
            unreachable!("finish_seq on a sharded engine");
        };
        RunOutcome {
            end: sim.now(),
            reason,
            events: sim.steps_handled(),
        }
    }

    /// Merges every partition's state into partition 0 for reporting and
    /// folds the stop reason into the outcome (sharded engine).
    fn finish_multi(&mut self, stop: StopReason, limited: bool) -> RunOutcome {
        if !self.merged {
            self.merged = true;
            let (first, rest) = self.parts.split_at_mut(1);
            let p0 = &mut first[0];
            for p in rest {
                p0.signals.absorb(&mut p.signals);
                p0.ground_truth.absorb(&mut p.ground_truth);
                let intr = std::mem::take(&mut p.intrusion);
                p0.intrusion.events += intr.events;
                p0.intrusion.total_intrusion += intr.total_intrusion;
                p0.intrusion.total_application += intr.total_application;
                p0.stats.merge(std::mem::take(&mut p.stats));
                p0.interconnect.merge_stats(p.interconnect.take_stats());
                p0.software.append(&mut p.software);
                p0.events_handled += std::mem::take(&mut p.events_handled);
            }
        }
        let completed = self.parts[self.initial_cluster].halted;
        let part = &mut self.parts[0];
        for rec in std::mem::take(&mut self.drain) {
            for w in rec.writes() {
                part.signals.push_display(w);
            }
        }
        part.signals.sort();
        let reason = if completed {
            RunEnd::Completed
        } else {
            Self::stop_reason(stop, limited)
        };
        RunOutcome {
            end: self.last_end,
            reason,
            events: self.parts[0].events_handled,
        }
    }

    fn stop_reason(stop: StopReason, limited: bool) -> RunEnd {
        match stop {
            StopReason::Drained => RunEnd::Deadlock,
            StopReason::Horizon if limited => RunEnd::ResourcesReleased,
            StopReason::Horizon => RunEnd::Horizon,
            StopReason::StepBudget => RunEnd::EventBudget,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The configuration the machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The machine topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        match &self.engine {
            Engine::Seq(sim) => sim.now(),
            Engine::Sharded(_) => self.last_end,
        }
    }

    /// Externally observable hardware signals (display, terminal).
    pub fn signals(&self) -> &SignalLog {
        &self.parts[0].signals
    }

    /// True process-state history (the validation oracle).
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.parts[0].ground_truth
    }

    /// Monitoring intrusion accounting.
    pub fn intrusion(&self) -> &IntrusionReport {
        &self.parts[0].intrusion
    }

    /// Per-node software-monitoring logs (populated when
    /// [`MonitoringMode::Software`] is configured).
    pub fn software_monitors(&self) -> &[SoftwareMonitor] {
        &self.parts[0].software
    }

    /// Kernel counters.
    pub fn stats(&self) -> KernelStats {
        self.parts[0].stats
    }

    /// Interconnect counters.
    pub fn interconnect_stats(&self) -> InterconnectStats {
        self.parts[0].interconnect.stats()
    }

    /// The label a process registered with.
    pub fn process_label(&self, pid: ProcessId) -> Option<&str> {
        self.parts
            .iter()
            .find_map(|p| p.ground_truth.history(pid))
            .map(|h| h.label.as_str())
    }
}
