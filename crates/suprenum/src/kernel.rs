//! The machine kernel: node schedulers, messaging, mailboxes and
//! monitoring hooks.
//!
//! [`Machine`] owns every simulated node, process and bus. Its scheduling
//! policy is the one the paper reverse-engineered from SUPRENUM's node
//! operating system:
//!
//! * light-weight processes are scheduled **round-robin without time
//!   slicing** — a running process keeps the CPU until it blocks or
//!   deliberately relinquishes it;
//! * each process's **mailbox is itself a light-weight process** that must
//!   be scheduled to accept an incoming message; the *sender stays
//!   blocked* until that happens. This is the mechanism that makes
//!   SUPRENUM's "asynchronous" mailbox communication behave synchronously
//!   (paper §4.3, version 1) and the simulator reproduces it structurally.
//!
//! Instrumentation ([`Action::Emit`]) is dispatched to the configured
//! monitoring technique: hybrid monitoring writes the encoded pattern
//! sequence to the node's seven-segment display (externally observable in
//! the [`SignalLog`]), terminal monitoring serializes the event over the
//! V.24 interface, software monitoring appends to a node-local buffer
//! stamped with the node's skewed local clock.

use std::collections::{HashMap, HashSet, VecDeque};

use des::clock::ClockModel;
use des::engine::{EventLoop, StopReason};
use des::rng::DetRng;
use des::time::{SimDuration, SimTime};
use hybridmon::software::SoftwareMonitor;
use hybridmon::{encode::encode, IntrusionReport, MonEvent, MonitoringMode};

use crate::bus::{Interconnect, InterconnectStats};
use crate::config::MachineConfig;
use crate::emission::EmissionRecord;
use crate::ground_truth::{BlockReason, GroundTruth, ProcState};
use crate::ids::{CondId, LwpId, NodeId, ProcessId, TeamId};
use crate::message::Message;
use crate::process::{Action, ProcCtx, Process, Resume};
use crate::signals::{DisplayWrite, SignalLog, TerminalWrite};
use crate::topology::{Route, Topology};

/// Safety valve against processes that loop through zero-cost actions
/// without ever blocking or computing.
const MAX_ZERO_COST_ACTIONS: u32 = 1_000_000;

/// Kernel events.
#[derive(Debug)]
enum Ev {
    /// Try to start the next ready LWP on a node.
    Dispatch(NodeId),
    /// Context switch finished; `lwp` starts running.
    Started { node: NodeId, lwp: LwpId },
    /// A running process's timed action (compute, emit, spawn bookkeeping)
    /// completed; it continues without a scheduling decision.
    ResumeRunning { pid: ProcessId, resume: Resume },
    /// A blocked process becomes ready again with this resume value.
    Unblock { pid: ProcessId, resume: Resume },
    /// A synchronous message arrives at the destination node.
    SyncArrive {
        dst: ProcessId,
        src: ProcessId,
        msg: Message,
    },
    /// A mailbox message arrives at the destination node, awaiting the
    /// mailbox LWP.
    MailboxArrive {
        dst: ProcessId,
        src: ProcessId,
        msg: Message,
    },
    /// A remotely spawned process becomes runnable.
    SpawnReady { pid: ProcessId },
    /// The mailbox LWP of `owner` finished accepting `count` messages.
    MailboxServiced { owner: ProcessId, count: usize },
}

/// Why [`Machine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEnd {
    /// The initial process exited; the application terminated normally.
    Completed,
    /// No events remain but the application has not terminated: every
    /// live process is blocked forever. A bug in the measured program —
    /// exactly what the monitoring is for.
    Deadlock,
    /// The time horizon was reached first.
    Horizon,
    /// The operator's job time limit expired and the partition was
    /// released with the application unfinished (paper §2.2).
    ResourcesReleased,
    /// The event budget was exhausted (indicates a livelock).
    EventBudget,
}

impl RunEnd {
    /// Returns `true` if the run was cut short — any end other than
    /// [`RunEnd::Completed`]. A truncated run's derived statistics
    /// (utilization, job counts, phase durations) describe an
    /// *interrupted* execution and must not be compared against
    /// completed runs.
    pub fn is_truncation(self) -> bool {
        self != RunEnd::Completed
    }
}

impl std::fmt::Display for RunEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RunEnd::Completed => "completed",
            RunEnd::Deadlock => "deadlock",
            RunEnd::Horizon => "horizon",
            RunEnd::ResourcesReleased => "resources-released",
            RunEnd::EventBudget => "event-budget",
        })
    }
}

/// Result of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Final simulated time.
    pub end: SimTime,
    /// Why the run ended.
    pub reason: RunEnd,
    /// Kernel events the simulation loop processed during this run —
    /// the measure a step budget is charged against.
    pub events: u64,
}

impl RunOutcome {
    /// Returns `true` if the run was cut short (see
    /// [`RunEnd::is_truncation`]).
    pub fn truncated(&self) -> bool {
        self.reason.is_truncation()
    }
}

/// Aggregate kernel counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Context switches performed across all nodes.
    pub ctx_switches: u64,
    /// Context switches that crossed a team boundary (expensive).
    pub inter_team_switches: u64,
    /// Mailbox-LWP scheduling rounds.
    pub mailbox_services: u64,
    /// Messages accepted by mailbox LWPs.
    pub mailbox_messages: u64,
    /// Synchronous rendezvous completed.
    pub sync_messages: u64,
    /// Instrumentation events emitted.
    pub events_emitted: u64,
    /// Processes created.
    pub processes_spawned: u64,
    /// Kernel (OS) instrumentation events emitted.
    pub kernel_events: u64,
}

struct Proc {
    node: NodeId,
    team: TeamId,
    body: Option<Box<dyn Process>>,
    state: ProcState,
    mbox: VecDeque<Message>,
    pending_resume: Option<Resume>,
}

struct Node {
    ready: VecDeque<LwpId>,
    running: Option<LwpId>,
    dispatching: bool,
    /// Team of the last LWP that held the CPU (for switch pricing).
    last_team: Option<TeamId>,
    /// Synchronous messages that arrived before the receiver called
    /// `Recv`, per destination process.
    pending_sync: HashMap<ProcessId, VecDeque<(ProcessId, Message)>>,
    /// Mailbox messages that arrived but have not yet been *accepted* by
    /// the destination's mailbox LWP (their senders are still blocked).
    mailbox_arrivals: HashMap<ProcessId, VecDeque<(ProcessId, Message)>>,
    /// Mailbox LWPs currently enqueued or running.
    mailbox_active: HashSet<ProcessId>,
}

impl Node {
    fn new() -> Self {
        Node {
            ready: VecDeque::new(),
            running: None,
            dispatching: false,
            last_team: None,
            pending_sync: HashMap::new(),
            mailbox_arrivals: HashMap::new(),
            mailbox_active: HashSet::new(),
        }
    }
}

/// A simulated SUPRENUM machine.
///
/// # Examples
///
/// ```
/// use des::time::{SimDuration, SimTime};
/// use suprenum::{Action, Machine, MachineConfig, NodeId, ProcCtx, Process, Resume, RunEnd};
///
/// struct Busy(u8);
/// impl Process for Busy {
///     fn resume(&mut self, _ctx: &ProcCtx, _why: Resume) -> Action {
///         self.0 += 1;
///         if self.0 == 1 {
///             Action::Compute(SimDuration::from_millis(3))
///         } else {
///             Action::Exit
///         }
///     }
/// }
///
/// let mut machine = Machine::new(MachineConfig::single_cluster(2), 42).unwrap();
/// machine.add_process(NodeId::new(0), Box::new(Busy(0)));
/// let outcome = machine.run(SimTime::from_secs(1));
/// assert_eq!(outcome.reason, RunEnd::Completed);
/// assert!(outcome.end >= SimTime::from_millis(3));
/// ```
pub struct Machine {
    cfg: MachineConfig,
    topo: Topology,
    interconnect: Interconnect,
    sim: EventLoop<Ev>,
    procs: Vec<Proc>,
    nodes: Vec<Node>,
    conds: HashMap<CondId, Vec<ProcessId>>,
    signals: SignalLog,
    ground_truth: GroundTruth,
    intrusion: IntrusionReport,
    software: Vec<SoftwareMonitor>,
    stats: KernelStats,
    /// Per-node earliest time the display is free for a kernel event
    /// (serializes kernel emissions so pattern pairs never interleave).
    kernel_display_free: Vec<SimTime>,
    /// Hybrid emissions awaiting expansion when
    /// [`MachineConfig::deferred_display`] is set; drained by the
    /// monitor plane during [`Machine::run_observed`] or expanded into
    /// the signal log when the run ends.
    deferred: Vec<EmissionRecord>,
    next_team: u32,
    initial: Option<ProcessId>,
    halted: bool,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("nodes", &self.nodes.len())
            .field("processes", &self.procs.len())
            .field("now", &self.sim.now())
            .field("halted", &self.halted)
            .finish()
    }
}

impl Machine {
    /// Builds a machine from a configuration and a determinism seed.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error if it is inconsistent.
    pub fn new(cfg: MachineConfig, seed: u64) -> Result<Self, crate::config::ConfigError> {
        cfg.validate()?;
        let topo = Topology::new(&cfg);
        let interconnect = Interconnect::new(&cfg, &topo);
        let rng = DetRng::new(seed);
        let software = topo
            .nodes()
            .map(|n| {
                let mut node_rng = rng.derive_indexed("node-clock", n.index() as u64);
                let clock = ClockModel::random_skew(
                    &mut node_rng,
                    cfg.node_clock_max_offset,
                    cfg.node_clock_max_drift_ppm,
                    cfg.node_clock_resolution,
                );
                SoftwareMonitor::new(clock, cfg.software_buffer_capacity)
            })
            .collect();
        let nodes: Vec<Node> = (0..topo.total_nodes()).map(|_| Node::new()).collect();
        let nodes_len = nodes.len();
        Ok(Machine {
            cfg,
            topo,
            interconnect,
            sim: EventLoop::new(),
            procs: Vec::new(),
            nodes,
            conds: HashMap::new(),
            signals: SignalLog::new(),
            ground_truth: GroundTruth::new(),
            intrusion: IntrusionReport::default(),
            software,
            stats: KernelStats::default(),
            kernel_display_free: vec![SimTime::ZERO; nodes_len],
            deferred: Vec::new(),
            next_team: 0,
            initial: None,
            halted: false,
        })
    }

    /// Adds a root process on `node` before the run starts. The first
    /// process added is the application's *initial process*: its exit
    /// terminates the whole application (paper §2.2).
    ///
    /// # Panics
    ///
    /// Panics if called after [`run`](Self::run) or if `node` is out of
    /// range.
    pub fn add_process(&mut self, node: NodeId, body: Box<dyn Process>) -> ProcessId {
        assert!(
            self.sim.now() == SimTime::ZERO && !self.halted,
            "add_process before run"
        );
        let team = TeamId::new(self.next_team);
        self.next_team += 1;
        let pid = self.create_proc(node, team, body, SimTime::ZERO);
        if self.initial.is_none() {
            self.initial = Some(pid);
        }
        self.nodes[node.index() as usize]
            .ready
            .push_back(LwpId::User(pid));
        pid
    }

    /// Runs the application until it terminates, deadlocks, or reaches
    /// `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if no process was added.
    pub fn run(&mut self, horizon: SimTime) -> RunOutcome {
        self.run_budgeted(horizon, u64::MAX)
    }

    /// Like [`run`](Self::run) but also bounded by an event budget.
    pub fn run_budgeted(&mut self, horizon: SimTime, max_events: u64) -> RunOutcome {
        let (horizon, limited) = self.start_run(horizon);
        let stop = self.run_chunk(horizon, max_events);
        self.finish_run(stop, limited)
    }

    /// Runs the application like [`run`](Self::run), but pauses every
    /// `window_events` kernel events to let a monitor-plane consumer
    /// observe the run in flight: `on_window(now, emissions)` receives
    /// the current simulated time and the deferred-emission buffer (see
    /// [`MachineConfig::deferred_display`]), which it may drain — e.g.
    /// into monitor shards, releasing their streams up to `now`.
    ///
    /// The watermark guarantee: every emission recorded *after* a
    /// callback at time `now` has all its display writes strictly later
    /// than `now`, so a consumer that drains the buffer may safely
    /// process everything up to (excluding) `now`. The callback runs one
    /// final time after the last event, with `now` at the end time.
    ///
    /// Emissions still buffered when the run ends expand into the
    /// signal log as usual, so [`Machine::signals`] stays complete no
    /// matter how much the callback drained.
    ///
    /// # Panics
    ///
    /// Panics if no process was added or `window_events` is zero.
    pub fn run_observed<F>(
        &mut self,
        horizon: SimTime,
        window_events: u64,
        mut on_window: F,
    ) -> RunOutcome
    where
        F: FnMut(SimTime, &mut Vec<EmissionRecord>),
    {
        assert!(window_events > 0, "observation window must be nonzero");
        let (horizon, limited) = self.start_run(horizon);
        let stop = loop {
            let stop = self.run_chunk(horizon, window_events);
            on_window(self.sim.now(), &mut self.deferred);
            if self.halted || stop != StopReason::StepBudget {
                break stop;
            }
        };
        self.finish_run(stop, limited)
    }

    /// Applies the job time limit and kicks every node with ready work.
    fn start_run(&mut self, horizon: SimTime) -> (SimTime, bool) {
        assert!(self.initial.is_some(), "machine has no processes");
        // The operator's job time limit releases the partition even if
        // the application has not finished.
        let release_at = self.cfg.job_time_limit.map(|l| SimTime::ZERO + l);
        let (horizon, limited) = match release_at {
            Some(r) if r < horizon => (r, true),
            _ => (horizon, false),
        };
        for n in self.topo.nodes() {
            if !self.nodes[n.index() as usize].ready.is_empty() {
                self.sim.schedule(SimTime::ZERO, Ev::Dispatch(n));
            }
        }
        (horizon, limited)
    }

    /// Handles up to `max_events` events (resumable).
    fn run_chunk(&mut self, horizon: SimTime, max_events: u64) -> StopReason {
        // The borrow checker will not let the handler borrow `self` while
        // `self.sim` runs, so the event loop is temporarily moved out.
        let mut sim = std::mem::take(&mut self.sim);
        let stop = sim.run_bounded(horizon, max_events, |sim, _now, ev| {
            // Reinstall the loop so kernel methods can schedule.
            std::mem::swap(&mut self.sim, sim);
            self.handle(ev);
            std::mem::swap(&mut self.sim, sim);
        });
        self.sim = sim;
        stop
    }

    /// Expands leftover deferred emissions, sorts the signal log, and
    /// folds the stop reason into the outcome.
    fn finish_run(&mut self, stop: StopReason, limited: bool) -> RunOutcome {
        self.materialize_deferred();
        self.signals.sort();
        let reason = if self.halted {
            RunEnd::Completed
        } else {
            match stop {
                StopReason::Drained => RunEnd::Deadlock,
                StopReason::Horizon if limited => RunEnd::ResourcesReleased,
                StopReason::Horizon => RunEnd::Horizon,
                StopReason::StepBudget => RunEnd::EventBudget,
            }
        };
        RunOutcome {
            end: self.sim.now(),
            reason,
            events: self.sim.steps_handled(),
        }
    }

    /// Expands every still-buffered deferred emission into the signal
    /// log (in emission order, matching the inline path's push order).
    fn materialize_deferred(&mut self) {
        for rec in std::mem::take(&mut self.deferred) {
            for w in rec.writes() {
                self.signals.push_display(w);
            }
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The configuration the machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The machine topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Externally observable hardware signals (display, terminal).
    pub fn signals(&self) -> &SignalLog {
        &self.signals
    }

    /// True process-state history (the validation oracle).
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.ground_truth
    }

    /// Monitoring intrusion accounting.
    pub fn intrusion(&self) -> &IntrusionReport {
        &self.intrusion
    }

    /// Per-node software-monitoring logs (populated when
    /// [`MonitoringMode::Software`] is configured).
    pub fn software_monitors(&self) -> &[SoftwareMonitor] {
        &self.software
    }

    /// Kernel counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Interconnect counters.
    pub fn interconnect_stats(&self) -> InterconnectStats {
        self.interconnect.stats()
    }

    /// The label a process registered with.
    pub fn process_label(&self, pid: ProcessId) -> Option<&str> {
        self.ground_truth.history(pid).map(|h| h.label.as_str())
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Ev) {
        if self.halted {
            return;
        }
        match ev {
            Ev::Dispatch(node) => self.try_dispatch(node),
            Ev::Started { node, lwp } => self.start_lwp(node, lwp),
            Ev::ResumeRunning { pid, resume } => {
                debug_assert_eq!(self.procs[pid.raw() as usize].state, ProcState::Running);
                self.step_process(pid, resume);
            }
            Ev::Unblock { pid, resume } => self.unblock(pid, resume),
            Ev::SyncArrive { dst, src, msg } => self.sync_arrive(dst, src, msg),
            Ev::MailboxArrive { dst, src, msg } => self.mailbox_arrive(dst, src, msg),
            Ev::SpawnReady { pid } => {
                let node = self.procs[pid.raw() as usize].node;
                self.nodes[node.index() as usize]
                    .ready
                    .push_back(LwpId::User(pid));
                self.try_dispatch(node);
            }
            Ev::MailboxServiced { owner, count } => self.mailbox_serviced(owner, count),
        }
    }

    fn create_proc(
        &mut self,
        node: NodeId,
        team: TeamId,
        body: Box<dyn Process>,
        now: SimTime,
    ) -> ProcessId {
        assert!(
            node.index() < self.topo.total_nodes(),
            "process placed on nonexistent node {node}"
        );
        let pid = ProcessId::new(self.procs.len() as u32);
        let label = body.label();
        self.procs.push(Proc {
            node,
            team,
            body: Some(body),
            state: ProcState::Ready,
            mbox: VecDeque::new(),
            pending_resume: Some(Resume::Start),
        });
        self.ground_truth.register(pid, node, label, now);
        self.stats.processes_spawned += 1;
        pid
    }

    fn try_dispatch(&mut self, node: NodeId) {
        let n = &mut self.nodes[node.index() as usize];
        if n.running.is_some() || n.dispatching {
            return;
        }
        let Some(lwp) = n.ready.pop_front() else {
            return;
        };
        n.dispatching = true;
        self.stats.ctx_switches += 1;
        // Switch pricing (paper §2.2): cheap within a team, a full
        // address-space switch across teams.
        let next_team = self.procs[lwp.owner().raw() as usize].team;
        let n = &mut self.nodes[node.index() as usize];
        let same_team = n.last_team.is_none_or(|t| t == next_team);
        n.last_team = Some(next_team);
        let mut delay = if same_team {
            self.cfg.ctx_switch
        } else {
            self.stats.inter_team_switches += 1;
            self.cfg.ctx_switch_inter_team
        };
        if self.kernel_instrumented() {
            delay += self.cfg.kernel_event_cost;
            let code = u8::from(lwp.is_mailbox());
            self.kernel_emit(
                node,
                crate::os_tokens::KERNEL_DISPATCH,
                crate::os_tokens::param(lwp.owner().raw(), code),
            );
        }
        self.sim.schedule_in(delay, Ev::Started { node, lwp });
    }

    fn start_lwp(&mut self, node: NodeId, lwp: LwpId) {
        let n = &mut self.nodes[node.index() as usize];
        n.dispatching = false;
        n.running = Some(lwp);
        match lwp {
            LwpId::User(pid) => {
                let now = self.sim.now();
                self.set_state(pid, ProcState::Running, now);
                let resume = self.procs[pid.raw() as usize]
                    .pending_resume
                    .take()
                    .expect("dispatched process has no pending resume");
                self.step_process(pid, resume);
            }
            LwpId::Mailbox(owner) => {
                // The mailbox process accepts every message waiting right
                // now; later arrivals wait for its next scheduling.
                let count = self.nodes[node.index() as usize]
                    .mailbox_arrivals
                    .get(&owner)
                    .map_or(0, VecDeque::len);
                if self.kernel_instrumented() {
                    self.kernel_emit(
                        node,
                        crate::os_tokens::KERNEL_MAILBOX_SERVICE,
                        crate::os_tokens::param(owner.raw(), count.min(255) as u8),
                    );
                }
                self.stats.mailbox_services += 1;
                let busy = self.cfg.mailbox_accept_cost * count.max(1) as u64;
                self.sim
                    .schedule_in(busy, Ev::MailboxServiced { owner, count });
            }
        }
    }

    fn mailbox_serviced(&mut self, owner: ProcessId, count: usize) {
        let node = self.procs[owner.raw() as usize].node;
        let now = self.sim.now();
        for _ in 0..count {
            let (src, msg) = self.nodes[node.index() as usize]
                .mailbox_arrivals
                .get_mut(&owner)
                .and_then(VecDeque::pop_front)
                .expect("mailbox service count exceeds arrivals");
            self.stats.mailbox_messages += 1;
            // Accepting the message releases the (still blocked) sender.
            self.sim.schedule(
                now + self.cfg.ack_latency,
                Ev::Unblock {
                    pid: src,
                    resume: Resume::Sent,
                },
            );
            // Hand to the owner: directly if it is waiting, else queue.
            let owner_proc = &mut self.procs[owner.raw() as usize];
            let waiting = owner_proc.state == ProcState::Blocked(BlockReason::MailboxRecv)
                && owner_proc.pending_resume.is_none();
            if waiting {
                self.unblock(owner, Resume::MailboxMsg(msg));
            } else {
                owner_proc.mbox.push_back(msg);
            }
        }
        // Mailbox LWP blocks again (it is "always in a receive state").
        let n = &mut self.nodes[node.index() as usize];
        n.running = None;
        n.mailbox_active.remove(&owner);
        // Messages that arrived during servicing require another round.
        if n.mailbox_arrivals
            .get(&owner)
            .is_some_and(|q| !q.is_empty())
        {
            n.ready.push_back(LwpId::Mailbox(owner));
            n.mailbox_active.insert(owner);
        }
        self.try_dispatch(node);
    }

    fn sync_arrive(&mut self, dst: ProcessId, src: ProcessId, msg: Message) {
        let dst_proc = &self.procs[dst.raw() as usize];
        assert!(
            dst_proc.state != ProcState::Exited,
            "synchronous message to exited process {dst}"
        );
        let node = dst_proc.node;
        let waiting = dst_proc.state == ProcState::Blocked(BlockReason::Recv)
            && dst_proc.pending_resume.is_none();
        if waiting {
            self.complete_rendezvous(dst, src, msg);
        } else {
            self.nodes[node.index() as usize]
                .pending_sync
                .entry(dst)
                .or_default()
                .push_back((src, msg));
        }
    }

    fn complete_rendezvous(&mut self, dst: ProcessId, src: ProcessId, msg: Message) {
        self.stats.sync_messages += 1;
        let now = self.sim.now();
        self.sim.schedule(
            now + self.cfg.ack_latency,
            Ev::Unblock {
                pid: src,
                resume: Resume::Sent,
            },
        );
        self.unblock(dst, Resume::Msg(msg));
    }

    fn mailbox_arrive(&mut self, dst: ProcessId, src: ProcessId, msg: Message) {
        let dst_proc = &self.procs[dst.raw() as usize];
        assert!(
            dst_proc.state != ProcState::Exited,
            "mailbox message to exited process {dst}"
        );
        let node = dst_proc.node;
        let n = &mut self.nodes[node.index() as usize];
        n.mailbox_arrivals
            .entry(dst)
            .or_default()
            .push_back((src, msg));
        // Wake the mailbox LWP; it still has to *win the CPU* before the
        // sender is released — the crux of the paper's observation.
        if n.mailbox_active.insert(dst) {
            n.ready.push_back(LwpId::Mailbox(dst));
        }
        self.try_dispatch(node);
    }

    fn unblock(&mut self, pid: ProcessId, resume: Resume) {
        let now = self.sim.now();
        let proc = &mut self.procs[pid.raw() as usize];
        debug_assert!(
            matches!(proc.state, ProcState::Blocked(_)),
            "unblock of non-blocked process {pid} in state {:?}",
            proc.state
        );
        debug_assert!(proc.pending_resume.is_none(), "double unblock of {pid}");
        proc.pending_resume = Some(resume);
        let node = proc.node;
        self.set_state(pid, ProcState::Ready, now);
        self.nodes[node.index() as usize]
            .ready
            .push_back(LwpId::User(pid));
        self.try_dispatch(node);
    }

    fn set_state(&mut self, pid: ProcessId, state: ProcState, now: SimTime) {
        self.procs[pid.raw() as usize].state = state;
        self.ground_truth.record(pid, now, state);
    }

    /// Runs one process forward until it issues an action that takes
    /// simulated time or blocks.
    fn step_process(&mut self, pid: ProcessId, mut resume: Resume) {
        let mut guard = 0u32;
        loop {
            guard += 1;
            assert!(
                guard < MAX_ZERO_COST_ACTIONS,
                "process {pid} loops through zero-cost actions without blocking"
            );
            let now = self.sim.now();
            let node = self.procs[pid.raw() as usize].node;
            let ctx = ProcCtx { pid, node, now };
            let action = {
                let body = self.procs[pid.raw() as usize]
                    .body
                    .as_mut()
                    .expect("resuming an exited process");
                body.resume(&ctx, resume)
            };
            match action {
                Action::Compute(d) => {
                    self.intrusion.record_application(d);
                    self.sim.schedule_in(
                        d,
                        Ev::ResumeRunning {
                            pid,
                            resume: Resume::ComputeDone,
                        },
                    );
                    return;
                }
                Action::Emit { token, param } => {
                    if let Some(cost) = self.emit(pid, node, token, param) {
                        self.sim.schedule_in(
                            cost,
                            Ev::ResumeRunning {
                                pid,
                                resume: Resume::EmitDone,
                            },
                        );
                        return;
                    }
                    resume = Resume::EmitDone;
                }
                Action::SendSync { to, msg } => {
                    self.block(pid, BlockReason::SendSync);
                    let route = self.topo.route(node, self.procs[to.raw() as usize].node);
                    let arrival = self.interconnect.transfer(now, node, route, msg.bytes());
                    self.sim.schedule(
                        arrival,
                        Ev::SyncArrive {
                            dst: to,
                            src: pid,
                            msg,
                        },
                    );
                    return;
                }
                Action::Recv => {
                    let pending = self.nodes[node.index() as usize]
                        .pending_sync
                        .get_mut(&pid)
                        .and_then(VecDeque::pop_front);
                    match pending {
                        Some((src, msg)) => {
                            self.stats.sync_messages += 1;
                            self.sim.schedule(
                                now + self.cfg.ack_latency,
                                Ev::Unblock {
                                    pid: src,
                                    resume: Resume::Sent,
                                },
                            );
                            resume = Resume::Msg(msg);
                        }
                        None => {
                            self.block(pid, BlockReason::Recv);
                            return;
                        }
                    }
                }
                Action::MailboxSend { to, msg } => {
                    self.block(pid, BlockReason::MailboxSend);
                    let route = self.topo.route(node, self.procs[to.raw() as usize].node);
                    let arrival = self.interconnect.transfer(now, node, route, msg.bytes());
                    self.sim.schedule(
                        arrival,
                        Ev::MailboxArrive {
                            dst: to,
                            src: pid,
                            msg,
                        },
                    );
                    return;
                }
                Action::MailboxRecv => match self.procs[pid.raw() as usize].mbox.pop_front() {
                    Some(msg) => resume = Resume::MailboxMsg(msg),
                    None => {
                        self.block(pid, BlockReason::MailboxRecv);
                        return;
                    }
                },
                Action::Yield => {
                    let now = self.sim.now();
                    self.set_state(pid, ProcState::Ready, now);
                    self.procs[pid.raw() as usize].pending_resume = Some(Resume::Yielded);
                    let n = &mut self.nodes[node.index() as usize];
                    n.running = None;
                    n.ready.push_back(LwpId::User(pid));
                    self.try_dispatch(node);
                    return;
                }
                Action::Sleep(d) => {
                    self.block(pid, BlockReason::Sleep);
                    self.sim.schedule_in(
                        d,
                        Ev::Unblock {
                            pid,
                            resume: Resume::Slept,
                        },
                    );
                    return;
                }
                Action::Spawn { node: target, body } => {
                    // Processes spawned on the spawner's node join its
                    // team (light-weight); remote spawns start new teams.
                    let team = if target == node {
                        self.procs[pid.raw() as usize].team
                    } else {
                        let t = TeamId::new(self.next_team);
                        self.next_team += 1;
                        t
                    };
                    let child = self.create_proc(target, team, body, now);
                    if target == node {
                        self.nodes[target.index() as usize]
                            .ready
                            .push_back(LwpId::User(child));
                    } else {
                        self.sim.schedule_in(
                            self.cfg.remote_spawn_latency,
                            Ev::SpawnReady { pid: child },
                        );
                    }
                    self.intrusion.record_application(self.cfg.spawn_cost);
                    self.sim.schedule_in(
                        self.cfg.spawn_cost,
                        Ev::ResumeRunning {
                            pid,
                            resume: Resume::Spawned(child),
                        },
                    );
                    return;
                }
                Action::DiskWrite { bytes } => {
                    self.block(pid, BlockReason::Disk);
                    // The write travels over the cluster bus to the disk
                    // node, then streams to disk.
                    let cluster = self.topo.cluster_of(node);
                    let arrival = self.interconnect.transfer(
                        now,
                        node,
                        Route::IntraCluster { cluster },
                        bytes,
                    );
                    let write = self.cfg.disk_latency
                        + SimDuration::for_transfer(bytes as u64, self.cfg.disk_bandwidth);
                    self.sim.schedule(
                        arrival + write,
                        Ev::Unblock {
                            pid,
                            resume: Resume::DiskDone,
                        },
                    );
                    return;
                }
                Action::WaitCond(cond) => {
                    self.conds.entry(cond).or_default().push(pid);
                    self.block(pid, BlockReason::Cond);
                    return;
                }
                Action::SignalCond(cond) => {
                    if let Some(waiters) = self.conds.remove(&cond) {
                        for w in waiters {
                            self.unblock(w, Resume::Signalled);
                        }
                    }
                    resume = Resume::SignalSent;
                }
                Action::Exit => {
                    let now = self.sim.now();
                    if self.kernel_instrumented() {
                        self.kernel_emit(
                            node,
                            crate::os_tokens::KERNEL_EXIT,
                            crate::os_tokens::param(pid.raw(), 0),
                        );
                    }
                    self.set_state(pid, ProcState::Exited, now);
                    self.procs[pid.raw() as usize].body = None;
                    self.nodes[node.index() as usize].running = None;
                    if Some(pid) == self.initial {
                        // Termination of the initial process terminates
                        // the whole application (paper §2.2).
                        self.halted = true;
                        self.sim.clear();
                        return;
                    }
                    self.try_dispatch(node);
                    return;
                }
            }
        }
    }

    fn block(&mut self, pid: ProcessId, reason: BlockReason) {
        let now = self.sim.now();
        self.set_state(pid, ProcState::Blocked(reason), now);
        let node = self.procs[pid.raw() as usize].node;
        if self.kernel_instrumented() {
            self.kernel_emit(
                node,
                crate::os_tokens::KERNEL_BLOCK,
                crate::os_tokens::param(pid.raw(), crate::os_tokens::reason_code(reason)),
            );
        }
        self.nodes[node.index() as usize].running = None;
        self.try_dispatch(node);
    }

    fn kernel_instrumented(&self) -> bool {
        self.cfg.kernel_instrumentation && self.cfg.monitoring == MonitoringMode::Hybrid
    }

    /// Emits a kernel-instrumentation event on `node`'s display. Called
    /// only from contexts where the kernel owns the CPU (dispatch,
    /// mailbox service, the tail of a running process), so the pattern
    /// sequence never interleaves with an application event.
    fn kernel_emit(&mut self, node: NodeId, token: u16, param: u32) {
        self.stats.kernel_events += 1;
        let spacing = (self.cfg.kernel_event_cost / EmissionRecord::write_count() as u64)
            .max(SimDuration::from_nanos(100));
        self.display_emit(node, spacing, token, param);
    }

    /// Writes one event's pattern sequence to `node`'s display —
    /// inline into the signal log, or as a compact [`EmissionRecord`]
    /// when display materialization is deferred. Both paths run the
    /// same serialization arithmetic, so the eventual writes are
    /// bit-identical.
    fn display_emit(&mut self, node: NodeId, spacing: SimDuration, token: u16, param: u32) {
        // Serialize per node: two events fired at the same instant
        // (e.g. a block immediately followed by the next dispatch) must
        // not interleave their pattern pairs on the display.
        let start = self
            .sim
            .now()
            .max(self.kernel_display_free[node.index() as usize]);
        if self.cfg.deferred_display {
            self.deferred.push(EmissionRecord {
                start,
                spacing,
                node,
                token,
                param,
            });
        } else {
            for (i, pattern) in encode(MonEvent::new(token, param)).into_iter().enumerate() {
                self.signals.push_display(DisplayWrite {
                    time: start + spacing * (i as u64 + 1),
                    node,
                    pattern,
                });
            }
        }
        self.kernel_display_free[node.index() as usize] =
            start + spacing * (EmissionRecord::write_count() as u64 + 1);
    }

    /// Performs the configured monitoring technique's output for one
    /// instrumentation call. Returns the CPU cost, or `None` when the
    /// call is free (monitoring off).
    fn emit(
        &mut self,
        _pid: ProcessId,
        node: NodeId,
        token: u16,
        param: u32,
    ) -> Option<SimDuration> {
        self.stats.events_emitted += 1;
        let now = self.sim.now();
        let event = MonEvent::new(token, param);
        match self.cfg.monitoring {
            MonitoringMode::Off => None,
            MonitoringMode::Hybrid => {
                let cost = self.cfg.monitor_costs.hybrid_call;
                // The per-node display serializer keeps application
                // pattern pairs from interleaving with kernel-event pairs
                // emitted during the preceding context switch.
                let spacing = self.cfg.monitor_costs.hybrid_write_spacing();
                self.display_emit(node, spacing, token, param);
                self.intrusion.record_event(cost);
                Some(cost)
            }
            MonitoringMode::Terminal => {
                let cost = self.cfg.monitor_costs.terminal_transfer
                    + self.cfg.monitor_costs.terminal_ctx_switch;
                let raw = event.raw48();
                let bytes: [u8; 6] = [
                    (raw >> 40) as u8,
                    (raw >> 32) as u8,
                    (raw >> 24) as u8,
                    (raw >> 16) as u8,
                    (raw >> 8) as u8,
                    raw as u8,
                ];
                let spacing = self.cfg.monitor_costs.terminal_transfer / 6;
                let start = now + self.cfg.monitor_costs.terminal_ctx_switch;
                for (i, b) in bytes.into_iter().enumerate() {
                    self.signals.push_terminal(TerminalWrite {
                        time: start + spacing * (i as u64 + 1),
                        node,
                        byte: b,
                    });
                }
                self.intrusion.record_event(cost);
                Some(cost)
            }
            MonitoringMode::Software => {
                let cost = self.cfg.monitor_costs.software_call;
                self.software[node.index() as usize].record(now, event);
                self.intrusion.record_event(cost);
                if cost.is_zero() {
                    None
                } else {
                    Some(cost)
                }
            }
        }
    }
}
