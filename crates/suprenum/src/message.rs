//! Inter-process messages.
//!
//! A [`Message`] carries an application-defined payload (any `'static`
//! type, downcast by the receiver) plus the byte size the interconnect
//! model should charge for it. The kernel never looks inside the payload.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use crate::ids::ProcessId;

/// A message in flight between two processes.
///
/// The payload is reference-counted so the simulator can hold it in
/// transit queues without cloning application data. It is atomically
/// counted (and `Send + Sync`) so messages can cross engine-shard
/// boundaries when clusters execute on separate worker threads.
///
/// # Examples
///
/// ```
/// use suprenum::{Message, ProcessId};
///
/// let msg = Message::new(ProcessId::new(1), 256, vec![1u8, 2, 3]);
/// assert_eq!(msg.bytes(), 256);
/// assert_eq!(msg.payload::<Vec<u8>>().unwrap(), &vec![1u8, 2, 3]);
/// assert!(msg.payload::<String>().is_none());
/// ```
#[derive(Clone)]
pub struct Message {
    src: ProcessId,
    bytes: u32,
    payload: Arc<dyn Any + Send + Sync>,
}

impl Message {
    /// Creates a message from `src` of `bytes` wire size carrying
    /// `payload`.
    pub fn new<T: Any + Send + Sync>(src: ProcessId, bytes: u32, payload: T) -> Self {
        Message {
            src,
            bytes,
            payload: Arc::new(payload),
        }
    }

    /// The sending process.
    pub fn src(&self) -> ProcessId {
        self.src
    }

    /// The size charged to the interconnect, in bytes.
    pub fn bytes(&self) -> u32 {
        self.bytes
    }

    /// Downcasts the payload to `T`, or `None` on type mismatch.
    pub fn payload<T: Any>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }
}

impl fmt::Debug for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Message")
            .field("src", &self.src)
            .field("bytes", &self.bytes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_downcast() {
        #[derive(Debug, PartialEq)]
        struct Job {
            rays: Vec<u32>,
        }
        let msg = Message::new(ProcessId::new(7), 100, Job { rays: vec![1, 2] });
        assert_eq!(msg.src(), ProcessId::new(7));
        assert_eq!(msg.payload::<Job>().unwrap().rays, vec![1, 2]);
        assert!(msg.payload::<u64>().is_none());
    }

    #[test]
    fn clone_shares_payload() {
        let msg = Message::new(ProcessId::new(1), 8, 42u64);
        let copy = msg.clone();
        assert_eq!(copy.payload::<u64>(), Some(&42));
        assert_eq!(copy.bytes(), 8);
    }

    #[test]
    fn debug_is_nonempty() {
        let msg = Message::new(ProcessId::new(1), 8, ());
        let s = format!("{msg:?}");
        assert!(s.contains("Message"));
        assert!(s.contains("bytes"));
    }
}
