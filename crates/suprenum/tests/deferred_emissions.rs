//! Differential tests of deferred display materialization: the
//! `deferred_display` mode must be behaviourally invisible — identical
//! signal logs, outcomes, and kernel counters — whether the emissions
//! expand lazily at run end or are drained mid-run by an observer.

use des::time::{SimDuration, SimTime};
use suprenum::{
    Action, EmissionRecord, Machine, MachineConfig, Message, NodeId, ProcCtx, Process, ProcessId,
    Resume, RunEnd, RunOutcome,
};

struct Root {
    nodes: u16,
    workers: Vec<ProcessId>,
    received: u16,
}

impl Process for Root {
    fn resume(&mut self, _ctx: &ProcCtx, why: Resume) -> Action {
        if let Resume::Spawned(pid) = why {
            self.workers.push(pid);
        }
        let spawned = self.workers.len() as u16;
        if spawned < self.nodes - 1 {
            return Action::Spawn {
                node: NodeId::new(spawned + 1),
                body: Box::new(Worker { rounds: 0 }),
            };
        }
        if matches!(why, Resume::MailboxMsg(_)) {
            self.received += 1;
        }
        if self.received < self.nodes - 1 {
            Action::MailboxRecv
        } else {
            Action::Exit
        }
    }
}

struct Worker {
    rounds: u32,
}

impl Process for Worker {
    fn resume(&mut self, ctx: &ProcCtx, why: Resume) -> Action {
        match why {
            Resume::Start | Resume::EmitDone if self.rounds < 6 => {
                self.rounds += 1;
                Action::Emit {
                    token: 0x10 + ctx.node.index(),
                    param: self.rounds,
                }
            }
            Resume::EmitDone => Action::Compute(SimDuration::from_micros(150)),
            Resume::ComputeDone => Action::MailboxSend {
                to: ProcessId::new(0),
                msg: Message::new(ctx.pid, 64, "done"),
            },
            _ => Action::Exit,
        }
    }
}

fn config(deferred: bool) -> MachineConfig {
    MachineConfig {
        kernel_instrumentation: true,
        deferred_display: deferred,
        ..MachineConfig::single_cluster(4)
    }
}

fn build(deferred: bool) -> Machine {
    let mut m = Machine::new(config(deferred), 11).unwrap();
    m.add_process(
        NodeId::new(0),
        Box::new(Root {
            nodes: 4,
            workers: Vec::new(),
            received: 0,
        }),
    );
    m
}

fn reference_run() -> (Machine, RunOutcome) {
    let mut m = build(false);
    let out = m.run(SimTime::from_secs(10));
    assert_eq!(out.reason, RunEnd::Completed);
    (m, out)
}

#[test]
fn deferred_signals_match_inline_bit_for_bit() {
    let (inline, inline_out) = reference_run();
    assert!(
        !inline.signals().display_writes().is_empty(),
        "workload must emit"
    );

    let mut deferred = build(true);
    let deferred_out = deferred.run(SimTime::from_secs(10));

    assert_eq!(inline_out, deferred_out);
    assert_eq!(
        inline.signals().display_writes(),
        deferred.signals().display_writes()
    );
    assert_eq!(
        inline.signals().terminal_writes(),
        deferred.signals().terminal_writes()
    );
    assert_eq!(inline.stats(), deferred.stats());
    assert_eq!(inline.intrusion(), deferred.intrusion());
}

#[test]
fn run_observed_drains_watermarked_windows() {
    let (inline, inline_out) = reference_run();

    let mut m = build(true);
    let mut windows: Vec<(SimTime, Vec<EmissionRecord>)> = Vec::new();
    let out = m.run_observed(SimTime::from_secs(10), 10, |now, emissions| {
        windows.push((now, std::mem::take(emissions)));
    });

    assert_eq!(out, inline_out);
    assert!(windows.len() > 2, "window budget must split the run");

    // The watermark guarantee: everything drained at a later callback
    // lies strictly after every earlier callback time.
    for (i, (watermark, _)) in windows.iter().enumerate() {
        for (_, later) in &windows[i + 1..] {
            for rec in later {
                assert!(
                    rec.first_write_at() > *watermark,
                    "emission at {:?} violates watermark {watermark:?}",
                    rec.first_write_at()
                );
            }
        }
    }

    // The drained records expand to exactly the inline display log.
    let mut expanded: Vec<_> = windows
        .iter()
        .flat_map(|(_, recs)| recs.iter().flat_map(EmissionRecord::writes))
        .collect();
    expanded.sort_by_key(|w| w.time);
    assert_eq!(expanded, inline.signals().display_writes());
    // Nothing was left to materialize at run end.
    assert!(m.signals().display_writes().is_empty());
}

#[test]
fn run_observed_undrained_buffer_still_materializes() {
    let (inline, inline_out) = reference_run();

    // A callback that ignores the buffer: the signal log must still be
    // complete (and identical) when the run ends.
    let mut m = build(true);
    let mut calls = 0u32;
    let out = m.run_observed(SimTime::from_secs(10), 25, |_, _| calls += 1);
    assert_eq!(out, inline_out);
    assert!(calls > 1);
    assert_eq!(
        inline.signals().display_writes(),
        m.signals().display_writes()
    );
}
