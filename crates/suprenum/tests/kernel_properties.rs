//! Property-based tests of the machine kernel: randomized ring
//! workloads exercising scheduling, messaging and accounting invariants.

use des::time::{SimDuration, SimTime};
use proptest::prelude::*;
use suprenum::{
    Action, Machine, MachineConfig, Message, NodeId, ProcCtx, Process, ProcessId, Resume, RunEnd,
};

/// One member of a communication ring: `rounds` times, compute for its
/// own duration, send a token to the next ring member, then receive one
/// from the previous member. Member 0 spawns the whole ring first.
struct RingMember {
    index: u16,
    ring: u16,
    rounds: u32,
    compute_us: u64,
    mailbox: bool,
    peers: std::sync::Arc<std::sync::Mutex<Vec<ProcessId>>>,
    round: u32,
    phase: u8,
    spawned: u16,
}

impl RingMember {
    #[allow(clippy::too_many_arguments)]
    fn new(
        index: u16,
        ring: u16,
        rounds: u32,
        compute_us: u64,
        mailbox: bool,
        peers: std::sync::Arc<std::sync::Mutex<Vec<ProcessId>>>,
    ) -> Box<RingMember> {
        Box::new(RingMember {
            index,
            ring,
            rounds,
            compute_us,
            mailbox,
            peers,
            round: 0,
            phase: 0,
            spawned: 1,
        })
    }
}

impl Process for RingMember {
    fn resume(&mut self, ctx: &ProcCtx, why: Resume) -> Action {
        if self.index == 0 && self.spawned < self.ring {
            // Member 0 spawns members 1..ring, one per resume.
            if let Resume::Spawned(pid) = &why {
                self.peers.lock().unwrap().push(*pid);
            }
            if self.spawned < self.ring {
                let next = self.spawned;
                self.spawned += 1;
                let body = RingMember::new(
                    next,
                    self.ring,
                    self.rounds,
                    self.compute_us + next as u64 * 37,
                    self.mailbox,
                    self.peers.clone(),
                );
                return Action::Spawn {
                    node: NodeId::new(next % 4),
                    body,
                };
            }
        }
        if let Resume::Spawned(pid) = &why {
            self.peers.lock().unwrap().push(*pid);
        }
        if self.index == 0
            && self.phase == 0
            && self.peers.lock().unwrap().len() < self.ring as usize
        {
            // Registration happens via spawn loop above; peers[0] is us.
            self.peers.lock().unwrap().insert(0, ctx.pid);
        }
        loop {
            match self.phase {
                0 => {
                    self.phase = 1;
                    return Action::Compute(SimDuration::from_micros(self.compute_us + 1));
                }
                1 => {
                    self.phase = 2;
                    let peers = self.peers.lock().unwrap();
                    let next = peers[(self.index as usize + 1) % peers.len()];
                    let msg = Message::new(ctx.pid, 64, self.round);
                    return if self.mailbox {
                        Action::MailboxSend { to: next, msg }
                    } else {
                        Action::SendSync { to: next, msg }
                    };
                }
                2 => {
                    self.phase = 3;
                    return if self.mailbox {
                        Action::MailboxRecv
                    } else {
                        Action::Recv
                    };
                }
                _ => {
                    self.round += 1;
                    self.phase = 0;
                    if self.round >= self.rounds {
                        return Action::Exit;
                    }
                }
            }
        }
    }

    fn label(&self) -> String {
        format!("ring-{}", self.index)
    }
}

fn run_ring(ring: u16, rounds: u32, compute_us: u64, mailbox: bool, seed: u64) -> Machine {
    let peers = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut machine = Machine::new(MachineConfig::single_cluster(4), seed).unwrap();
    let root = RingMember::new(0, ring, rounds, compute_us, mailbox, peers.clone());
    let pid0 = machine.add_process(NodeId::new(0), root);
    peers.lock().unwrap().push(pid0);
    machine.run(SimTime::from_secs(3_600));
    machine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A mailbox token ring always completes, delivers exactly
    /// ring × rounds messages, and replays bit-identically.
    #[test]
    fn mailbox_ring_completes_and_conserves_messages(
        ring in 2u16..6,
        rounds in 1u32..5,
        compute_us in 10u64..5_000,
    ) {
        let m = run_ring(ring, rounds, compute_us, true, 5);
        // Member 0 exits after its last round, halting the machine; ring
        // messages not involving member 0 may still be in flight then.
        // Member 0's own traffic is the guaranteed floor: its `rounds`
        // sends were accepted (it would still be blocked otherwise) and
        // its `rounds` receives were accepted by its own mailbox.
        let stats = m.stats();
        prop_assert!(stats.mailbox_messages >= 2 * rounds as u64,
            "only {} messages accepted", stats.mailbox_messages);
        prop_assert!(stats.mailbox_messages <= ring as u64 * rounds as u64);
        prop_assert_eq!(stats.processes_spawned, ring as u64);

        // Determinism.
        let m2 = run_ring(ring, rounds, compute_us, true, 5);
        prop_assert_eq!(m.now(), m2.now());
        prop_assert_eq!(m.stats(), m2.stats());
        prop_assert_eq!(
            m.signals().display_writes().len(),
            m2.signals().display_writes().len()
        );
    }

    /// Ground-truth histories are well formed under random workloads:
    /// chronological, starting Ready, Running only entered from Ready.
    #[test]
    fn ground_truth_is_well_formed(
        ring in 2u16..5,
        rounds in 1u32..4,
    ) {
        use suprenum::ProcState;
        let m = run_ring(ring, rounds, 500, true, 9);
        for (_pid, hist) in m.ground_truth().iter() {
            let ts = &hist.transitions;
            prop_assert!(!ts.is_empty());
            prop_assert_eq!(ts[0].state, ProcState::Ready);
            for w in ts.windows(2) {
                prop_assert!(w[0].time <= w[1].time, "history goes backwards");
                prop_assert!(w[0].state != w[1].state, "duplicate states not coalesced");
                // Running is only entered from Ready (dispatch).
                if w[1].state == ProcState::Running {
                    prop_assert_eq!(w[0].state, ProcState::Ready);
                }
                // Blocked is only entered from Running.
                if matches!(w[1].state, ProcState::Blocked(_)) {
                    prop_assert_eq!(w[0].state, ProcState::Running);
                }
            }
        }
    }
}

/// The emergent theorem the ring exposes: a ring of *synchronous* sends
/// where everyone sends before receiving is a circular wait — the kernel
/// must detect the deadlock. The same ring over mailboxes completes,
/// because the mailbox LWP accepts the message as soon as the (blocked)
/// receiver relinquishes the CPU.
#[test]
fn sync_ring_deadlocks_where_mailbox_ring_completes() {
    let peers = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut machine = Machine::new(MachineConfig::single_cluster(4), 3).unwrap();
    let root = RingMember::new(0, 3, 2, 200, false, peers.clone());
    let pid0 = machine.add_process(NodeId::new(0), root);
    peers.lock().unwrap().push(pid0);
    let outcome = machine.run(SimTime::from_secs(600));
    assert_eq!(outcome.reason, RunEnd::Deadlock, "sync ring must deadlock");

    let m = run_ring(3, 2, 200, true, 3);
    assert!(
        m.ground_truth().iter().any(|(_, h)| h.label == "ring-0"
            && h.transitions.last().unwrap().state == suprenum::ProcState::Exited),
        "mailbox ring must complete"
    );
}
