//! Behavioural tests of the machine kernel against the semantics the
//! paper describes (and discovered).

use des::time::{SimDuration, SimTime};
use hybridmon::{Decoder, MonitoringMode};
use suprenum::{
    Action, BlockReason, CondId, Machine, MachineConfig, Message, NodeId, ProcCtx, ProcState,
    Process, ProcessId, Resume, RunEnd,
};

/// A process driven by a closure over an explicit step counter.
struct ClosureProc<F> {
    step: u32,
    label: String,
    f: F,
}

impl<F> ClosureProc<F>
where
    F: FnMut(&ProcCtx, Resume, u32) -> Action + Send,
{
    fn new(label: &str, f: F) -> Box<Self> {
        Box::new(ClosureProc {
            step: 0,
            label: label.to_owned(),
            f,
        })
    }
}

impl<F> Process for ClosureProc<F>
where
    F: FnMut(&ProcCtx, Resume, u32) -> Action + Send,
{
    fn resume(&mut self, ctx: &ProcCtx, why: Resume) -> Action {
        let step = self.step;
        self.step += 1;
        (self.f)(ctx, why, step)
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

fn machine(nodes: u8) -> Machine {
    Machine::new(MachineConfig::single_cluster(nodes), 7).unwrap()
}

/// The paper's central discovery (Fig. 7): a mailbox send blocks the
/// sender until the *receiver* relinquishes its CPU, because the mailbox
/// LWP cannot be scheduled under non-preemptive round-robin while the
/// receiver computes.
#[test]
fn mailbox_send_is_de_facto_synchronous() {
    let mut m = machine(2);
    let work = SimDuration::from_millis(50);

    // Receiver on node 1: compute for 50 ms, then read its mailbox.
    let receiver_body = ClosureProc::new("receiver", move |_ctx, _why, step| match step {
        0 => Action::Compute(work),
        1 => Action::MailboxRecv,
        _ => Action::Exit,
    });
    let mut receiver_body = Some(receiver_body);

    // Sender on node 0: spawn the receiver, then immediately mailbox-send.
    let mut peer: Option<ProcessId> = None;
    let sender_body = ClosureProc::new("sender", move |ctx, why, step| {
        if let Resume::Spawned(pid) = &why {
            peer = Some(*pid);
        }
        match step {
            0 => Action::Spawn {
                node: NodeId::new(1),
                body: receiver_body.take().unwrap(),
            },
            // Wait until the receiver is definitely inside its 50 ms
            // compute, then send into its mailbox.
            1 => Action::Sleep(SimDuration::from_millis(5)),
            2 => Action::MailboxSend {
                to: peer.unwrap(),
                msg: Message::new(ctx.pid, 64, "job"),
            },
            _ => Action::Exit,
        }
    });

    let sender = m.add_process(NodeId::new(0), sender_body);
    let outcome = m.run(SimTime::from_secs(10));
    assert_eq!(outcome.reason, RunEnd::Completed);

    // When did the sender's MailboxSend block end?
    let hist = m.ground_truth().history(sender).unwrap();
    let blocked_at = hist
        .transitions
        .iter()
        .find(|t| t.state == ProcState::Blocked(BlockReason::MailboxSend))
        .expect("sender must block in mailbox send")
        .time;
    let unblocked_at = hist
        .transitions
        .iter()
        .find(|t| t.time > blocked_at && t.state == ProcState::Ready)
        .expect("sender must eventually unblock")
        .time;

    // The receiver computes for 50 ms before it can relinquish the CPU;
    // only then is its mailbox LWP scheduled and the sender released. The
    // sender must therefore have waited essentially the whole 50 ms.
    let waited = unblocked_at - blocked_at;
    assert!(
        waited >= SimDuration::from_millis(40),
        "sender waited only {waited}, mailbox behaved asynchronously"
    );
}

/// Counter-experiment: when the receiver is already blocked (waiting for
/// a message), the mailbox LWP is scheduled promptly and the sender is
/// released after communication latency only.
#[test]
fn mailbox_send_completes_quickly_when_receiver_waits() {
    let mut m = machine(2);

    let receiver_body = ClosureProc::new("receiver", |_ctx, _why, step| match step {
        0 => Action::MailboxRecv,
        _ => Action::Exit,
    });
    let mut receiver_body = Some(receiver_body);

    let mut peer = None;
    let sender_body = ClosureProc::new("sender", move |ctx, why, step| {
        if let Resume::Spawned(pid) = &why {
            peer = Some(*pid);
        }
        match step {
            0 => Action::Spawn {
                node: NodeId::new(1),
                body: receiver_body.take().unwrap(),
            },
            // Give the receiver time to reach its MailboxRecv.
            1 => Action::Sleep(SimDuration::from_millis(20)),
            2 => Action::MailboxSend {
                to: peer.unwrap(),
                msg: Message::new(ctx.pid, 64, "job"),
            },
            _ => Action::Exit,
        }
    });

    let sender = m.add_process(NodeId::new(0), sender_body);
    assert_eq!(m.run(SimTime::from_secs(10)).reason, RunEnd::Completed);

    let hist = m.ground_truth().history(sender).unwrap();
    let blocked_at = hist
        .transitions
        .iter()
        .find(|t| t.state == ProcState::Blocked(BlockReason::MailboxSend))
        .unwrap()
        .time;
    let unblocked_at = hist
        .transitions
        .iter()
        .find(|t| t.time > blocked_at && t.state == ProcState::Ready)
        .unwrap()
        .time;
    // Transfer + ctx switch + accept + ack: well under 5 ms.
    assert!(
        unblocked_at - blocked_at < SimDuration::from_millis(5),
        "sender waited {} despite idle receiver",
        unblocked_at - blocked_at
    );
}

/// Synchronous rendezvous: sender and receiver meet; both proceed.
#[test]
fn sync_send_rendezvous() {
    let mut m = machine(2);

    let receiver_body = ClosureProc::new("receiver", |_ctx, why, step| match step {
        0 => Action::Recv,
        1 => {
            // Check the payload made it through.
            let Resume::Msg(msg) = why else {
                panic!("expected message, got {why:?}")
            };
            assert_eq!(msg.payload::<&str>(), Some(&"hello"));
            Action::Exit
        }
        _ => Action::Exit,
    });
    let mut receiver_body = Some(receiver_body);

    let mut peer = None;
    let sender_body = ClosureProc::new("sender", move |ctx, why, step| {
        if let Resume::Spawned(pid) = &why {
            peer = Some(*pid);
        }
        match step {
            0 => Action::Spawn {
                node: NodeId::new(1),
                body: receiver_body.take().unwrap(),
            },
            1 => Action::SendSync {
                to: peer.unwrap(),
                msg: Message::new(ctx.pid, 32, "hello"),
            },
            _ => Action::Exit,
        }
    });

    m.add_process(NodeId::new(0), sender_body);
    assert_eq!(m.run(SimTime::from_secs(1)).reason, RunEnd::Completed);
    assert_eq!(m.stats().sync_messages, 1);
}

/// Non-preemptive scheduling: a computing process is never interrupted,
/// and a yielding pair alternates.
#[test]
fn non_preemption_and_yield() {
    let mut m = machine(1);

    // B yields repeatedly; it can only run in the gaps A leaves.
    let b_body = ClosureProc::new("b", |_ctx, _why, step| {
        if step < 3 {
            Action::Yield
        } else {
            Action::Exit
        }
    });
    let mut b_body = Some(b_body);

    let a_body = ClosureProc::new("a", move |_ctx, _why, step| match step {
        0 => Action::Spawn {
            node: NodeId::new(0),
            body: b_body.take().unwrap(),
        },
        1 => Action::Compute(SimDuration::from_millis(30)),
        2 => Action::Yield,
        3 => Action::Compute(SimDuration::from_millis(10)),
        _ => Action::Exit,
    });

    let a = m.add_process(NodeId::new(0), a_body);
    assert_eq!(m.run(SimTime::from_secs(1)).reason, RunEnd::Completed);

    // During A's first 30 ms compute, B must never be Running.
    let gt = m.ground_truth();
    let a_hist = gt.history(a).unwrap();
    let a_first_run = a_hist
        .transitions
        .iter()
        .find(|t| t.state == ProcState::Running)
        .unwrap()
        .time;
    let b_pid = gt.iter().find(|(_, h)| h.label == "b").unwrap().0;
    let b_hist = gt.history(b_pid).unwrap();
    let b_first_run = b_hist
        .transitions
        .iter()
        .find(|t| t.state == ProcState::Running)
        .map(|t| t.time)
        .expect("b ran");
    assert!(
        b_first_run >= a_first_run + SimDuration::from_millis(30),
        "B ran at {b_first_run} during A's uninterruptible compute"
    );
}

/// Identical (seed, config, program) ⇒ identical histories and signals.
#[test]
fn runs_are_deterministic() {
    fn build_and_run() -> (Vec<(u64, u8)>, u64) {
        let mut m = machine(2);
        let child = ClosureProc::new("child", |_ctx, _why, step| match step {
            0 => Action::Emit { token: 2, param: 0 },
            1 => Action::Compute(SimDuration::from_millis(1)),
            _ => Action::Exit,
        });
        let mut child = Some(child);
        let root = ClosureProc::new("root", move |_ctx, _why, step| match step {
            0 => Action::Spawn {
                node: NodeId::new(1),
                body: child.take().unwrap(),
            },
            1 => Action::Emit {
                token: 1,
                param: 42,
            },
            2 => Action::Compute(SimDuration::from_millis(2)),
            _ => Action::Exit,
        });
        m.add_process(NodeId::new(0), root);
        let out = m.run(SimTime::from_secs(1));
        let sigs: Vec<(u64, u8)> = m
            .signals()
            .display_writes()
            .iter()
            .map(|w| (w.time.as_nanos(), w.pattern.index()))
            .collect();
        (sigs, out.end.as_nanos())
    }
    let (a_sigs, a_end) = build_and_run();
    let (b_sigs, b_end) = build_and_run();
    assert_eq!(a_sigs, b_sigs);
    assert_eq!(a_end, b_end);
    assert!(!a_sigs.is_empty());
}

/// Two processes that both wait for messages deadlock; the kernel reports
/// it rather than hanging.
#[test]
fn deadlock_is_reported() {
    let mut m = machine(2);
    let b_body = ClosureProc::new("b", |_ctx, _why, _step| Action::Recv);
    let mut b_body = Some(b_body);
    let a_body = ClosureProc::new("a", move |_ctx, _why, step| match step {
        0 => Action::Spawn {
            node: NodeId::new(1),
            body: b_body.take().unwrap(),
        },
        _ => Action::Recv,
    });
    m.add_process(NodeId::new(0), a_body);
    let out = m.run(SimTime::from_secs(1));
    assert_eq!(out.reason, RunEnd::Deadlock);
}

/// A livelocked toy program — two processes computing and ping-ponging
/// forever — trips the event budget instead of spinning until the
/// horizon, and the outcome says so.
#[test]
fn event_budget_catches_livelock() {
    let mut m = machine(1);
    let spinner = ClosureProc::new("spinner", |_ctx, _why, _step| {
        // Never exits, never blocks for long: classic livelock shape.
        Action::Compute(SimDuration::from_nanos(10))
    });
    m.add_process(NodeId::new(0), spinner);
    let out = m.run_budgeted(SimTime::from_secs(3_600), 5_000);
    assert_eq!(out.reason, RunEnd::EventBudget);
    assert!(out.reason.is_truncation());
    assert!(out.truncated());
    // The budget is charged against processed kernel events.
    assert!(
        out.events >= 5_000,
        "only {} events processed before the budget",
        out.events
    );
    assert!(out.end < SimTime::from_secs(3_600));
}

/// A run against a horizon shorter than the program reports `Horizon`,
/// counts its events, and is flagged as truncated.
#[test]
fn horizon_truncation_is_reported() {
    let mut m = machine(1);
    let worker = ClosureProc::new("worker", |_ctx, _why, step| {
        if step < 100 {
            Action::Compute(SimDuration::from_millis(10))
        } else {
            Action::Exit
        }
    });
    m.add_process(NodeId::new(0), worker);
    // 100 * 10ms = 1s of work against a 50ms horizon.
    let out = m.run(SimTime::from_millis(50));
    assert_eq!(out.reason, RunEnd::Horizon);
    assert!(out.truncated());
    assert!(out.events > 0);

    // The same program given room completes, and completion is not a
    // truncation.
    let mut m = machine(1);
    let worker = ClosureProc::new("worker", |_ctx, _why, step| {
        if step < 100 {
            Action::Compute(SimDuration::from_millis(10))
        } else {
            Action::Exit
        }
    });
    m.add_process(NodeId::new(0), worker);
    let out = m.run(SimTime::from_secs(10));
    assert_eq!(out.reason, RunEnd::Completed);
    assert!(!out.truncated());
}

/// Hybrid monitoring: each Emit produces exactly the 32-pattern sequence
/// on the emitting node's display, and the external decoder recovers the
/// event.
#[test]
fn hybrid_emit_appears_on_display() {
    let mut m = machine(1);
    let body = ClosureProc::new("p", |_ctx, _why, step| match step {
        0 => Action::Emit {
            token: 0xBEEF,
            param: 0x1234_5678,
        },
        1 => Action::Compute(SimDuration::from_millis(1)),
        2 => Action::Emit {
            token: 0x0001,
            param: 9,
        },
        _ => Action::Exit,
    });
    m.add_process(NodeId::new(0), body);
    assert_eq!(m.run(SimTime::from_secs(1)).reason, RunEnd::Completed);

    let writes = m.signals().display_writes_for(NodeId::new(0));
    assert_eq!(writes.len(), 64, "two events x 32 patterns");
    // Times strictly increase within the log.
    assert!(writes.windows(2).all(|w| w[0].time < w[1].time));

    let mut decoder = Decoder::new();
    let events: Vec<_> = writes
        .iter()
        .filter_map(|w| decoder.feed(w.pattern))
        .collect();
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].token.value(), 0xBEEF);
    assert_eq!(events[0].param.value(), 0x1234_5678);
    assert_eq!(events[1].token.value(), 0x0001);
    assert_eq!(decoder.stats().atomicity_violations, 0);
}

/// Terminal monitoring costs over 2.4 ms per event and emits 6 bytes.
#[test]
fn terminal_monitoring_is_slow() {
    let mut cfg = MachineConfig::single_cluster(1);
    cfg.monitoring = MonitoringMode::Terminal;
    let mut m = Machine::new(cfg, 1).unwrap();
    let body = ClosureProc::new("p", |_ctx, _why, step| match step {
        0 => Action::Emit {
            token: 0xAA55,
            param: 0xDEAD_BEEF,
        },
        _ => Action::Exit,
    });
    m.add_process(NodeId::new(0), body);
    assert_eq!(m.run(SimTime::from_secs(1)).reason, RunEnd::Completed);
    let bytes: Vec<u8> = m
        .signals()
        .terminal_writes()
        .iter()
        .map(|w| w.byte)
        .collect();
    assert_eq!(bytes, vec![0xAA, 0x55, 0xDE, 0xAD, 0xBE, 0xEF]);
    assert!(m.intrusion().mean_per_event() > SimDuration::from_micros(2_400));
}

/// Software monitoring lands events in the node-local buffer with local
/// timestamps.
#[test]
fn software_monitoring_records_locally() {
    let mut cfg = MachineConfig::single_cluster(2);
    cfg.monitoring = MonitoringMode::Software;
    let mut m = Machine::new(cfg, 3).unwrap();
    let body = ClosureProc::new("p", |_ctx, _why, step| match step {
        0 => Action::Emit { token: 7, param: 1 },
        1 => Action::Emit { token: 8, param: 2 },
        _ => Action::Exit,
    });
    m.add_process(NodeId::new(0), body);
    assert_eq!(m.run(SimTime::from_secs(1)).reason, RunEnd::Completed);
    let log = m.software_monitors()[0].records();
    assert_eq!(log.len(), 2);
    assert_eq!(log[0].event.token.value(), 7);
    assert_eq!(log[1].event.token.value(), 8);
    // No display traffic in software mode.
    assert!(m.signals().display_writes().is_empty());
}

/// The intrusion of hybrid monitoring is at least two orders of
/// magnitude below the measured activity (paper §3.2) for millisecond-
/// scale activities.
#[test]
fn hybrid_intrusion_is_two_orders_below_activity() {
    let mut m = machine(1);
    let body = ClosureProc::new("p", |_ctx, _why, step| {
        // 20 activities of 15 ms, each bracketed by one event.
        if step < 40 {
            if step % 2 == 0 {
                Action::Emit {
                    token: step as u16,
                    param: 0,
                }
            } else {
                Action::Compute(SimDuration::from_millis(15))
            }
        } else {
            Action::Exit
        }
    });
    m.add_process(NodeId::new(0), body);
    assert_eq!(m.run(SimTime::from_secs(10)).reason, RunEnd::Completed);
    let report = m.intrusion();
    assert_eq!(report.events, 20);
    assert!(
        report.intrusion_ratio() < 0.01,
        "intrusion ratio {} not two orders below activity",
        report.intrusion_ratio()
    );
}

/// Condition variables: the agent idiom — block until signalled, then
/// proceed.
#[test]
fn condition_signalling_wakes_waiters() {
    let mut m = machine(1);
    let cond = CondId::new(99);

    let waiter_body = ClosureProc::new("waiter", move |_ctx, why, step| match step {
        0 => Action::WaitCond(cond),
        1 => {
            assert!(matches!(why, Resume::Signalled));
            Action::Exit
        }
        _ => Action::Exit,
    });
    let mut waiter_body = Some(waiter_body);

    let signaller = ClosureProc::new("signaller", move |_ctx, _why, step| match step {
        0 => Action::Spawn {
            node: NodeId::new(0),
            body: waiter_body.take().unwrap(),
        },
        // Relinquish so the waiter runs first and blocks on the
        // condition — signals have no memory (exactly like the shared
        // variable + relinquish idiom the paper's agents use).
        1 => Action::Sleep(SimDuration::from_millis(5)),
        2 => Action::Compute(SimDuration::from_millis(5)),
        3 => Action::SignalCond(cond),
        4 => Action::Yield,
        // Let the waiter run and exit before we (the initial process)
        // terminate the application.
        5 => Action::Sleep(SimDuration::from_millis(20)),
        _ => Action::Exit,
    });

    m.add_process(NodeId::new(0), signaller);
    let out = m.run(SimTime::from_secs(1));
    assert_eq!(out.reason, RunEnd::Completed);
    let gt = m.ground_truth();
    let waiter = gt.iter().find(|(_, h)| h.label == "waiter").unwrap().1;
    assert_eq!(waiter.transitions.last().unwrap().state, ProcState::Exited);
}

/// Monitoring off: no signals, no intrusion, zero-cost Emit actions.
#[test]
fn monitoring_off_is_free() {
    let mut cfg = MachineConfig::single_cluster(1);
    cfg.monitoring = MonitoringMode::Off;
    let mut m = Machine::new(cfg, 1).unwrap();
    let body = ClosureProc::new("p", |_ctx, _why, step| match step {
        0 => Action::Emit { token: 1, param: 1 },
        1 => Action::Compute(SimDuration::from_millis(1)),
        _ => Action::Exit,
    });
    m.add_process(NodeId::new(0), body);
    assert_eq!(m.run(SimTime::from_secs(1)).reason, RunEnd::Completed);
    assert!(m.signals().display_writes().is_empty());
    assert_eq!(m.intrusion().total_intrusion, SimDuration::ZERO);
    assert_eq!(m.stats().events_emitted, 1);
}

/// Disk writes block the writer but leave the CPU free for other LWPs.
#[test]
fn disk_write_releases_cpu() {
    let mut m = machine(1);

    let bg = ClosureProc::new("bg", |_ctx, _why, step| match step {
        0 => Action::Compute(SimDuration::from_millis(2)),
        _ => Action::Exit,
    });
    let mut bg = Some(bg);

    let writer = ClosureProc::new("writer", move |_ctx, _why, step| match step {
        0 => Action::Spawn {
            node: NodeId::new(0),
            body: bg.take().unwrap(),
        },
        1 => Action::DiskWrite { bytes: 100_000 },
        2 => Action::Sleep(SimDuration::from_millis(50)),
        _ => Action::Exit,
    });

    let w = m.add_process(NodeId::new(0), writer);
    assert_eq!(m.run(SimTime::from_secs(1)).reason, RunEnd::Completed);
    let gt = m.ground_truth();
    // Background process ran to completion while the writer was blocked
    // on disk.
    let bg_pid = gt.iter().find(|(_, h)| h.label == "bg").unwrap().0;
    let bg_done = gt.history(bg_pid).unwrap().transitions.last().unwrap().time;
    let writer_hist = gt.history(w).unwrap();
    let disk_block = writer_hist
        .transitions
        .iter()
        .find(|t| t.state == ProcState::Blocked(BlockReason::Disk))
        .unwrap()
        .time;
    let disk_done = writer_hist
        .transitions
        .iter()
        .find(|t| t.time > disk_block && t.state == ProcState::Ready)
        .unwrap()
        .time;
    assert!(
        bg_done < disk_done,
        "bg should finish during the disk write"
    );
    // 100 kB at 1 MB/s is 100 ms plus latency.
    assert!(disk_done - disk_block >= SimDuration::from_millis(100));
}

/// Kernel instrumentation (the paper's future work): the OS itself emits
/// scheduler events through the display, cleanly decodable alongside the
/// application's events.
#[test]
fn kernel_instrumentation_emits_scheduler_events() {
    let mut cfg = MachineConfig::single_cluster(2);
    cfg.kernel_instrumentation = true;
    let mut m = Machine::new(cfg, 11).unwrap();

    let worker = ClosureProc::new("worker", |_ctx, _why, step| match step {
        0 => Action::Compute(SimDuration::from_millis(5)),
        1 => Action::Emit {
            token: 0x42,
            param: 7,
        },
        2 => Action::Yield,
        3 => Action::Compute(SimDuration::from_millis(2)),
        _ => Action::Exit,
    });
    let mut worker = Some(worker);
    let root = ClosureProc::new("root", move |_ctx, _why, step| match step {
        0 => Action::Spawn {
            node: NodeId::new(1),
            body: worker.take().unwrap(),
        },
        1 => Action::Sleep(SimDuration::from_millis(50)),
        _ => Action::Exit,
    });
    m.add_process(NodeId::new(0), root);
    assert_eq!(m.run(SimTime::from_secs(5)).reason, RunEnd::Completed);
    assert!(
        m.stats().kernel_events > 0,
        "kernel must emit scheduler events"
    );

    // Decode each node's display stream: no protocol violations, and
    // both kernel and application events appear.
    use suprenum::os_tokens;
    let mut kernel_seen = 0u32;
    let mut app_seen = 0u32;
    for node in [NodeId::new(0), NodeId::new(1)] {
        let mut decoder = Decoder::new();
        for w in m.signals().display_writes_for(node) {
            if let Some(ev) = decoder.feed(w.pattern) {
                match ev.token.value() {
                    os_tokens::KERNEL_DISPATCH
                    | os_tokens::KERNEL_BLOCK
                    | os_tokens::KERNEL_MAILBOX_SERVICE
                    | os_tokens::KERNEL_EXIT
                    | os_tokens::KERNEL_PREEMPT => kernel_seen += 1,
                    0x42 => {
                        assert_eq!(ev.param.value(), 7);
                        app_seen += 1;
                    }
                    other => panic!("unexpected token 0x{other:04X}"),
                }
            }
        }
        assert_eq!(
            decoder.stats().atomicity_violations,
            0,
            "kernel and app pattern pairs interleaved on {node}"
        );
    }
    assert!(kernel_seen >= 6, "saw only {kernel_seen} kernel events");
    assert_eq!(app_seen, 1);

    // Dispatch/block parameters carry the affected pid.
    let (pid, code) = os_tokens::split_param(os_tokens::param(3, 2));
    assert_eq!((pid, code), (3, 2));
}

/// Regression: `try_dispatch` must not re-enter while a context switch
/// is in flight. Between picking an LWP and `Started`, the node sits in
/// `running: None, dispatching: true` for a full context-switch delay
/// (250 µs); under a preemptive policy, quantum expiries and sleep
/// wake-ups land inside that window and — without the `dispatching`
/// guard — would either double-dispatch the CPU or preempt a process
/// that is not actually running. Hammer the window and assert the CPU
/// stays single-owner throughout, deterministically.
#[test]
fn preemptive_dispatch_is_not_reentrant() {
    use suprenum::SchedulerKind;

    fn run_once() -> (Vec<(u64, u64, String)>, u64, u64) {
        let mut cfg = MachineConfig::single_cluster(1);
        // Quantum of the same order as the 250 µs context-switch cost,
        // so expiries routinely fire while a dispatch is in flight.
        cfg.scheduler = SchedulerKind::Preemptive {
            quantum: SimDuration::from_micros(300),
        };
        let mut m = Machine::new(cfg, 23).unwrap();

        // Three separately-rooted workers (distinct teams: every switch
        // pays the full inter-team delay, widening the window) cycling
        // compute / sleep / yield at mutually prime periods.
        for i in 0..3u64 {
            let body = ClosureProc::new(&format!("w{i}"), move |_ctx, _why, step| {
                if step >= 30 {
                    return Action::Exit;
                }
                match step % 3 {
                    0 => Action::Compute(SimDuration::from_micros(900 + 101 * i)),
                    1 => Action::Sleep(SimDuration::from_micros(110 + 83 * i)),
                    _ => Action::Yield,
                }
            });
            m.add_process(NodeId::new(0), body);
        }
        let out = m.run(SimTime::from_secs(10));
        assert_eq!(out.reason, RunEnd::Completed);

        // Reconstruct every Running interval from the ground truth.
        let gt = m.ground_truth();
        let mut intervals: Vec<(u64, u64, String)> = Vec::new();
        for (_, hist) in gt.iter() {
            for w in hist.transitions.windows(2) {
                if w[0].state == ProcState::Running {
                    intervals.push((
                        w[0].time.as_nanos(),
                        w[1].time.as_nanos(),
                        hist.label.clone(),
                    ));
                }
            }
            assert_ne!(
                hist.transitions.last().map(|t| t.state),
                Some(ProcState::Running),
                "a worker ended the run still marked Running"
            );
        }
        intervals.sort();
        (intervals, out.end.as_nanos(), m.stats().preemptions)
    }

    let (intervals, end, preemptions) = run_once();
    // The scenario must actually exercise preemption mid-traffic…
    assert!(preemptions > 0, "no preemptions — the window was never hit");
    // …and the single CPU must never be double-owned: with a reentrant
    // dispatch two `Started` events would overlap two Running intervals.
    for pair in intervals.windows(2) {
        assert!(
            pair[0].1 <= pair[1].0,
            "CPU double-owned: '{}' ran [{}, {}) overlapping '{}' from {}",
            pair[0].2,
            pair[0].0,
            pair[0].1,
            pair[1].2,
            pair[1].0
        );
    }
    // And the whole schedule must be reproducible bit-for-bit.
    let (again, end2, preemptions2) = run_once();
    assert_eq!(intervals, again);
    assert_eq!(end, end2);
    assert_eq!(preemptions, preemptions2);
}

/// The operator's job time limit (paper §2.2): resources are released
/// even if the job is unfinished — "to prevent monopolization".
#[test]
fn job_time_limit_releases_the_partition() {
    let mut cfg = MachineConfig::single_cluster(1);
    cfg.job_time_limit = Some(SimDuration::from_millis(10));
    let mut m = Machine::new(cfg, 1).unwrap();
    // A job that would take a full second.
    let body = ClosureProc::new("hog", |_ctx, _why, step| {
        if step < 100 {
            Action::Compute(SimDuration::from_millis(10))
        } else {
            Action::Exit
        }
    });
    m.add_process(NodeId::new(0), body);
    let out = m.run(SimTime::from_secs(60));
    assert_eq!(out.reason, RunEnd::ResourcesReleased);
    assert!(out.end <= SimTime::from_millis(10));

    // Without the limit the same job completes.
    let mut m2 = Machine::new(MachineConfig::single_cluster(1), 1).unwrap();
    let body = ClosureProc::new("hog", |_ctx, _why, step| {
        if step < 100 {
            Action::Compute(SimDuration::from_millis(10))
        } else {
            Action::Exit
        }
    });
    m2.add_process(NodeId::new(0), body);
    assert_eq!(m2.run(SimTime::from_secs(60)).reason, RunEnd::Completed);
}

/// Team semantics (paper §2.2): context switches between LWPs of the
/// same team are cheap; switches between independently created process
/// groups pay the full inter-team cost.
#[test]
fn inter_team_switches_cost_more() {
    // Two independent root processes on one node: separate teams.
    let run_pair = |same_team: bool| -> (des::time::SimTime, u64) {
        let mut m = machine(1);
        let partner = ClosureProc::new("partner", |_ctx, _why, step| {
            if step < 20 {
                Action::Yield
            } else {
                Action::Exit
            }
        });
        let mut partner = Some(partner);
        if same_team {
            // Root spawns the partner locally: same team.
            let root = ClosureProc::new("root", move |_ctx, _why, step| match step {
                0 => Action::Spawn {
                    node: NodeId::new(0),
                    body: partner.take().unwrap(),
                },
                s if s <= 20 => Action::Yield,
                _ => Action::Exit,
            });
            m.add_process(NodeId::new(0), root);
        } else {
            // Two separately added roots: distinct teams.
            let root = ClosureProc::new("root", |_ctx, _why, step| {
                if step < 20 {
                    Action::Yield
                } else {
                    Action::Exit
                }
            });
            m.add_process(NodeId::new(0), root);
            m.add_process(NodeId::new(0), partner.take().unwrap());
        }
        let out = m.run(SimTime::from_secs(10));
        assert_eq!(out.reason, RunEnd::Completed);
        (out.end, m.stats().inter_team_switches)
    };

    let (same_end, same_inter) = run_pair(true);
    let (cross_end, cross_inter) = run_pair(false);
    assert_eq!(same_inter, 0, "one team must never pay inter-team switches");
    assert!(
        cross_inter > 10,
        "alternating teams must pay inter-team switches"
    );
    assert!(
        cross_end > same_end,
        "inter-team switching should make the run slower ({cross_end} vs {same_end})"
    );
}
