//! End-to-end tests of the ZM4 pipeline: pattern streams in, merged
//! global trace out.

use des::time::{SimDuration, SimTime};
use hybridmon::{encode::encode, MonEvent};
use zm4::{ProbeSample, Zm4, Zm4Config};

/// Generates the display-pattern stream of `events` on `channel`, one
/// event starting every `period_ns`, patterns spaced `spacing_ns`.
fn pattern_stream(
    channel: usize,
    events: &[MonEvent],
    start_ns: u64,
    period_ns: u64,
    spacing_ns: u64,
) -> Vec<ProbeSample> {
    let mut out = Vec::new();
    for (k, &ev) in events.iter().enumerate() {
        let base = start_ns + k as u64 * period_ns;
        for (i, p) in encode(ev).into_iter().enumerate() {
            out.push(ProbeSample {
                time: SimTime::from_nanos(base + i as u64 * spacing_ns),
                channel,
                pattern: p,
            });
        }
    }
    out
}

#[test]
fn multi_node_trace_is_globally_ordered() {
    // Three nodes emitting interleaved events.
    let mut samples = Vec::new();
    for ch in 0..3usize {
        let events: Vec<MonEvent> = (0..10)
            .map(|i| MonEvent::new((ch as u16) << 8 | i, i as u32))
            .collect();
        samples.extend(pattern_stream(
            ch,
            &events,
            5_000 + ch as u64 * 37_000,
            500_000,
            3_400,
        ));
    }
    let zm4 = Zm4::new(Zm4Config::default(), 3, 42);
    let m = zm4.observe(&samples);
    assert_eq!(m.trace.len(), 30);
    assert_eq!(m.total_lost(), 0);
    assert_eq!(m.causality_violations(), 0);
    // Claimed timestamps are monotone.
    assert!(m.trace.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    // With the MTG, claimed time tracks true time to within the 100 ns
    // resolution.
    assert!(m.max_timestamp_error_ns() <= 100);
}

#[test]
fn channels_map_onto_recorders_and_agents() {
    let zm4 = Zm4::new(Zm4Config::default(), 16, 1);
    // 16 channels / 4 streams per recorder = 4 recorders = 1 agent.
    assert_eq!(zm4.recorders(), 4);
    assert_eq!(zm4.agents(), 1);
    assert_eq!(zm4.recorder_of(0), 0);
    assert_eq!(zm4.recorder_of(3), 0);
    assert_eq!(zm4.recorder_of(4), 1);
    assert_eq!(zm4.recorder_of(15), 3);

    // 17 channels need a 5th recorder and a 2nd agent.
    let big = Zm4::new(Zm4Config::default(), 17, 1);
    assert_eq!(big.recorders(), 5);
    assert_eq!(big.agents(), 2);
}

#[test]
fn unsynchronized_clocks_break_causality() {
    // Two nodes alternate events 200 us apart — well within the +-5 ms
    // clock offsets drawn for free-running recorders. To land the
    // channels on *different* recorders, use 1 stream per recorder.
    let mut samples = Vec::new();
    for ch in 0..2usize {
        let events: Vec<MonEvent> = (0..50).map(|i| MonEvent::new(i, ch as u32)).collect();
        samples.extend(pattern_stream(
            ch,
            &events,
            10_000 + ch as u64 * 200_000,
            400_000,
            3_400,
        ));
    }
    let cfg = Zm4Config {
        streams_per_recorder: 1,
        mtg_synchronized: false,
        ..Zm4Config::default()
    };
    let zm4 = Zm4::new(cfg.clone(), 2, 99);
    let m = zm4.observe(&samples);
    assert_eq!(m.total_recorded(), 100);
    assert!(
        m.causality_violations() > 0,
        "free-running clocks should visibly mis-order the merge"
    );
    assert!(
        m.max_timestamp_error_ns() > 100_000,
        "skew should exceed 100 us"
    );

    // Control: the same measurement with the MTG has no violations.
    let sync = Zm4::new(
        Zm4Config {
            streams_per_recorder: 1,
            ..Zm4Config::default()
        },
        2,
        99,
    );
    let ms = sync.observe(&samples);
    assert_eq!(ms.causality_violations(), 0);
}

#[test]
fn event_burst_loss_matches_fifo_model() {
    // One node blasting events back-to-back: 32 patterns x 100 ns =
    // 3.2 us per event ≈ 312k events/s, far above the 10k/s drain. The
    // FIFO (shrunk to 1000 for the test) must overflow.
    let n_events = 5_000u16;
    let events: Vec<MonEvent> = (0..n_events).map(|i| MonEvent::new(i, 0)).collect();
    let samples = pattern_stream(0, &events, 1_000, 3_200, 100);
    let cfg = Zm4Config {
        fifo_capacity: 1_000,
        ..Zm4Config::default()
    };
    let zm4 = Zm4::new(cfg, 1, 5);
    let m = zm4.observe(&samples);
    assert_eq!(m.total_recorded() + m.total_lost(), n_events as u64);
    assert!(m.total_lost() > 0, "overload must lose events");
    assert!(m.recorder_stats[0].max_fifo_occupancy == 1_000);
    // Detector still decoded everything cleanly.
    assert_eq!(m.detector_stats[0].events, n_events as u64);
    assert_eq!(m.detector_stats[0].atomicity_violations, 0);
}

#[test]
fn observation_is_deterministic() {
    let events: Vec<MonEvent> = (0..20).map(|i| MonEvent::new(i, i as u32 * 3)).collect();
    let samples = pattern_stream(0, &events, 0, 100_000, 3_400);
    let cfg = Zm4Config {
        mtg_synchronized: false,
        ..Zm4Config::default()
    };
    let a = Zm4::new(cfg.clone(), 1, 77).observe(&samples);
    let b = Zm4::new(cfg, 1, 77).observe(&samples);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.recorder_stats, b.recorder_stats);
}

#[test]
fn detector_latency_shifts_request_time() {
    let ev = MonEvent::new(1, 1);
    let samples = pattern_stream(0, &[ev], 0, 0, 1_000);
    let last_pattern_ns = 31_000;
    let cfg = Zm4Config {
        detector_latency: SimDuration::from_nanos(700),
        ..Zm4Config::default()
    };
    let m = Zm4::new(cfg, 1, 1).observe(&samples);
    assert_eq!(m.trace.len(), 1);
    // 31_000 + 700 = 31_700 quantized down to 31_700 - (31_700 % 100).
    assert_eq!(m.trace[0].ts_ns, last_pattern_ns + 700);
}
