//! Proof that the steady-state ingest path allocates nothing.
//!
//! The paper's low-interference claim rests on the monitor keeping up
//! with the object system; on the simulation side that means the
//! per-sample hot path — decode, detect, timestamp, FIFO, drain —
//! must not touch the allocator once warmed up. This test installs a
//! counting global allocator and drives a digest-sink recorder through
//! a steady event stream: the allocation count over the whole ingest
//! must be exactly zero.

// The counting allocator needs `unsafe impl GlobalAlloc`; the workspace
// denies (not forbids) `unsafe_code` precisely so that leaf test code
// like this can opt back in.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};

use des::clock::ClockModel;
use des::time::{SimDuration, SimTime};
use hybridmon::{encode::encode, MonEvent};
use zm4::{DetectedEvent, DigestSink, EventDetector, EventRecorder, ProbeSample};

struct CountingAlloc;

thread_local! {
    /// Per-thread armed flag + count, so the test harness's own threads
    /// (output capture, concurrently running tests) cannot leak
    /// allocations into a measurement. Const-initialized: reading them
    /// inside the allocator never allocates.
    static MEASURING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static ALLOCATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

#[inline]
fn count_if_measuring() {
    MEASURING.with(|m| {
        if m.get() {
            ALLOCATIONS.with(|c| c.set(c.get() + 1));
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_measuring();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_measuring();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with this thread's allocations counted; returns the count.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.with(std::cell::Cell::get);
    MEASURING.with(|m| m.set(true));
    let out = f();
    MEASURING.with(|m| m.set(false));
    (ALLOCATIONS.with(std::cell::Cell::get) - before, out)
}

#[test]
fn steady_state_ingest_allocates_nothing() {
    // Construction may allocate (FIFO slab, detector state) — that is
    // the point of preallocating.
    let clock = ClockModel::synchronized(SimDuration::from_nanos(100));
    let mut recorder = EventRecorder::with_sink(
        clock,
        32 * 1024,
        SimDuration::from_micros(100),
        DigestSink::new(),
    );
    let mut detector = EventDetector::new(0, SimDuration::from_nanos(500));

    // Pre-encode the pattern streams so the measuring loop below does
    // nothing but the pipeline under test.
    let events: Vec<MonEvent> = (0..2_000u32)
        .map(|i| MonEvent::new((i % 65_536) as u16, i))
        .collect();
    let encoded: Vec<[hybridmon::Pattern; 32]> = events.iter().map(|&e| encode(e)).collect();

    // Warm up one event end to end.
    let mut t = 0u64;
    for &p in &encoded[0] {
        t += 3_400;
        if let Some(ev) = detector.feed(ProbeSample {
            time: SimTime::from_nanos(t),
            channel: 0,
            pattern: p,
        }) {
            recorder.record(ev);
        }
    }

    // Steady state: decode + detect + record a long stream, counting
    // every allocator call.
    let (during, ()) = allocations_during(|| {
        for patterns in &encoded[1..] {
            for &p in patterns {
                t += 3_400;
                if let Some(ev) = detector.feed(ProbeSample {
                    time: SimTime::from_nanos(t),
                    channel: 0,
                    pattern: p,
                }) {
                    recorder.record(ev);
                }
            }
        }
    });
    assert_eq!(
        during, 0,
        "steady-state ingest performed {during} heap allocations"
    );

    // The stream actually went through the pipeline.
    let (sink, stats) = recorder.finish();
    assert_eq!(stats.recorded, 2_000);
    assert_eq!(stats.lost, 0);
    assert_eq!(sink.records(), 2_000);
    assert_ne!(sink.digest(), 0);
}

#[test]
fn detected_event_passthrough_allocates_nothing() {
    // The recorder alone (no decode front end), fed pre-built events:
    // the FIFO slab absorbs queueing without a single resize.
    let clock = ClockModel::synchronized(SimDuration::from_nanos(100));
    let mut recorder = EventRecorder::with_sink(
        clock,
        1024,
        SimDuration::from_micros(100),
        DigestSink::new(),
    );
    recorder.record(DetectedEvent {
        time: SimTime::from_nanos(100),
        channel: 0,
        event: MonEvent::new(0, 0),
    });

    let (during, ()) = allocations_during(|| {
        for i in 1..10_000u64 {
            recorder.record(DetectedEvent {
                time: SimTime::from_nanos(100 + i * 150_000),
                channel: 0,
                event: MonEvent::new((i % 65_536) as u16, i as u32),
            });
        }
    });
    assert_eq!(during, 0, "recorder ingest performed {during} allocations");
    let (sink, stats) = recorder.finish();
    assert_eq!(stats.recorded + stats.lost, 10_000);
    assert_eq!(sink.records(), stats.recorded);
}
