//! Simulation of the ZM4 distributed hardware monitor.
//!
//! The ZM4 (paper §3) is a scalable monitor built from:
//!
//! * **dedicated probe units (DPUs)** — probes clipped onto the object
//!   system plus an *event detector* (the only object-system-specific
//!   parts) and an *event recorder*;
//! * **event recorders** — plug-in boards with a 100 ns clock and a
//!   32K × 96-bit FIFO, able to record up to four independent event
//!   streams; the FIFO drains to the monitor agent's disk at about
//!   10 000 events/s while absorbing bursts of up to 10 million events/s;
//! * **monitor agents** — PC/AT hosts carrying up to four DPUs;
//! * the **measure tick generator (MTG)** — master of the global clock:
//!   it starts all recorder clocks simultaneously and a continuously
//!   transmitted Manchester-coded signal on the tick channel prevents
//!   skew, giving *globally valid* timestamps;
//! * the **control and evaluation computer (CEC)** — merges the local
//!   traces into one global trace by sorting on those timestamps.
//!
//! The simulation consumes the probe-visible signal stream of the object
//! system (seven-segment display writes, as [`ProbeSample`]s) and
//! produces the merged, timestamped global trace — including event loss
//! when the FIFO model overflows and timestamp error when the MTG is
//! disabled (free-running, skewed recorder clocks).
//!
//! # Examples
//!
//! ```
//! use des::time::SimTime;
//! use hybridmon::{encode::encode, MonEvent};
//! use zm4::{ProbeSample, Zm4, Zm4Config};
//!
//! // One node emitting one event, patterns spaced 3.4 us apart.
//! let mut samples = Vec::new();
//! for (i, p) in encode(MonEvent::new(0x42, 7)).into_iter().enumerate() {
//!     samples.push(ProbeSample {
//!         time: SimTime::from_nanos(10_000 + 3_400 * i as u64),
//!         channel: 0,
//!         pattern: p,
//!     });
//! }
//! let zm4 = Zm4::new(Zm4Config::default(), 1, 1234);
//! let m = zm4.observe(&samples);
//! assert_eq!(m.trace.len(), 1);
//! assert_eq!(m.trace[0].event.token.value(), 0x42);
//! assert_eq!(m.total_lost(), 0);
//! ```

pub mod cec;
pub mod config;
pub mod detector;
pub mod dpu;
pub mod measurement;
pub mod recorder;
pub mod serial;
pub mod sharded;

pub use cec::merge_traces;
pub use config::Zm4Config;
pub use detector::{DetectedEvent, EventDetector, ProbeSample};
pub use dpu::Dpu;
pub use measurement::{Measurement, TraceRecord};
pub use recorder::{DigestSink, EventRecorder, RecordSink, RecorderStats, StoredRecord};
pub use serial::{detect_serial, SerialProbe, SerialSample};
pub use sharded::ObserverShard;

use des::rng::DetRng;
use des::time::SimTime;

/// The assembled monitor system: one probe/detector per monitored
/// channel, channels grouped onto event recorders, recorders onto
/// monitor agents, all recorder clocks driven by the MTG (or free
/// running, for the ablation).
#[derive(Debug)]
pub struct Zm4 {
    config: Zm4Config,
    channels: usize,
}

impl Zm4 {
    /// Builds a monitor for `channels` object-system channels (one per
    /// monitored node). `seed` drives the clock-skew draws of the
    /// unsynchronized ablation.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(config: Zm4Config, channels: usize, seed: u64) -> Self {
        assert!(channels > 0, "monitor needs at least one channel");
        let mut zm4 = Zm4 { config, channels };
        zm4.config.seed = seed;
        zm4
    }

    /// Number of monitored channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The monitor configuration (with the seed applied).
    pub fn config(&self) -> &Zm4Config {
        &self.config
    }

    /// Number of event recorders required
    /// ([`Zm4Config::streams_per_recorder`] channels share one recorder).
    pub fn recorders(&self) -> usize {
        self.channels.div_ceil(self.config.streams_per_recorder)
    }

    /// Number of monitor agents required.
    pub fn agents(&self) -> usize {
        self.recorders().div_ceil(self.config.dpus_per_agent)
    }

    /// The recorder a channel is wired to.
    pub fn recorder_of(&self, channel: usize) -> usize {
        channel / self.config.streams_per_recorder
    }

    /// Runs the measurement: decodes the pattern stream per channel,
    /// records events per recorder (FIFO + clock model), and merges the
    /// local traces on the CEC.
    ///
    /// `samples` may be in any order; when every channel's subsequence
    /// is already time-sorted (the case for a simulation's signal log),
    /// the stream is fed through [`Zm4::observe_iter`] in a single pass
    /// with no partition copies; otherwise the samples are sorted by
    /// time per channel first. Both paths produce identical
    /// measurements.
    ///
    /// # Panics
    ///
    /// Panics if a sample references a channel the monitor was not built
    /// for.
    pub fn observe(&self, samples: &[ProbeSample]) -> Measurement {
        // O(n) sortedness probe: per-channel non-decreasing times are
        // exactly what the partition-and-stable-sort path would produce,
        // so streaming is bit-identical whenever the probe passes.
        let mut last = vec![SimTime::ZERO; self.channels];
        let sorted = samples.iter().all(|s| {
            assert!(
                s.channel < self.channels,
                "sample for unwired channel {}",
                s.channel
            );
            let ok = s.time >= last[s.channel];
            last[s.channel] = s.time;
            ok
        });
        if sorted {
            return self.observe_iter(samples.iter().copied());
        }

        // Sort samples per channel, preserving global time order within
        // each channel, then stream the channels one after another
        // (per-channel order is all that matters downstream).
        let mut per_channel: Vec<Vec<ProbeSample>> = vec![Vec::new(); self.channels];
        for s in samples {
            assert!(
                s.channel < self.channels,
                "sample for unwired channel {}",
                s.channel
            );
            per_channel[s.channel].push(*s);
        }
        for ch in &mut per_channel {
            ch.sort_by_key(|s| s.time);
        }
        self.observe_iter(per_channel.into_iter().flatten())
    }

    /// Runs the measurement over a streamed sample sequence in a single
    /// pass: no sample is retained, partitioned, or copied. Detected
    /// events flow straight from each channel's detector into its
    /// recorder's DPU queue.
    ///
    /// Each channel's subsequence must be in non-decreasing time order
    /// (channels may interleave arbitrarily); [`Zm4::observe`] falls
    /// back to sorting when that precondition does not hold.
    ///
    /// # Panics
    ///
    /// Panics if a sample references a channel the monitor was not built
    /// for.
    pub fn observe_iter<I>(&self, samples: I) -> Measurement
    where
        I: IntoIterator<Item = ProbeSample>,
    {
        let rng = DetRng::new(self.config.seed);
        let n_rec = self.recorders();

        // Build one DPU pipeline per recorder, serving its channels.
        let mut dpus: Vec<Dpu> = (0..n_rec)
            .map(|i| Dpu::new(i, &self.config, &rng))
            .collect();
        let mut detectors: Vec<EventDetector> = (0..self.channels)
            .map(|ch| EventDetector::new(ch, self.config.detector_latency))
            .collect();

        for s in samples {
            assert!(
                s.channel < self.channels,
                "sample for unwired channel {}",
                s.channel
            );
            if let Some(event) = detectors[s.channel].feed(s) {
                dpus[self.recorder_of(s.channel)].queue_event(event);
            }
        }

        let detector_stats = detectors.into_iter().map(|d| d.into_stats()).collect();

        let mut local_traces = Vec::with_capacity(n_rec);
        let mut recorder_stats = Vec::with_capacity(n_rec);
        for dpu in dpus {
            let (stored, stats) = dpu.record();
            local_traces.push(stored);
            recorder_stats.push(stats);
        }

        let trace = merge_traces(&local_traces);
        Measurement {
            trace,
            recorder_stats,
            detector_stats,
        }
    }
}
