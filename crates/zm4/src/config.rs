//! ZM4 configuration, anchored to the published hardware parameters.

use des::time::SimDuration;

/// Configuration of a ZM4 monitor system.
///
/// Defaults are the paper's hardware figures:
///
/// * event-recorder clock resolution **100 ns**;
/// * FIFO buffer of **32 K** records (32K × 96 bit);
/// * sustained drain to the monitor-agent disk of about
///   **10 000 events/s**;
/// * up to **4 event streams per recorder** and **4 DPUs per agent**.
///
/// # Examples
///
/// ```
/// use zm4::Zm4Config;
///
/// let cfg = Zm4Config { mtg_synchronized: false, ..Zm4Config::default() };
/// assert!(!cfg.mtg_synchronized);
/// assert_eq!(cfg.fifo_capacity, 32 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zm4Config {
    /// Independent event streams multiplexed onto one event recorder.
    pub streams_per_recorder: usize,
    /// DPUs hosted by one monitor agent.
    pub dpus_per_agent: usize,
    /// FIFO capacity in records.
    pub fifo_capacity: usize,
    /// Local clock resolution.
    pub clock_resolution: SimDuration,
    /// Sustained FIFO→disk drain rate, events per second.
    pub disk_drain_rate: u64,
    /// Latency of the event-detector state machine from the last pattern
    /// of an event to the recorder's request signal.
    pub detector_latency: SimDuration,
    /// Whether the measure tick generator drives all recorder clocks
    /// (globally valid timestamps). When `false`, each recorder clock
    /// free-runs with a random offset/drift — the ablation that shows why
    /// the MTG exists.
    pub mtg_synchronized: bool,
    /// Maximum clock offset drawn for free-running recorders.
    pub skew_max_offset: SimDuration,
    /// Maximum clock drift (ppm) drawn for free-running recorders.
    pub skew_max_drift_ppm: f64,
    /// Seed for skew draws (overwritten by [`crate::Zm4::new`]).
    pub seed: u64,
}

impl Default for Zm4Config {
    fn default() -> Self {
        Zm4Config {
            streams_per_recorder: 4,
            dpus_per_agent: 4,
            fifo_capacity: 32 * 1024,
            clock_resolution: SimDuration::from_nanos(100),
            disk_drain_rate: 10_000,
            detector_latency: SimDuration::from_nanos(500),
            mtg_synchronized: true,
            skew_max_offset: SimDuration::from_millis(5),
            skew_max_drift_ppm: 50.0,
            seed: 0,
        }
    }
}

impl Zm4Config {
    /// Peak burst rate one event recorder can absorb, events/s
    /// (paper §3.1: "bursts of up to 10 million events/s").
    pub const BURST_RATE_HZ: u64 = 10_000_000;

    /// Service time of one FIFO→disk record.
    ///
    /// # Panics
    ///
    /// Panics if the drain rate is zero.
    pub fn drain_service_time(&self) -> SimDuration {
        assert!(self.disk_drain_rate > 0, "drain rate must be nonzero");
        SimDuration::from_nanos(1_000_000_000 / self.disk_drain_rate)
    }

    /// Builds the monitor this configuration describes, observing
    /// `channels` event streams with determinism seed `seed` (the
    /// configured seed field is overwritten — see [`crate::Zm4::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn build(&self, channels: usize, seed: u64) -> crate::Zm4 {
        crate::Zm4::new(self.clone(), channels, seed)
    }

    /// How long a recorder sustains an arrival rate of `arrival_hz`
    /// events/s before its FIFO overflows and events are lost, assuming
    /// the FIFO starts empty. `None` when the disk drain keeps up
    /// (`arrival_hz <= disk_drain_rate`) — the FIFO never fills.
    ///
    /// This is the closed-form counterpart of the recorder's dynamic
    /// FIFO model, used for static overload prediction.
    pub fn overflow_horizon(&self, arrival_hz: f64) -> Option<SimDuration> {
        let excess = arrival_hz - self.disk_drain_rate as f64;
        if excess <= 0.0 {
            return None;
        }
        let seconds = self.fifo_capacity as f64 / excess;
        Some(SimDuration::from_nanos((seconds * 1e9) as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchors() {
        let cfg = Zm4Config::default();
        assert_eq!(cfg.clock_resolution, SimDuration::from_nanos(100));
        assert_eq!(cfg.fifo_capacity, 32_768);
        assert_eq!(cfg.disk_drain_rate, 10_000);
        assert_eq!(cfg.drain_service_time(), SimDuration::from_micros(100));
        assert!(cfg.mtg_synchronized);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_drain_rate_panics() {
        Zm4Config {
            disk_drain_rate: 0,
            ..Zm4Config::default()
        }
        .drain_service_time();
    }

    #[test]
    fn overflow_horizon_matches_fifo_arithmetic() {
        let cfg = Zm4Config::default();
        // Drain keeps up: never overflows.
        assert_eq!(cfg.overflow_horizon(9_999.0), None);
        assert_eq!(cfg.overflow_horizon(10_000.0), None);
        // 42 768 ev/s arrival: 32 768 excess events/s fill the 32K FIFO
        // in exactly one second.
        let horizon = cfg.overflow_horizon(42_768.0).unwrap();
        assert_eq!(horizon, SimDuration::from_secs(1));
        // The paper's burst figure drowns the FIFO in ~3.3 ms.
        let burst = cfg
            .overflow_horizon(Zm4Config::BURST_RATE_HZ as f64)
            .unwrap();
        assert!(burst < SimDuration::from_millis(4));
    }
}
