//! The dedicated probe unit: a recorder fed by up to four detector
//! streams.
//!
//! A [`Dpu`] bundles one [`EventRecorder`] with the detected-event
//! streams of the channels wired to it. Its clock is either locked to
//! the measure tick generator (globally valid timestamps) or free
//! running with a per-recorder random skew — the configuration's
//! `mtg_synchronized` flag decides, implementing both the paper's normal
//! operation and the "why a global clock" ablation.

use des::clock::ClockModel;
use des::rng::DetRng;

use crate::config::Zm4Config;
use crate::detector::DetectedEvent;
use crate::recorder::{EventRecorder, RecorderStats, StoredRecord};

/// One DPU: the event recorder plus its queued input events.
#[derive(Debug)]
pub struct Dpu {
    index: usize,
    recorder: EventRecorder,
    queued: Vec<DetectedEvent>,
}

impl Dpu {
    /// Builds DPU number `index`. The clock model is derived from the
    /// config: synchronized (MTG) or free-running with skew drawn from
    /// `rng` streams keyed by the index.
    pub fn new(index: usize, cfg: &Zm4Config, rng: &DetRng) -> Self {
        let clock = if cfg.mtg_synchronized {
            ClockModel::synchronized(cfg.clock_resolution)
        } else {
            let mut stream = rng.derive_indexed("recorder-clock", index as u64);
            ClockModel::random_skew(
                &mut stream,
                cfg.skew_max_offset,
                cfg.skew_max_drift_ppm,
                cfg.clock_resolution,
            )
        };
        Dpu {
            index,
            recorder: EventRecorder::new(clock, cfg.fifo_capacity, cfg.drain_service_time()),
            queued: Vec::new(),
        }
    }

    /// The DPU's index within the monitor.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The recorder clock in use (inspectable for tests and reports).
    pub fn clock(&self) -> &ClockModel {
        self.recorder.clock()
    }

    /// Queues one detected event from one of this DPU's channels.
    ///
    /// Events from the same channel must arrive in detection order;
    /// interleaving across channels is free — [`Dpu::record`] merges by
    /// `(time, channel)` with a stable sort, so per-channel order is
    /// what counts.
    #[inline]
    pub fn queue_event(&mut self, event: DetectedEvent) {
        self.queued.push(event);
    }

    /// Queues detected events from one of this DPU's channels.
    pub fn queue_events<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = DetectedEvent>,
    {
        self.queued.extend(events);
    }

    /// Runs the recording: merges the queued streams into true-time
    /// order (the hardware request lines are served in signal order) and
    /// passes them through the FIFO/drain model.
    pub fn record(mut self) -> (Vec<StoredRecord>, RecorderStats) {
        self.queued.sort_by_key(|e| (e.time, e.channel));
        for ev in self.queued {
            self.recorder.record(ev);
        }
        self.recorder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::time::SimTime;
    use hybridmon::MonEvent;

    fn ev(ns: u64, channel: usize) -> DetectedEvent {
        DetectedEvent {
            time: SimTime::from_nanos(ns),
            channel,
            event: MonEvent::new(channel as u16, 0),
        }
    }

    #[test]
    fn merges_channels_in_time_order() {
        let cfg = Zm4Config::default();
        let rng = DetRng::new(1);
        let mut dpu = Dpu::new(0, &cfg, &rng);
        dpu.queue_events([ev(3_000, 0), ev(9_000, 0)]);
        dpu.queue_events([ev(1_000, 1), ev(6_000, 1)]);
        let (stored, stats) = dpu.record();
        assert_eq!(stats.recorded, 4);
        let channels: Vec<usize> = stored.iter().map(|r| r.channel).collect();
        assert_eq!(channels, vec![1, 0, 1, 0]);
        assert!(stored.windows(2).all(|w| w[0].local_ts <= w[1].local_ts));
    }

    #[test]
    fn synchronized_dpus_share_perfect_clock() {
        let cfg = Zm4Config::default();
        let rng = DetRng::new(7);
        let a = Dpu::new(0, &cfg, &rng);
        let b = Dpu::new(1, &cfg, &rng);
        assert!(a.clock().is_synchronized());
        assert!(b.clock().is_synchronized());
    }

    #[test]
    fn free_running_dpus_have_distinct_skews() {
        let cfg = Zm4Config {
            mtg_synchronized: false,
            ..Zm4Config::default()
        };
        let rng = DetRng::new(7);
        let a = Dpu::new(0, &cfg, &rng);
        let b = Dpu::new(1, &cfg, &rng);
        assert!(!a.clock().is_synchronized() || !b.clock().is_synchronized());
        // Same event time stamps differently on the two recorders.
        let t = SimTime::from_millis(100);
        assert_ne!(a.clock().stamp(t), b.clock().stamp(t));
    }
}
