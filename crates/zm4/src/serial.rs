//! Probing the V.24 terminal interface — the monitoring channel the
//! paper evaluated and rejected.
//!
//! Each node's serial terminal interface can also carry measurement
//! data: 48-bit events as six bytes at under 20 kbit/s. A
//! [`SerialProbe`] reassembles those frames. The channel works — the
//! merged trace is just as valid — but each event costs the object
//! system more than 2.4 ms, which is why the paper built the
//! seven-segment interface instead (see the `exp_intrusion`
//! experiment for the measured perturbation).

use des::time::SimTime;
use hybridmon::MonEvent;

use crate::detector::DetectedEvent;

/// One byte observed on a node's serial line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SerialSample {
    /// True global time the byte finished transmitting.
    pub time: SimTime,
    /// The monitored channel (object node).
    pub channel: usize,
    /// The byte value.
    pub byte: u8,
}

/// Reassembles 6-byte event frames from a serial byte stream.
///
/// # Examples
///
/// ```
/// use des::time::SimTime;
/// use zm4::serial::{SerialProbe, SerialSample};
///
/// let mut probe = SerialProbe::new(0);
/// let raw: u64 = 0xBEEF_0000_002A; // token 0xBEEF, param 42
/// let mut out = None;
/// for (i, shift) in (0..6).zip([40u32, 32, 24, 16, 8, 0]) {
///     let sample = SerialSample {
///         time: SimTime::from_micros(400 * (i as u64 + 1)),
///         channel: 0,
///         byte: (raw >> shift) as u8,
///     };
///     if let Some(ev) = probe.feed(sample) {
///         out = Some(ev);
///     }
/// }
/// assert_eq!(out.unwrap().event.token.value(), 0xBEEF);
/// ```
#[derive(Debug, Clone)]
pub struct SerialProbe {
    channel: usize,
    buffer: [u8; 6],
    filled: usize,
}

impl SerialProbe {
    /// Creates a probe for `channel`.
    pub fn new(channel: usize) -> Self {
        SerialProbe {
            channel,
            buffer: [0; 6],
            filled: 0,
        }
    }

    /// Consumes one serial byte; returns a detected event when the sixth
    /// byte of a frame arrives.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the sample belongs to another channel.
    pub fn feed(&mut self, sample: SerialSample) -> Option<DetectedEvent> {
        debug_assert_eq!(
            sample.channel, self.channel,
            "sample fed to wrong serial probe"
        );
        self.buffer[self.filled] = sample.byte;
        self.filled += 1;
        if self.filled < 6 {
            return None;
        }
        self.filled = 0;
        let raw = self
            .buffer
            .iter()
            .fold(0u64, |acc, &b| (acc << 8) | b as u64);
        Some(DetectedEvent {
            time: sample.time,
            channel: self.channel,
            event: MonEvent::from_raw48(raw),
        })
    }

    /// Bytes of a partially received frame.
    pub fn pending_bytes(&self) -> usize {
        self.filled
    }
}

/// Decodes whole per-channel serial streams into detected events.
pub fn detect_serial(samples: &[SerialSample], channels: usize) -> Vec<DetectedEvent> {
    let mut per_channel: Vec<Vec<SerialSample>> = vec![Vec::new(); channels];
    for &s in samples {
        assert!(
            s.channel < channels,
            "sample for unwired channel {}",
            s.channel
        );
        per_channel[s.channel].push(s);
    }
    let mut out = Vec::new();
    for (ch, mut stream) in per_channel.into_iter().enumerate() {
        stream.sort_by_key(|s| s.time);
        let mut probe = SerialProbe::new(ch);
        for s in stream {
            out.extend(probe.feed(s));
        }
    }
    out.sort_by_key(|e| (e.time, e.channel));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(channel: usize, base_us: u64, event: MonEvent) -> Vec<SerialSample> {
        let raw = event.raw48();
        (0..6)
            .map(|i| SerialSample {
                time: SimTime::from_micros(base_us + 400 * (i + 1)),
                channel,
                byte: (raw >> (40 - 8 * i)) as u8,
            })
            .collect()
    }

    #[test]
    fn decodes_back_to_back_frames() {
        let mut probe = SerialProbe::new(0);
        let evs = [MonEvent::new(1, 100), MonEvent::new(2, 200)];
        let mut out = Vec::new();
        for (k, &ev) in evs.iter().enumerate() {
            for s in frame(0, k as u64 * 3_000, ev) {
                out.extend(probe.feed(s));
            }
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].event, evs[0]);
        assert_eq!(out[1].event, evs[1]);
        assert_eq!(probe.pending_bytes(), 0);
    }

    #[test]
    fn partial_frame_stays_pending() {
        let mut probe = SerialProbe::new(1);
        let samples = frame(1, 0, MonEvent::new(7, 7));
        for s in &samples[..4] {
            assert!(probe.feed(*s).is_none());
        }
        assert_eq!(probe.pending_bytes(), 4);
    }

    #[test]
    fn multi_channel_streams_are_independent() {
        let mut samples = Vec::new();
        samples.extend(frame(0, 0, MonEvent::new(0xA, 1)));
        samples.extend(frame(1, 100, MonEvent::new(0xB, 2)));
        // Interleave by sorting on time: detect_serial must still split
        // per channel correctly.
        samples.sort_by_key(|s| s.time);
        let out = detect_serial(&samples, 2);
        assert_eq!(out.len(), 2);
        let tokens: Vec<u16> = out.iter().map(|e| e.event.token.value()).collect();
        assert!(tokens.contains(&0xA) && tokens.contains(&0xB));
    }
}
