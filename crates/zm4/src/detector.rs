//! The probe + event-detector front end of a DPU.
//!
//! The probes are clipped into the seven-segment display socket; the
//! event detector is the recognition state machine (realized in
//! programmable logic on the real interface) that spots the triggerword
//! and reassembles 48-bit events. The protocol state machine itself is
//! [`hybridmon::Decoder`] — the same logic the instrumentation side was
//! designed against.

use des::time::{SimDuration, SimTime};
use hybridmon::decode::DecodeStats;
use hybridmon::{Decoder, MonEvent, Pattern};

/// One probed display write: what the interface sees on its 7-bit input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSample {
    /// True global time of the write.
    pub time: SimTime,
    /// The monitor channel (object node) the probe is attached to.
    pub channel: usize,
    /// The displayed pattern.
    pub pattern: Pattern,
}

/// A fully assembled 48-bit event, ready for the event recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectedEvent {
    /// When the recorder's request signal fires (last pattern time plus
    /// detector latency).
    pub time: SimTime,
    /// The source channel.
    pub channel: usize,
    /// The decoded event.
    pub event: MonEvent,
}

/// Per-channel event detector.
///
/// # Examples
///
/// ```
/// use des::time::{SimDuration, SimTime};
/// use hybridmon::{encode::encode, MonEvent};
/// use zm4::{EventDetector, ProbeSample};
///
/// let mut det = EventDetector::new(0, SimDuration::from_nanos(500));
/// let samples: Vec<ProbeSample> = encode(MonEvent::new(3, 4))
///     .into_iter()
///     .enumerate()
///     .map(|(i, p)| ProbeSample {
///         time: SimTime::from_micros(i as u64),
///         channel: 0,
///         pattern: p,
///     })
///     .collect();
/// let events = det.detect(&samples);
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].event, MonEvent::new(3, 4));
/// // Request fires detector-latency after the 32nd pattern.
/// assert_eq!(events[0].time, SimTime::from_micros(31) + SimDuration::from_nanos(500));
/// ```
#[derive(Debug)]
pub struct EventDetector {
    channel: usize,
    latency: SimDuration,
    decoder: Decoder,
}

impl EventDetector {
    /// Creates a detector for `channel` with the given request latency.
    pub fn new(channel: usize, latency: SimDuration) -> Self {
        EventDetector {
            channel,
            latency,
            decoder: Decoder::new(),
        }
    }

    /// Feeds one probed pattern; returns a detected event if this pattern
    /// completed one.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the sample belongs to another channel.
    #[inline]
    pub fn feed(&mut self, sample: ProbeSample) -> Option<DetectedEvent> {
        debug_assert_eq!(sample.channel, self.channel, "sample fed to wrong detector");
        self.decoder
            .feed(sample.pattern)
            .map(|event| DetectedEvent {
                time: sample.time + self.latency,
                channel: self.channel,
                event,
            })
    }

    /// Processes a whole time-ordered sample stream.
    pub fn detect(&mut self, samples: &[ProbeSample]) -> Vec<DetectedEvent> {
        samples.iter().filter_map(|&s| self.feed(s)).collect()
    }

    /// The protocol-health counters accumulated so far.
    pub fn stats(&self) -> DecodeStats {
        self.decoder.stats()
    }

    /// Consumes the detector, returning its final counters.
    pub fn into_stats(self) -> DecodeStats {
        self.decoder.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmon::encode::encode;

    fn stream(
        channel: usize,
        events: &[MonEvent],
        start_us: u64,
        spacing_ns: u64,
    ) -> Vec<ProbeSample> {
        let mut t = start_us * 1_000;
        let mut out = Vec::new();
        for &ev in events {
            for p in encode(ev) {
                out.push(ProbeSample {
                    time: SimTime::from_nanos(t),
                    channel,
                    pattern: p,
                });
                t += spacing_ns;
            }
        }
        out
    }

    #[test]
    fn detects_sequence_in_order() {
        let events = [
            MonEvent::new(1, 10),
            MonEvent::new(2, 20),
            MonEvent::new(3, 30),
        ];
        let mut det = EventDetector::new(0, SimDuration::from_nanos(500));
        let detected = det.detect(&stream(0, &events, 5, 3_400));
        assert_eq!(detected.len(), 3);
        for (d, e) in detected.iter().zip(events) {
            assert_eq!(d.event, e);
            assert_eq!(d.channel, 0);
        }
        assert!(detected.windows(2).all(|w| w[0].time < w[1].time));
        assert_eq!(det.stats().events, 3);
    }

    #[test]
    fn tolerates_firmware_noise() {
        let ev = MonEvent::new(0xFF, 0xFF);
        let mut samples = stream(0, &[ev], 0, 1_000);
        // Inject a firmware pattern between two pairs (offset after the
        // 2nd pair = after sample index 3).
        samples.insert(
            4,
            ProbeSample {
                time: SimTime::from_nanos(3_500),
                channel: 0,
                pattern: Pattern::new(10).unwrap(),
            },
        );
        let mut det = EventDetector::new(0, SimDuration::ZERO);
        let detected = det.detect(&samples);
        assert_eq!(detected.len(), 1);
        assert_eq!(detected[0].event, ev);
        assert_eq!(det.stats().stray_patterns, 1);
    }

    #[test]
    fn empty_stream_detects_nothing() {
        let mut det = EventDetector::new(3, SimDuration::ZERO);
        assert!(det.detect(&[]).is_empty());
        assert_eq!(det.into_stats().events, 0);
    }
}
