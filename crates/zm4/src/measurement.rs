//! The result of one ZM4 measurement.

use des::time::SimTime;
use hybridmon::decode::DecodeStats;
use hybridmon::MonEvent;

use crate::recorder::RecorderStats;

/// One entry of the merged global trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Timestamp, in nanoseconds on the (claimed-global) recorder clock.
    pub ts_ns: u64,
    /// Object-system channel (node) the event came from.
    pub channel: usize,
    /// Which event recorder stored it.
    pub recorder: usize,
    /// The 48-bit event.
    pub event: MonEvent,
    /// True global time of the event (simulation oracle; absent on real
    /// hardware).
    pub true_time: SimTime,
}

/// Everything a measurement produced.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The merged global trace, sorted by claimed timestamp.
    pub trace: Vec<TraceRecord>,
    /// Per-recorder FIFO/loss statistics.
    pub recorder_stats: Vec<RecorderStats>,
    /// Per-channel detector protocol statistics.
    pub detector_stats: Vec<DecodeStats>,
}

impl Measurement {
    /// Total events lost across all recorders.
    pub fn total_lost(&self) -> u64 {
        self.recorder_stats.iter().map(|s| s.lost).sum()
    }

    /// Total events recorded across all recorders.
    pub fn total_recorded(&self) -> u64 {
        self.recorder_stats.iter().map(|s| s.recorded).sum()
    }

    /// Counts adjacent trace pairs whose *true* times contradict their
    /// merged order — zero when the MTG provides globally valid
    /// timestamps, positive with free-running clocks.
    pub fn causality_violations(&self) -> u64 {
        self.trace
            .windows(2)
            .filter(|w| w[1].true_time < w[0].true_time)
            .count() as u64
    }

    /// Worst absolute timestamp error versus true time, in nanoseconds.
    pub fn max_timestamp_error_ns(&self) -> u64 {
        self.trace
            .iter()
            .map(|r| r.ts_ns.abs_diff(r.true_time.as_nanos()))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RecorderStats;

    fn rec(ts: u64, true_ns: u64) -> TraceRecord {
        TraceRecord {
            ts_ns: ts,
            channel: 0,
            recorder: 0,
            event: MonEvent::new(0, 0),
            true_time: SimTime::from_nanos(true_ns),
        }
    }

    #[test]
    fn violation_counting() {
        let m = Measurement {
            trace: vec![rec(10, 10), rec(20, 5), rec(30, 30)],
            recorder_stats: vec![],
            detector_stats: vec![],
        };
        assert_eq!(m.causality_violations(), 1);
        assert_eq!(m.max_timestamp_error_ns(), 15);
    }

    #[test]
    fn totals_sum_over_recorders() {
        let m = Measurement {
            trace: vec![],
            recorder_stats: vec![
                RecorderStats {
                    recorded: 10,
                    lost: 2,
                    max_fifo_occupancy: 5,
                },
                RecorderStats {
                    recorded: 7,
                    lost: 0,
                    max_fifo_occupancy: 1,
                },
            ],
            detector_stats: vec![],
        };
        assert_eq!(m.total_recorded(), 17);
        assert_eq!(m.total_lost(), 2);
        assert_eq!(m.causality_violations(), 0);
        assert_eq!(m.max_timestamp_error_ns(), 0);
    }
}
