//! The event recorder: timestamping, FIFO buffering, disk drain.
//!
//! Upon the detector's request signal the recorder latches the event data
//! together with a timestamp from its local 100 ns clock and a flag field
//! into a 32K × 96-bit FIFO. The FIFO drains continuously onto the
//! monitor agent's disk at roughly 10 000 events/s; its input side
//! tolerates bursts of up to 10 million events/s. When the FIFO is full,
//! events are **lost** and counted — exactly the failure mode the paper's
//! sizing argument is about.
//!
//! The drain is modelled as a deterministic single-server queue: each
//! stored record departs `drain_service_time` after the previous
//! departure (or after its own arrival, whichever is later); a record
//! occupies a FIFO slot until its departure.
//!
//! # Record sinks
//!
//! "Disk" is a [`RecordSink`]: by default a `Vec<StoredRecord>` (the
//! local trace, as before), but callers that only need a fingerprint or
//! statistics can plug in a [`DigestSink`], which folds every record
//! into an incremental FNV-1a digest and retains nothing — the
//! steady-state ingest path then performs **no heap allocation at all**
//! (asserted by the `no_alloc` integration test).

use std::collections::VecDeque;
use std::fmt;

use des::clock::ClockModel;
use des::digest::Fnv64;
use des::time::SimTime;

use crate::detector::DetectedEvent;

/// A record as written to the monitor agent's disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredRecord {
    /// The local-clock timestamp (nanoseconds on this recorder's clock).
    /// Globally valid when the MTG drives the clock.
    pub local_ts: u64,
    /// The source channel.
    pub channel: usize,
    /// The 48-bit event.
    pub event: hybridmon::MonEvent,
    /// True global arrival time (simulation ground truth, for
    /// validation only — the real hardware has no such column).
    pub true_time: SimTime,
}

/// Lazy one-line rendering (`local_ts channel token param`): nothing is
/// allocated until the record is actually written to a formatter, so
/// reporting paths can pass records around without `format!`-ing each
/// one eagerly.
impl fmt::Display for StoredRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ch{} token={:#06x} param={:#010x}",
            self.local_ts,
            self.channel,
            self.event.token.value(),
            self.event.param.value()
        )
    }
}

/// Health counters of one event recorder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Events recorded (accepted into the FIFO).
    pub recorded: u64,
    /// Events lost to FIFO overflow.
    pub lost: u64,
    /// Peak FIFO occupancy observed.
    pub max_fifo_occupancy: usize,
}

/// Lazy summary line — see [`StoredRecord`]'s `Display` note.
impl fmt::Display for RecorderStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recorded={} lost={} max_fifo={}",
            self.recorded, self.lost, self.max_fifo_occupancy
        )
    }
}

/// Where drained records go.
///
/// Implemented by `Vec<StoredRecord>` (retain the local trace) and
/// [`DigestSink`] (retain only an FNV-1a fingerprint plus a count).
pub trait RecordSink {
    /// Accepts one record leaving the FIFO for "disk".
    fn accept(&mut self, record: StoredRecord);
}

impl RecordSink for Vec<StoredRecord> {
    #[inline]
    fn accept(&mut self, record: StoredRecord) {
        self.push(record);
    }
}

/// A sink that keeps an incremental FNV-1a digest of the record stream
/// instead of the records themselves. Zero retained storage, zero
/// allocation per record.
///
/// # Examples
///
/// ```
/// use des::clock::ClockModel;
/// use des::time::{SimDuration, SimTime};
/// use hybridmon::MonEvent;
/// use zm4::{DetectedEvent, DigestSink, EventRecorder};
///
/// let clock = ClockModel::synchronized(SimDuration::from_nanos(100));
/// let mut rec =
///     EventRecorder::with_sink(clock, 4, SimDuration::from_micros(100), DigestSink::new());
/// rec.record(DetectedEvent {
///     time: SimTime::from_nanos(1_234),
///     channel: 0,
///     event: MonEvent::new(1, 2),
/// });
/// let (sink, stats) = rec.finish();
/// assert_eq!(sink.records(), 1);
/// assert_eq!(stats.recorded, 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DigestSink {
    hash: Fnv64,
    records: u64,
}

impl DigestSink {
    /// An empty digest sink.
    pub const fn new() -> Self {
        DigestSink {
            hash: Fnv64::new(),
            records: 0,
        }
    }

    /// The FNV-1a digest of every record accepted so far.
    pub const fn digest(&self) -> u64 {
        self.hash.finish()
    }

    /// Number of records accepted.
    pub const fn records(&self) -> u64 {
        self.records
    }
}

impl RecordSink for DigestSink {
    #[inline]
    fn accept(&mut self, record: StoredRecord) {
        self.hash.write_u64(record.local_ts);
        self.hash.write_u64(record.channel as u64);
        self.hash.write_u64(record.event.raw48());
        self.hash.write_u64(record.true_time.as_nanos());
        self.records += 1;
    }
}

/// FIFO slots preallocated at construction. Real occupancies stay far
/// below the 32K hardware capacity (that headroom is the paper's sizing
/// argument), so preallocating the full capacity would waste megabytes
/// per recorder; this slab covers every burst the simulated workloads
/// produce without a single resize, and pathological overloads merely
/// fall back to growth.
const FIFO_SLAB: usize = 1024;

/// One event recorder with its clock, FIFO and disk drain.
///
/// Generic over the [`RecordSink`] receiving drained records; the
/// default sink retains the full local trace in a `Vec`, matching the
/// real recorder's disk file.
///
/// # Examples
///
/// ```
/// use des::clock::ClockModel;
/// use des::time::{SimDuration, SimTime};
/// use hybridmon::MonEvent;
/// use zm4::{DetectedEvent, EventRecorder};
///
/// let clock = ClockModel::synchronized(SimDuration::from_nanos(100));
/// let mut rec = EventRecorder::new(clock, 4, SimDuration::from_micros(100));
/// rec.record(DetectedEvent {
///     time: SimTime::from_nanos(1_234),
///     channel: 0,
///     event: MonEvent::new(1, 2),
/// });
/// let (stored, stats) = rec.finish();
/// assert_eq!(stored.len(), 1);
/// assert_eq!(stored[0].local_ts, 1_200); // quantized to 100 ns
/// assert_eq!(stats.lost, 0);
/// ```
#[derive(Debug)]
pub struct EventRecorder<S: RecordSink = Vec<StoredRecord>> {
    clock: ClockModel,
    capacity: usize,
    service: des::time::SimDuration,
    /// Records in the FIFO with their scheduled departure times.
    fifo: VecDeque<(StoredRecord, SimTime)>,
    last_departure: SimTime,
    stored: S,
    stats: RecorderStats,
}

impl EventRecorder {
    /// Creates a recorder draining to a `Vec<StoredRecord>`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `service` is zero.
    pub fn new(clock: ClockModel, capacity: usize, service: des::time::SimDuration) -> Self {
        EventRecorder::with_sink(clock, capacity, service, Vec::new())
    }
}

impl<S: RecordSink> EventRecorder<S> {
    /// Creates a recorder draining to `sink`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `service` is zero.
    pub fn with_sink(
        clock: ClockModel,
        capacity: usize,
        service: des::time::SimDuration,
        sink: S,
    ) -> Self {
        assert!(capacity > 0, "FIFO capacity must be nonzero");
        assert!(!service.is_zero(), "drain service time must be nonzero");
        EventRecorder {
            clock,
            capacity,
            service,
            fifo: VecDeque::with_capacity(capacity.min(FIFO_SLAB)),
            last_departure: SimTime::ZERO,
            stored: sink,
            stats: RecorderStats::default(),
        }
    }

    /// The recorder's clock model.
    pub fn clock(&self) -> &ClockModel {
        &self.clock
    }

    /// Records one detected event arriving at its true time.
    ///
    /// Events must arrive in non-decreasing true-time order.
    #[inline]
    pub fn record(&mut self, ev: DetectedEvent) {
        self.drain_until(ev.time);
        if self.fifo.len() >= self.capacity {
            self.stats.lost += 1;
            return;
        }
        let record = StoredRecord {
            local_ts: self.clock.stamp(ev.time),
            channel: ev.channel,
            event: ev.event,
            true_time: ev.time,
        };
        let departure = ev.time.max(self.last_departure) + self.service;
        self.last_departure = departure;
        self.fifo.push_back((record, departure));
        self.stats.recorded += 1;
        self.stats.max_fifo_occupancy = self.stats.max_fifo_occupancy.max(self.fifo.len());
    }

    /// Current FIFO occupancy.
    pub fn fifo_occupancy(&self) -> usize {
        self.fifo.len()
    }

    /// Moves every record whose departure time has passed to disk.
    #[inline]
    fn drain_until(&mut self, now: SimTime) {
        while let Some(&(_, dep)) = self.fifo.front() {
            if dep <= now {
                let (rec, _) = self.fifo.pop_front().expect("checked front");
                self.stored.accept(rec);
            } else {
                break;
            }
        }
    }

    /// Ends the measurement: drains the remaining FIFO contents to disk
    /// and returns the sink plus statistics.
    pub fn finish(mut self) -> (S, RecorderStats) {
        while let Some((rec, _)) = self.fifo.pop_front() {
            self.stored.accept(rec);
        }
        (self.stored, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::time::SimDuration;
    use hybridmon::MonEvent;
    use proptest::prelude::*;

    fn sync_clock() -> ClockModel {
        ClockModel::synchronized(SimDuration::from_nanos(100))
    }

    fn ev(ns: u64, token: u16) -> DetectedEvent {
        DetectedEvent {
            time: SimTime::from_nanos(ns),
            channel: 0,
            event: MonEvent::new(token, 0),
        }
    }

    #[test]
    fn slow_stream_never_loses() {
        // 10k ev/s drain; events every 1 ms are comfortably sustained.
        let mut rec = EventRecorder::new(sync_clock(), 8, SimDuration::from_micros(100));
        for i in 0..1000u64 {
            rec.record(ev(i * 1_000_000, i as u16));
        }
        let (stored, stats) = rec.finish();
        assert_eq!(stored.len(), 1000);
        assert_eq!(stats.lost, 0);
        assert!(
            stats.max_fifo_occupancy <= 1,
            "steady stream should not queue"
        );
    }

    #[test]
    fn burst_within_fifo_capacity_survives() {
        // Burst of `cap` events in 1 us (10M ev/s-ish): FIFO absorbs it.
        let cap = 1000;
        let mut rec = EventRecorder::new(sync_clock(), cap, SimDuration::from_micros(100));
        for i in 0..cap as u64 {
            rec.record(ev(1_000 + i, i as u16));
        }
        let (stored, stats) = rec.finish();
        assert_eq!(stored.len(), cap);
        assert_eq!(stats.lost, 0);
        assert_eq!(stats.max_fifo_occupancy, cap);
    }

    #[test]
    fn burst_beyond_capacity_loses_excess() {
        let cap = 100;
        let mut rec = EventRecorder::new(sync_clock(), cap, SimDuration::from_micros(100));
        for i in 0..(cap as u64 + 50) {
            rec.record(ev(1_000 + i, i as u16));
        }
        let (_, stats) = rec.finish();
        assert_eq!(stats.recorded, cap as u64);
        assert_eq!(stats.lost, 50);
    }

    #[test]
    fn fifo_drains_between_bursts() {
        let cap = 10;
        let mut rec = EventRecorder::new(sync_clock(), cap, SimDuration::from_micros(100));
        // First burst fills the FIFO.
        for i in 0..cap as u64 {
            rec.record(ev(1_000 + i, 0));
        }
        assert_eq!(rec.fifo_occupancy(), cap);
        // 2 ms later everything has drained (10 records x 100 us = 1 ms).
        rec.record(ev(2_001_000, 1));
        assert_eq!(rec.fifo_occupancy(), 1);
        let (stored, stats) = rec.finish();
        assert_eq!(stored.len(), cap + 1);
        assert_eq!(stats.lost, 0);
    }

    #[test]
    fn stamps_quantize_and_skew() {
        let skewed = ClockModel::free_running(1_000, 0.0, SimDuration::from_nanos(100));
        let mut rec = EventRecorder::new(skewed, 4, SimDuration::from_micros(100));
        rec.record(ev(5_030, 7));
        let (stored, _) = rec.finish();
        // 5030 + 1000 offset = 6030 -> quantized 6000.
        assert_eq!(stored[0].local_ts, 6_000);
        assert_eq!(stored[0].true_time, SimTime::from_nanos(5_030));
    }

    #[test]
    fn digest_sink_matches_vec_sink() {
        // Same stream through both sinks: the digest sink must see
        // exactly the records the vec sink retains, in the same order.
        let feed = |rec: &mut EventRecorder<DigestSink>| {
            for i in 0..500u64 {
                rec.record(ev(1_000 + i * 50_000, i as u16));
            }
        };
        let mut digesting = EventRecorder::with_sink(
            sync_clock(),
            64,
            SimDuration::from_micros(100),
            DigestSink::new(),
        );
        feed(&mut digesting);
        let (sink, dstats) = digesting.finish();

        let mut retaining = EventRecorder::new(sync_clock(), 64, SimDuration::from_micros(100));
        for i in 0..500u64 {
            retaining.record(ev(1_000 + i * 50_000, i as u16));
        }
        let (stored, vstats) = retaining.finish();
        assert_eq!(dstats, vstats);
        assert_eq!(sink.records(), stored.len() as u64);

        let mut expected = DigestSink::new();
        for r in stored {
            expected.accept(r);
        }
        assert_eq!(sink.digest(), expected.digest());
    }

    #[test]
    fn display_impls_render_without_panicking() {
        let r = StoredRecord {
            local_ts: 1_200,
            channel: 3,
            event: MonEvent::new(0x42, 7),
            true_time: SimTime::from_nanos(1_234),
        };
        assert_eq!(r.to_string(), "1200 ch3 token=0x0042 param=0x00000007");
        let s = RecorderStats {
            recorded: 10,
            lost: 2,
            max_fifo_occupancy: 4,
        };
        assert_eq!(s.to_string(), "recorded=10 lost=2 max_fifo=4");
    }

    proptest! {
        /// Conservation: recorded + lost equals offered, and stored
        /// records preserve arrival order.
        #[test]
        fn conservation_and_order(gaps in proptest::collection::vec(0u64..200_000, 1..300)) {
            let mut rec = EventRecorder::new(sync_clock(), 64, SimDuration::from_micros(100));
            let mut t = 0u64;
            for (i, g) in gaps.iter().enumerate() {
                t += g;
                rec.record(ev(t, i as u16));
            }
            let offered = gaps.len() as u64;
            let (stored, stats) = rec.finish();
            prop_assert_eq!(stats.recorded + stats.lost, offered);
            prop_assert_eq!(stored.len() as u64, stats.recorded);
            prop_assert!(stored.windows(2).all(|w| w[0].true_time <= w[1].true_time));
            prop_assert!(stored.windows(2).all(|w| w[0].local_ts <= w[1].local_ts));
        }
    }
}
