//! Sharding the monitor plane: partitioning one ZM4 measurement across
//! independent observer shards.
//!
//! The real ZM4 is parallel by construction — every DPU decodes and
//! records its own channels; only the CEC merge is global. This module
//! exposes that structure to the simulation: [`Zm4::shard_observers`]
//! splits the monitor into [`ObserverShard`]s, each owning a contiguous
//! range of event recorders together with the per-channel detectors
//! wired to them. Shards consume disjoint channel subsets and never
//! share state, so they can run on separate threads;
//! [`Zm4::assemble`] reunites the finished shards into the exact
//! [`Measurement`] the sequential [`Zm4::observe_iter`] path produces.
//!
//! Bit-identity rests on three properties of the sequential pipeline:
//!
//! 1. detection is per-channel ([`EventDetector::feed`] holds no
//!    cross-channel state);
//! 2. recording is per-recorder, and [`Dpu::record`] sorts its queue by
//!    `(time, channel)` before the FIFO model runs — cross-channel
//!    interleaving of `queue_event` calls is immaterial;
//! 3. the CEC merge sorts globally by `(ts, channel, token)` with ties
//!    keeping recorder order, and recorder indices here are *global*
//!    (the shard knows its offset), as are the `DetRng` streams keyed by
//!    those indices.
//!
//! Shard boundaries are snapped to recorder boundaries so every
//! recorder — and hence every channel — belongs to exactly one shard.

use std::ops::Range;

use des::rng::DetRng;

use crate::cec::merge_traces;
use crate::detector::{EventDetector, ProbeSample};
use crate::dpu::Dpu;
use crate::measurement::Measurement;
use crate::Zm4;

/// One independent slice of the monitor: the detectors and recorders for
/// a contiguous channel range. Created by [`Zm4::shard_observers`]; fed
/// probe samples via [`ObserverShard::feed`]; turned back into a global
/// [`Measurement`] by [`Zm4::assemble`].
#[derive(Debug)]
pub struct ObserverShard {
    /// Global channel range this shard serves.
    channels: Range<usize>,
    /// Global recorder range this shard serves.
    recorders: Range<usize>,
    streams_per_recorder: usize,
    /// Detectors, indexed by `channel - channels.start`.
    detectors: Vec<EventDetector>,
    /// DPUs, indexed by `recorder - recorders.start`.
    dpus: Vec<Dpu>,
}

impl ObserverShard {
    /// The global channel range this shard serves.
    pub fn channels(&self) -> Range<usize> {
        self.channels.clone()
    }

    /// The global recorder range this shard serves.
    pub fn recorders(&self) -> Range<usize> {
        self.recorders.clone()
    }

    /// Whether `channel` is wired to this shard.
    pub fn serves(&self, channel: usize) -> bool {
        self.channels.contains(&channel)
    }

    /// Feeds one probed pattern through this shard's detector for its
    /// channel, queueing any completed event on the owning DPU. Each
    /// channel's samples must arrive in non-decreasing time order, same
    /// as [`Zm4::observe_iter`].
    ///
    /// # Panics
    ///
    /// Panics if the sample's channel belongs to another shard.
    #[inline]
    pub fn feed(&mut self, sample: ProbeSample) {
        assert!(
            self.serves(sample.channel),
            "channel {} is outside shard range {:?}",
            sample.channel,
            self.channels
        );
        let det = &mut self.detectors[sample.channel - self.channels.start];
        if let Some(event) = det.feed(sample) {
            let recorder = sample.channel / self.streams_per_recorder;
            self.dpus[recorder - self.recorders.start].queue_event(event);
        }
    }
}

impl Zm4 {
    /// Partitions the monitor into at most `num_shards` independent
    /// observer shards, boundaries snapped to event-recorder boundaries
    /// (a recorder's channels always land in the same shard). Fewer
    /// shards are returned when there are fewer recorders than
    /// requested; the shards partition all channels in order.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero.
    pub fn shard_observers(&self, num_shards: usize) -> Vec<ObserverShard> {
        assert!(num_shards > 0, "monitor plane needs at least one shard");
        let n_rec = self.recorders();
        let spr = self.config().streams_per_recorder;
        let shards = num_shards.min(n_rec);
        // Each shard rebuilds the root stream locally: Dpu clocks depend
        // only on (seed, global recorder index), so the draws match the
        // sequential path exactly.
        let rng = DetRng::new(self.config().seed);
        (0..shards)
            .map(|i| {
                let rec_lo = i * n_rec / shards;
                let rec_hi = (i + 1) * n_rec / shards;
                let ch_lo = rec_lo * spr;
                let ch_hi = (rec_hi * spr).min(self.channels());
                ObserverShard {
                    channels: ch_lo..ch_hi,
                    recorders: rec_lo..rec_hi,
                    streams_per_recorder: spr,
                    detectors: (ch_lo..ch_hi)
                        .map(|ch| EventDetector::new(ch, self.config().detector_latency))
                        .collect(),
                    dpus: (rec_lo..rec_hi)
                        .map(|r| Dpu::new(r, self.config(), &rng))
                        .collect(),
                }
            })
            .collect()
    }

    /// Reunites finished shards into the global [`Measurement`]: per
    /// recorder, the DPU runs its FIFO/drain model; the CEC then merges
    /// the local traces on the globally valid timestamps. The result is
    /// bit-identical to [`Zm4::observe_iter`] over the union of the
    /// shards' sample streams.
    ///
    /// Shards may be passed in any order (they are re-sorted by channel
    /// range), but must be exactly the set produced by one
    /// [`Zm4::shard_observers`] call on an identically configured
    /// monitor.
    ///
    /// # Panics
    ///
    /// Panics if the shards do not partition this monitor's channels.
    pub fn assemble(&self, mut shards: Vec<ObserverShard>) -> Measurement {
        shards.sort_by_key(|s| s.channels.start);
        let mut next_ch = 0;
        let mut next_rec = 0;
        for s in &shards {
            assert!(
                s.channels.start == next_ch && s.recorders.start == next_rec,
                "shard range {:?} does not continue the partition at channel {next_ch}",
                s.channels
            );
            next_ch = s.channels.end;
            next_rec = s.recorders.end;
        }
        assert!(
            next_ch == self.channels() && next_rec == self.recorders(),
            "shard partition covers {next_ch} of {} channels",
            self.channels()
        );

        let n_rec = self.recorders();
        let mut detector_stats = Vec::with_capacity(self.channels());
        let mut local_traces = Vec::with_capacity(n_rec);
        let mut recorder_stats = Vec::with_capacity(n_rec);
        for shard in shards {
            detector_stats.extend(shard.detectors.into_iter().map(|d| d.into_stats()));
            for dpu in shard.dpus {
                let (stored, stats) = dpu.record();
                local_traces.push(stored);
                recorder_stats.push(stats);
            }
        }

        let trace = merge_traces(&local_traces);
        Measurement {
            trace,
            recorder_stats,
            detector_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Zm4Config;
    use des::time::SimTime;
    use hybridmon::encode::encode;
    use hybridmon::MonEvent;

    /// An interleaved multi-channel sample stream: each channel carries
    /// its own event sequence, patterns spaced so channels overlap in
    /// time (the realistic shape of a simulation's signal log).
    fn workload(channels: usize, events_per_channel: usize) -> Vec<ProbeSample> {
        let mut samples = Vec::new();
        for ch in 0..channels {
            let mut t = 1_000 + (ch as u64) * 137;
            for k in 0..events_per_channel {
                let ev = MonEvent::new((ch * 100 + k) as u16 & 0xFF, k as u32 & 0xFF);
                for p in encode(ev) {
                    samples.push(ProbeSample {
                        time: SimTime::from_nanos(t),
                        channel: ch,
                        pattern: p,
                    });
                    t += 3_400 + (ch as u64 % 5) * 17;
                }
            }
        }
        // Interleave channels by time, keeping per-channel order.
        samples.sort_by_key(|s| s.time);
        samples
    }

    fn feed_sharded(zm4: &Zm4, num_shards: usize, samples: &[ProbeSample]) -> Measurement {
        let mut shards = zm4.shard_observers(num_shards);
        for &s in samples {
            let shard = shards
                .iter_mut()
                .find(|sh| sh.serves(s.channel))
                .expect("every channel belongs to a shard");
            shard.feed(s);
        }
        zm4.assemble(shards)
    }

    fn assert_measurements_identical(a: &Measurement, b: &Measurement) {
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.recorder_stats, b.recorder_stats);
        assert_eq!(a.detector_stats, b.detector_stats);
    }

    #[test]
    fn partition_snaps_to_recorder_boundaries() {
        let zm4 = Zm4::new(Zm4Config::default(), 10, 1); // 3 recorders (4 ch each)
        for n in 1..=8 {
            let shards = zm4.shard_observers(n);
            assert!(shards.len() <= n.min(zm4.recorders()));
            let mut next = 0;
            for s in &shards {
                assert_eq!(s.channels().start, next);
                assert_eq!(s.channels().start % 4, 0, "not on a recorder boundary");
                next = s.channels().end;
            }
            assert_eq!(next, 10);
        }
    }

    #[test]
    fn sharded_observation_matches_sequential_bit_for_bit() {
        let samples = workload(10, 6);
        for seed in [1, 77] {
            let zm4 = Zm4::new(Zm4Config::default(), 10, seed);
            let reference = zm4.observe(&samples);
            assert!(!reference.trace.is_empty());
            for shards in 1..=5 {
                let m = feed_sharded(&zm4, shards, &samples);
                assert_measurements_identical(&m, &reference);
            }
        }
    }

    #[test]
    fn sharded_matches_even_with_free_running_clocks() {
        // The skew draws are keyed by global recorder index, so the
        // ablation's random clocks must survive sharding too.
        let cfg = Zm4Config {
            mtg_synchronized: false,
            ..Zm4Config::default()
        };
        let samples = workload(8, 4);
        let zm4 = Zm4::new(cfg, 8, 42);
        let reference = zm4.observe(&samples);
        for shards in [1, 2, 4] {
            let m = feed_sharded(&zm4, shards, &samples);
            assert_measurements_identical(&m, &reference);
        }
    }

    #[test]
    fn sharded_matches_under_fifo_overflow() {
        // A burst dense enough to overflow the FIFO model: loss accounting
        // is per recorder and must be unaffected by sharding.
        let cfg = Zm4Config {
            fifo_capacity: 4,
            ..Zm4Config::default()
        };
        let samples = workload(8, 32);
        let zm4 = Zm4::new(cfg, 8, 9);
        let reference = zm4.observe(&samples);
        assert!(reference.total_lost() > 0, "workload must overflow");
        for shards in [2, 3] {
            let m = feed_sharded(&zm4, shards, &samples);
            assert_measurements_identical(&m, &reference);
        }
    }

    #[test]
    fn assemble_accepts_shards_in_any_order() {
        let samples = workload(8, 3);
        let zm4 = Zm4::new(Zm4Config::default(), 8, 5);
        let reference = zm4.observe(&samples);
        let mut shards = zm4.shard_observers(2);
        for &s in &samples {
            let shard = shards.iter_mut().find(|sh| sh.serves(s.channel)).unwrap();
            shard.feed(s);
        }
        shards.reverse();
        assert_measurements_identical(&zm4.assemble(shards), &reference);
    }

    #[test]
    #[should_panic(expected = "outside shard range")]
    fn feeding_a_foreign_channel_panics() {
        let zm4 = Zm4::new(Zm4Config::default(), 8, 1);
        let mut shards = zm4.shard_observers(2);
        let foreign = shards[1].channels().start;
        shards[0].feed(ProbeSample {
            time: SimTime::ZERO,
            channel: foreign,
            pattern: hybridmon::Pattern::new(0).unwrap(),
        });
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn assembling_an_incomplete_partition_panics() {
        let zm4 = Zm4::new(Zm4Config::default(), 8, 1);
        let mut shards = zm4.shard_observers(2);
        shards.pop();
        let _ = zm4.assemble(shards);
    }
}
