//! The control and evaluation computer: merging local traces.
//!
//! After a measurement, each monitor agent ships its recorders' local
//! traces over the data channel (Ethernet/TCP-IP on the real system) to
//! the CEC, which merges them into **one global trace by sorting on the
//! globally valid timestamps**. With the MTG in place this order equals
//! true causal order; with free-running clocks it visibly is not — which
//! is the measurable argument for the global clock.

use crate::measurement::TraceRecord;
use crate::recorder::StoredRecord;

/// Merges per-recorder local traces into the global trace, ordered by
/// local (claimed-global) timestamp. Ties are broken by channel to keep
/// the merge deterministic.
///
/// # Examples
///
/// ```
/// use des::time::SimTime;
/// use hybridmon::MonEvent;
/// use zm4::{merge_traces, StoredRecord};
///
/// let rec0 = vec![StoredRecord {
///     local_ts: 2_000,
///     channel: 0,
///     event: MonEvent::new(1, 0),
///     true_time: SimTime::from_nanos(2_000),
/// }];
/// let rec1 = vec![StoredRecord {
///     local_ts: 1_000,
///     channel: 1,
///     event: MonEvent::new(2, 0),
///     true_time: SimTime::from_nanos(1_000),
/// }];
/// let merged = merge_traces(&[rec0, rec1]);
/// assert_eq!(merged[0].event.token.value(), 2);
/// ```
pub fn merge_traces(local_traces: &[Vec<StoredRecord>]) -> Vec<TraceRecord> {
    let total: usize = local_traces.iter().map(Vec::len).sum();
    let mut all: Vec<TraceRecord> = Vec::with_capacity(total);
    for (recorder, trace) in local_traces.iter().enumerate() {
        all.extend(trace.iter().map(|r| TraceRecord {
            ts_ns: r.local_ts,
            channel: r.channel,
            recorder,
            event: r.event,
            true_time: r.true_time,
        }));
    }
    // Stable: records tying on (ts, channel, token) keep recorder order.
    all.sort_by_key(|r| (r.ts_ns, r.channel, r.event.token.value()));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::time::SimTime;
    use hybridmon::MonEvent;

    fn rec(ts: u64, channel: usize, token: u16) -> StoredRecord {
        StoredRecord {
            local_ts: ts,
            channel,
            event: MonEvent::new(token, 0),
            true_time: SimTime::from_nanos(ts),
        }
    }

    #[test]
    fn merge_is_globally_sorted() {
        let merged = merge_traces(&[
            vec![rec(10, 0, 1), rec(30, 0, 2)],
            vec![rec(20, 1, 3), rec(40, 1, 4)],
        ]);
        let ts: Vec<u64> = merged.iter().map(|r| r.ts_ns).collect();
        assert_eq!(ts, vec![10, 20, 30, 40]);
        assert_eq!(merged[1].recorder, 1);
    }

    #[test]
    fn merge_of_empty_is_empty() {
        assert!(merge_traces(&[]).is_empty());
        assert!(merge_traces(&[vec![], vec![]]).is_empty());
    }

    #[test]
    fn ties_break_deterministically() {
        let a = merge_traces(&[vec![rec(5, 1, 9)], vec![rec(5, 0, 8)]]);
        let b = merge_traces(&[vec![rec(5, 1, 9)], vec![rec(5, 0, 8)]]);
        assert_eq!(a, b);
        assert_eq!(a[0].channel, 0);
    }
}
