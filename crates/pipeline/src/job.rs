//! Type-erased pipeline runs for heterogeneous sweep queues.
//!
//! A sweep harness wants one job queue mixing ray-tracer and Jacobi
//! runs (and whatever workload comes next) without itself being
//! generic over `W`. A [`Job`] freezes a [`PipelineConfig`] behind a
//! plain closure: the harness sees only the workload id, the seed, the
//! configuration fingerprint, and the workload-agnostic [`JobRun`]
//! each execution yields.

use std::sync::Arc;

use des::time::SimTime;
use simple::Trace;
use suprenum::RunOutcome;

use suprenum::SchedulerKind;

use crate::preflight::{PolicyMode, PreflightDenied, PreflightSummary};
use crate::{
    try_run_workload, FaultConfig, OrderEdge, PipelineConfig, PipelineError, RunMetrics, Workload,
};

/// Per-execution overrides a harness may apply without re-building the
/// job (the CLI's `--horizon-secs` flag, `harness verify`'s
/// `ANALYZER_POLICY` environment override).
#[derive(Debug, Clone, Default)]
pub struct ExecOverrides {
    /// Replaces the configured pre-flight mode (the configured hook is
    /// kept — a mode without a hook analyzes nothing).
    pub policy: Option<PolicyMode>,
    /// Replaces the configured simulated-time budget.
    pub horizon: Option<SimTime>,
    /// Replaces the configured monitor-shard count (the CLI's
    /// `--shards` flag). Sharding is behaviourally invisible, so this
    /// does not perturb the configuration fingerprint.
    pub shards: Option<usize>,
    /// Replaces the configured engine worker-thread count (the CLI's
    /// `--engine-shards` flag). Like monitor sharding, behaviourally
    /// invisible: multi-cluster machines always partition per cluster,
    /// and this only packs the shards onto threads.
    pub engine_shards: Option<usize>,
    /// Replaces the configured kernel scheduling policy (the CLI's
    /// `--scheduler` flag). Unlike sharding this *does* change
    /// behaviour; the effective policy is recorded in
    /// [`JobRun::scheduler`] so artifacts stay honest.
    pub scheduler: Option<SchedulerKind>,
    /// Replaces the configured probe-plane fault injection (the sweep
    /// harness's fuzz dimensions).
    pub faults: Option<FaultConfig>,
}

/// Everything a harness records about one executed job, with the
/// workload type folded away.
#[derive(Debug)]
pub struct JobRun {
    /// How the application run ended.
    pub outcome: RunOutcome,
    /// The merged monitoring trace as SIMPLE events.
    pub trace: Trace,
    /// The workload's folded metrics (work units, utilization).
    pub metrics: RunMetrics,
    /// Fraction of CPU time stolen by instrumentation.
    pub intrusion_ratio: f64,
    /// The workload's proven orderings, for happens-before
    /// verification of `trace`.
    pub orders: Vec<OrderEdge>,
    /// Wall time the pre-flight analysis took, so a harness can report
    /// engine throughput net of the (run-independent) analysis cost.
    pub analysis: std::time::Duration,
    /// What the pre-flight analysis concluded (`None` when the
    /// effective policy was `Off`), so harnesses can record finding
    /// counts per severity next to the measurement.
    pub preflight: Option<PreflightSummary>,
    /// Monitor-shard count the run actually executed with.
    pub shards: usize,
    /// Engine worker-thread count the run actually executed with.
    pub engine_shards: usize,
    /// Kernel scheduling policy the run actually executed under.
    pub scheduler: SchedulerKind,
}

type Exec = dyn Fn(ExecOverrides) -> Result<JobRun, PreflightDenied> + Send + Sync;

/// One configured measurement run with its workload type erased.
///
/// Cloning is cheap (the configuration lives behind an [`Arc`]); each
/// [`Job::run`] executes a fresh simulation from the frozen
/// configuration, so records stay bit-identical run over run.
#[derive(Clone)]
pub struct Job {
    workload_id: &'static str,
    seed: u64,
    fingerprint: u64,
    horizon: Option<SimTime>,
    shards: Option<usize>,
    engine_shards: Option<usize>,
    scheduler: Option<SchedulerKind>,
    faults: Option<FaultConfig>,
    exec: Arc<Exec>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("workload_id", &self.workload_id)
            .field("seed", &self.seed)
            .field("fingerprint", &format_args!("{:016x}", self.fingerprint))
            .field("horizon", &self.horizon)
            .finish_non_exhaustive()
    }
}

impl Job {
    /// Freezes a pipeline configuration into an erased job.
    pub fn new<W: Workload>(cfg: PipelineConfig<W>) -> Job {
        let workload_id = cfg.workload.id();
        let seed = cfg.seed;
        let fingerprint = cfg.fingerprint();
        let exec = Arc::new(move |ov: ExecOverrides| {
            let mut cfg = cfg.clone();
            if let Some(mode) = ov.policy {
                cfg.preflight.mode = mode;
            }
            if let Some(horizon) = ov.horizon {
                cfg.horizon = horizon;
            }
            if let Some(shards) = ov.shards {
                cfg.shards = shards;
            }
            if let Some(engine_shards) = ov.engine_shards {
                cfg.engine_shards = engine_shards;
            }
            if let Some(scheduler) = ov.scheduler {
                cfg.machine.scheduler = scheduler;
            }
            if let Some(faults) = ov.faults {
                cfg.faults = faults;
            }
            let shards = cfg.shards;
            let engine_shards = cfg.engine_shards;
            let scheduler = cfg.machine.scheduler.clone();
            let workload = cfg.workload.clone();
            let result = match try_run_workload(cfg) {
                Ok(result) => result,
                Err(PipelineError::Denied(denied)) => return Err(denied),
                // An invalid configuration is a harness bug, not a
                // measurement outcome — fail loudly, like the
                // un-erased path does.
                Err(e @ PipelineError::Invalid(_)) => panic!("{e}"),
            };
            let metrics = result.metrics(&workload);
            Ok(JobRun {
                outcome: result.outcome,
                trace: result.trace,
                metrics,
                intrusion_ratio: result.intrusion.intrusion_ratio(),
                orders: workload.proven_orders(),
                analysis: result.analysis,
                preflight: result.preflight,
                shards,
                engine_shards,
                scheduler,
            })
        });
        Job {
            workload_id,
            seed,
            fingerprint,
            horizon: None,
            shards: None,
            engine_shards: None,
            scheduler: None,
            faults: None,
            exec,
        }
    }

    /// The workload's stable identifier (e.g. `"raytracer"`).
    pub fn workload_id(&self) -> &'static str {
        self.workload_id
    }

    /// The frozen configuration's determinism seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Hex-encoded configuration fingerprint (see
    /// [`PipelineConfig::fingerprint`]).
    pub fn fingerprint(&self) -> String {
        format!("{:016x}", self.fingerprint)
    }

    /// Caps this job's simulated-time budget for every subsequent
    /// execution (the CLI's `--horizon-secs`).
    pub fn override_horizon(&mut self, horizon: SimTime) {
        self.horizon = Some(horizon);
    }

    /// Sets the monitor-shard count for every subsequent execution (the
    /// CLI's `--shards`). Sharding is behaviourally invisible: traces,
    /// outcomes and digests stay bit-identical to the sequential oracle.
    pub fn override_shards(&mut self, shards: usize) {
        self.shards = Some(shards);
    }

    /// Sets the engine worker-thread count for every subsequent
    /// execution (the CLI's `--engine-shards`). Behaviourally
    /// invisible: a multi-cluster machine always runs one logical
    /// shard per cluster, and this only packs them onto threads.
    pub fn override_engine_shards(&mut self, engine_shards: usize) {
        self.engine_shards = Some(engine_shards);
    }

    /// Replaces the kernel scheduling policy for every subsequent
    /// execution (the CLI's `--scheduler`). This changes scheduling
    /// behaviour, not just packaging — the effective policy is recorded
    /// in [`JobRun::scheduler`] and in schema-4 artifacts, and
    /// `harness compare` refuses to diff across policies.
    pub fn override_scheduler(&mut self, scheduler: SchedulerKind) {
        self.scheduler = Some(scheduler);
    }

    /// Replaces the probe-plane fault injection for every subsequent
    /// execution (the sweep harness's fuzz dimensions). Faults perturb
    /// only the measurement, never the simulated machine.
    pub fn override_faults(&mut self, faults: FaultConfig) {
        self.faults = Some(faults);
    }

    /// Executes the job with an optional pre-flight mode override.
    ///
    /// # Errors
    ///
    /// Returns [`PreflightDenied`] when the effective policy is
    /// [`PolicyMode::Deny`] and the analysis reports errors.
    pub fn run_with_policy(&self, policy: Option<PolicyMode>) -> Result<JobRun, PreflightDenied> {
        (self.exec)(ExecOverrides {
            policy,
            horizon: self.horizon,
            shards: self.shards,
            engine_shards: self.engine_shards,
            scheduler: self.scheduler.clone(),
            faults: self.faults,
        })
    }

    /// Executes the job under its configured policy.
    ///
    /// # Panics
    ///
    /// Panics when a `Deny` pre-flight analysis refuses the run — the
    /// non-panicking path is [`Job::run_with_policy`].
    pub fn run(&self) -> JobRun {
        match self.run_with_policy(None) {
            Ok(run) => run,
            Err(denied) => panic!("{denied}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::JacobiConfig;

    #[test]
    fn erased_job_reports_workload_and_determinism() {
        let cfg = PipelineConfig::new(JacobiConfig {
            workers: 2,
            iterations: 5,
            cells_per_worker: 8,
            ..JacobiConfig::default()
        });
        let job = Job::new(cfg);
        assert_eq!(job.workload_id(), "jacobi");
        assert_eq!(job.fingerprint().len(), 16);
        let a = job.run();
        let b = job.run();
        assert_eq!(a.outcome.end, b.outcome.end);
        assert_eq!(a.trace.len(), b.trace.len());
        assert!(a.metrics.work_units > 0);
    }

    #[test]
    fn shards_override_is_behaviourally_invisible() {
        let cfg = PipelineConfig::new(JacobiConfig {
            workers: 4,
            iterations: 4,
            cells_per_worker: 8,
            ..JacobiConfig::default()
        });
        let job = Job::new(cfg);
        let reference = job.run();
        assert_eq!(reference.shards, 1);
        let mut sharded = job.clone();
        sharded.override_shards(2);
        let run = sharded.run();
        assert_eq!(run.shards, 2);
        assert_eq!(reference.outcome, run.outcome);
        assert_eq!(reference.trace, run.trace);
    }

    #[test]
    fn engine_shards_override_is_behaviourally_invisible() {
        // 18 workers + coordinator → 19 nodes → two clusters, so the
        // parallel engine actually engages.
        let cfg = PipelineConfig::new(JacobiConfig {
            workers: 18,
            iterations: 3,
            cells_per_worker: 8,
            ..JacobiConfig::default()
        });
        let job = Job::new(cfg);
        let reference = job.run();
        assert_eq!(reference.engine_shards, 1);
        let mut threaded = job.clone();
        threaded.override_engine_shards(2);
        let run = threaded.run();
        assert_eq!(run.engine_shards, 2);
        assert_eq!(reference.outcome, run.outcome);
        assert_eq!(reference.trace, run.trace);
    }

    #[test]
    fn scheduler_override_is_recorded_and_changes_behaviour() {
        let cfg = PipelineConfig::new(JacobiConfig {
            workers: 3,
            iterations: 4,
            cells_per_worker: 8,
            ..JacobiConfig::default()
        });
        let job = Job::new(cfg);
        let reference = job.run();
        assert_eq!(reference.scheduler, SchedulerKind::RoundRobin);
        let mut preemptive = job.clone();
        preemptive.override_scheduler(SchedulerKind::Preemptive {
            quantum: des::time::SimDuration::from_micros(50),
        });
        let run = preemptive.run();
        assert_eq!(run.scheduler.name(), "preempt:50");
        // Same workload, same outcome class; the policy only reorders
        // node-local CPU multiplexing.
        assert_eq!(reference.outcome.end, run.outcome.end);
    }

    #[test]
    fn faults_override_perturbs_only_the_measurement() {
        let cfg = PipelineConfig::new(JacobiConfig {
            workers: 3,
            iterations: 4,
            cells_per_worker: 8,
            ..JacobiConfig::default()
        });
        let job = Job::new(cfg);
        let clean = job.run();
        let mut faulty = job.clone();
        faulty.override_faults(FaultConfig {
            probe_drop_permille: 200,
            probe_corrupt_permille: 0,
            clock_drift_ppm: 0,
            seed: 11,
        });
        let run = faulty.run();
        assert_eq!(
            clean.outcome, run.outcome,
            "faults must not touch the machine"
        );
        assert!(run.trace.len() < clean.trace.len(), "drops thin the trace");
    }

    #[test]
    fn horizon_override_truncates() {
        let cfg = PipelineConfig::new(JacobiConfig::default());
        let mut job = Job::new(cfg);
        job.override_horizon(SimTime::from_micros(10));
        let run = job.run();
        assert!(run.outcome.truncated());
    }
}
