//! Workload-agnostic measurement pipeline: machine + monitor + trace.
//!
//! The paper's monitoring toolkit (hybrid instrumentation → ZM4 →
//! SIMPLE evaluation) is explicitly *application-independent* — the
//! same probes, recorders, and evaluation revealed the ray tracer's
//! master/servant cycles and would reveal any other instrumented
//! program's structure just as well. This crate makes that independence
//! structural instead of aspirational:
//!
//! * a [`Workload`] is any program that can spawn its root processes
//!   onto a [`suprenum::Machine`], declare its instrumentation (token
//!   map, monitored channels, proven event orderings), and fold its
//!   application-level output back out of the run;
//! * [`run_workload`] owns everything that is *not* the application:
//!   the pre-flight analysis seam, machine sizing and validation, the
//!   zero-copy ZM4 `observe_iter` probe stream, SIMPLE trace
//!   conversion, truncation handling, and intrusion accounting;
//! * [`Job`] erases the workload type so a sweep harness can mix
//!   ray-tracer and Jacobi runs (or anything else) in one queue without
//!   being generic itself.
//!
//! The ray tracer (`raysim`) and the SPMD Jacobi solver
//! ([`jacobi`]) are the two stock workloads; `crates/pipeline/README.md`
//! is the guide for writing a third.
//!
//! # Examples
//!
//! Run the bundled Jacobi workload through the full monitor stack:
//!
//! ```
//! use pipeline::jacobi::JacobiConfig;
//! use pipeline::{run_workload, PipelineConfig};
//!
//! let cfg = PipelineConfig::new(JacobiConfig {
//!     workers: 3,
//!     iterations: 8,
//!     ..JacobiConfig::default()
//! });
//! let result = run_workload(cfg);
//! assert!(result.completed());
//! assert_eq!(result.output.max_error, 0.0);
//! assert!(!result.trace.is_empty());
//! ```

use des::time::SimTime;
use hybridmon::IntrusionReport;
use simple::Trace;
use suprenum::{Machine, MachineConfig, RunEnd, RunOutcome};
use zm4::{Measurement, Zm4Config};

pub mod fault;
pub mod jacobi;
pub mod job;
pub mod order;
pub mod preflight;
pub mod trace;

pub use fault::FaultConfig;
pub use job::{ExecOverrides, Job, JobRun};
pub use order::{dominant_scope, OrderEdge, OrderScope};
pub use preflight::{
    try_preflight, PolicyMode, Preflight, PreflightDenied, PreflightHook, PreflightSummary,
};
pub use trace::{probe_samples, to_simple_trace};

/// One declared instrumentation point: the raw `(token, activity name,
/// group)` triple a workload registers with the monitor. The analyzer's
/// token lints run over these declarations before any event exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenDecl {
    /// The 16-bit token id (application range: below the kernel base).
    pub token: u16,
    /// Activity name shown on Gantt tracks; names ending in `" End"`
    /// close the activity of the same base name.
    pub name: &'static str,
    /// The role that owns the point (e.g. `Master`, `Worker`).
    pub group: &'static str,
}

impl TokenDecl {
    /// Creates a declaration.
    pub const fn new(token: u16, name: &'static str, group: &'static str) -> Self {
        TokenDecl { token, name, group }
    }
}

/// The workload-agnostic per-run metrics a workload folds out of its
/// trace and output, recorded alongside the pipeline-level statistics
/// in sweep artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunMetrics {
    /// Work units the application completed (jobs sent, strips
    /// relaxed, …) — the workload defines the unit.
    pub work_units: u64,
    /// Mean worker utilization over the productive phase, percent.
    /// `None` when the run truncated or the workload has no notion of
    /// utilization.
    pub utilization_percent: Option<f64>,
    /// Mean worker utilization over the steady (pipeline-full) phase,
    /// where the workload distinguishes one.
    pub steady_percent: Option<f64>,
}

/// A deferred fold from the finished machine back into the workload's
/// output (rendered image, assembled solution, counters). Returned by
/// [`Workload::launch`] and invoked by [`run_workload`] after the
/// machine halts, so the closure may capture the `Rc` handles it shared
/// with its processes.
pub type Harvest<T> = Box<dyn FnOnce(&Machine) -> T>;

/// An instrumented program the measurement pipeline can run.
///
/// A workload owns everything application-specific — process bodies,
/// instrumentation tokens, numerics — and nothing else: machine
/// construction, monitoring, trace evaluation, and artifact recording
/// belong to the pipeline. See `crates/pipeline/README.md` for the
/// step-by-step guide to writing one.
pub trait Workload: std::fmt::Debug + Clone + Send + Sync + 'static {
    /// What the workload folds out of the shared state after the run
    /// (image + counters, solution vector, …).
    type Output;

    /// Stable identifier recorded in `RunRecord`s and sweep artifacts
    /// (e.g. `"raytracer"`, `"jacobi"`).
    fn id(&self) -> &'static str;

    /// Validates the configuration before anything is built.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem.
    fn validate(&self) -> Result<(), String>;

    /// Minimum number of nodes the workload needs (root process plus
    /// workers). [`PipelineConfig::new`] sizes the machine from this.
    fn nodes_required(&self) -> u32;

    /// Number of monitored display channels. Defaults to one channel
    /// per node — the paper's wiring — but a workload monitoring a
    /// subset may narrow it (the ZM4 is built with exactly this count).
    fn channels(&self, machine: &Machine) -> usize {
        machine.topology().total_nodes() as usize
    }

    /// The declared instrumentation point map, for the analyzer's
    /// `AN-TOKEN-*` lints.
    fn token_map(&self) -> Vec<TokenDecl>;

    /// Cross-event orderings every legal execution must respect,
    /// checked against recorded traces by the happens-before engine.
    /// Defaults to none (verification then degenerates to a no-op).
    fn proven_orders(&self) -> Vec<OrderEdge> {
        Vec::new()
    }

    /// Whether the run should switch on the kernel's own
    /// instrumentation (dispatch/block/preempt events through the same
    /// display path as the application) — the paper's stated future
    /// work, and the signal `harness verify` reconciles scheduler
    /// verdicts against. Defaults to `false`; a workload that opts in
    /// gets `kernel_instrumentation` forced on regardless of the
    /// machine configuration (kernel events still require hybrid
    /// monitoring to actually reach the displays — the analyzer's
    /// workload hook warns when the two disagree).
    fn wants_kernel_events(&self) -> bool {
        false
    }

    /// Installs the workload's root process(es) on the machine and
    /// returns the harvest that folds the shared state into
    /// [`Workload::Output`] once the machine has halted.
    fn launch(&self, machine: &mut Machine) -> Harvest<Self::Output>;

    /// Folds workload-level metrics out of the finished run. The
    /// default reports zero work units and no utilization.
    fn metrics(&self, trace: &Trace, truncated: bool, output: &Self::Output) -> RunMetrics {
        let _ = (trace, truncated, output);
        RunMetrics::default()
    }
}

/// Full configuration of one measurement run of workload `W`.
#[derive(Clone)]
pub struct PipelineConfig<W: Workload> {
    /// The application under measurement.
    pub workload: W,
    /// The machine (nodes, buses, scheduler, monitoring mode).
    pub machine: MachineConfig,
    /// The monitor (FIFO, clocks, MTG).
    pub zm4: Zm4Config,
    /// Determinism seed for machine and monitor.
    pub seed: u64,
    /// Simulated-time budget.
    pub horizon: SimTime,
    /// Pre-flight static analysis policy.
    pub preflight: Preflight<W>,
    /// Probe-plane fault injection (drop/corrupt/clock-drift). The
    /// default injects nothing; a non-trivial configuration perturbs
    /// only the monitor's view of the run, never the machine itself,
    /// and is deterministic per fault seed.
    pub faults: FaultConfig,
    /// Monitor-plane shards. `1` (the default) runs the fully inline
    /// sequential pipeline — the differential oracle. `2..` defers
    /// display materialization in the kernel and fans the emission
    /// stream out to that many observer shards on worker threads,
    /// overlapped with the simulation via watermarked release windows.
    /// The measurement is bit-identical for every shard count (the
    /// shard count is capped at the monitor's recorder count).
    pub shards: usize,
    /// Engine worker threads for multi-cluster machines. A
    /// multi-cluster kernel always partitions its state per cluster and
    /// runs conservative parallel discrete-event simulation over the
    /// torus ring; this knob only controls how many worker threads the
    /// cluster shards are packed onto. `1` (the default) executes the
    /// shards on the calling thread. Trace digests are bit-identical
    /// for every value — the schedule is deterministic by construction.
    /// Single-cluster machines ignore it and stay on the sequential
    /// event loop.
    pub engine_shards: usize,
}

impl<W: Workload> std::fmt::Debug for PipelineConfig<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineConfig")
            .field("workload", &self.workload)
            .field("machine", &self.machine)
            .field("zm4", &self.zm4)
            .field("seed", &self.seed)
            .field("horizon", &self.horizon)
            .field("preflight", &self.preflight)
            .field("faults", &self.faults)
            .field("shards", &self.shards)
            .field("engine_shards", &self.engine_shards)
            .finish()
    }
}

/// The machine-sizing policy every workload gets: one cluster of
/// `nodes` (the paper's setup) when they fit, or the minimum number of
/// 16-node clusters otherwise.
pub fn machine_for(nodes: u32) -> MachineConfig {
    if nodes <= 16 {
        MachineConfig::single_cluster(nodes as u8)
    } else {
        let clusters = nodes.div_ceil(16) as u8;
        MachineConfig {
            clusters,
            torus_cols: 1,
            ..MachineConfig::single_cluster(16)
        }
    }
}

impl<W: Workload> PipelineConfig<W> {
    /// A run configuration with a machine sized for the workload (see
    /// [`machine_for`]), the default monitor, the standard seed, and a
    /// one-simulated-hour horizon.
    ///
    /// # Panics
    ///
    /// Panics if the workload configuration is invalid.
    pub fn new(workload: W) -> Self {
        workload.validate().expect("invalid workload configuration");
        let machine = machine_for(workload.nodes_required());
        PipelineConfig {
            workload,
            machine,
            zm4: Zm4Config::default(),
            seed: 1992,
            horizon: SimTime::from_secs(3_600),
            preflight: Preflight::off(),
            faults: FaultConfig::default(),
            shards: 1,
            engine_shards: 1,
        }
    }

    /// FNV-1a fingerprint of the configuration (workload + machine +
    /// monitor + seed + horizon + any active fault injection), for
    /// artifact provenance. The pre-flight policy is excluded: it
    /// carries function pointers whose addresses vary between builds,
    /// and it does not change the measured behaviour under
    /// `Off`/`Warn`. The monitor and engine shard counts are also
    /// excluded: every shard count produces a bit-identical
    /// measurement, so runs at different counts are comparable by
    /// construction. A no-op fault configuration is excluded too, so
    /// fingerprints of un-faulted runs are stable across versions that
    /// predate the fault layer.
    pub fn fingerprint(&self) -> u64 {
        let mut h = des::digest::Fnv64::new();
        h.write_bytes(self.workload.id().as_bytes());
        h.write_bytes(format!("{:?}", self.workload).as_bytes());
        h.write_bytes(format!("{:?}", self.machine).as_bytes());
        h.write_bytes(format!("{:?}", self.zm4).as_bytes());
        h.write_u64(self.seed);
        h.write_u64(self.horizon.as_nanos());
        if !self.faults.is_noop() {
            h.write_bytes(format!("{:?}", self.faults).as_bytes());
        }
        h.finish()
    }
}

/// Everything a measurement run of workload `W` produced.
#[derive(Debug)]
pub struct PipelineResult<W: Workload> {
    /// Real time spent in pre-flight static analysis, before the
    /// simulation started. Reported separately so wall-clock throughput
    /// comparisons measure the engine, not the analyzer.
    pub analysis: std::time::Duration,
    /// What the pre-flight analysis concluded (`None` when the policy
    /// is `Off` or no hook is configured), so harnesses can record
    /// per-severity finding counts next to the measurement.
    pub preflight: Option<PreflightSummary>,
    /// How the application run ended.
    pub outcome: RunOutcome,
    /// The ZM4 measurement (merged trace + recorder/detector stats).
    pub measurement: Measurement,
    /// The merged trace as SIMPLE events (channel = node index).
    pub trace: Trace,
    /// The workload's folded output (image, solution, counters, …).
    pub output: W::Output,
    /// The machine after the run (ground truth, signals, kernel stats).
    pub machine: Machine,
    /// Monitoring intrusion accounting (copied out of the machine for
    /// convenience).
    pub intrusion: IntrusionReport,
}

impl<W: Workload> PipelineResult<W> {
    /// Returns `true` if the application ran to completion.
    pub fn completed(&self) -> bool {
        self.outcome.reason == RunEnd::Completed
    }

    /// Returns `true` if the run was cut short by the horizon, an event
    /// budget, the operator's job time limit, or a deadlock.
    pub fn truncated(&self) -> bool {
        self.outcome.truncated()
    }

    /// The workload-level metrics of this run.
    pub fn metrics(&self, workload: &W) -> RunMetrics {
        workload.metrics(&self.trace, self.truncated(), &self.output)
    }
}

/// Why [`try_run_workload`] refused to execute a configuration.
#[derive(Debug)]
pub enum PipelineError {
    /// The pre-flight analysis denied the run.
    Denied(PreflightDenied),
    /// The workload or machine configuration is invalid.
    Invalid(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Denied(d) => d.fmt(f),
            PipelineError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<PreflightDenied> for PipelineError {
    fn from(d: PreflightDenied) -> Self {
        PipelineError::Denied(d)
    }
}

/// Runs one full measurement without panicking: pre-flight analysis
/// (per the configured policy), workload and machine validation, the
/// application on the simulated machine, the ZM4 over the display
/// probe stream, and the SIMPLE trace conversion.
///
/// # Errors
///
/// Returns [`PipelineError::Denied`] when a `Deny` pre-flight policy
/// reports errors and [`PipelineError::Invalid`] for configurations
/// that cannot be built.
pub fn try_run_workload<W: Workload>(
    cfg: PipelineConfig<W>,
) -> Result<PipelineResult<W>, PipelineError> {
    if cfg.shards == 0 {
        return Err(PipelineError::Invalid(
            "pipeline needs at least one monitor shard".into(),
        ));
    }
    if cfg.engine_shards == 0 {
        return Err(PipelineError::Invalid(
            "pipeline needs at least one engine shard".into(),
        ));
    }
    if let Err(e) = cfg.faults.validate() {
        return Err(PipelineError::Invalid(format!(
            "invalid fault configuration: {e}"
        )));
    }
    let analysis_start = std::time::Instant::now();
    let preflight = try_preflight(&cfg)?;
    let analysis = analysis_start.elapsed();
    cfg.workload
        .validate()
        .map_err(|e| PipelineError::Invalid(format!("invalid workload configuration: {e}")))?;
    if u32::from(cfg.machine.total_nodes()) < cfg.workload.nodes_required() {
        return Err(PipelineError::Invalid(format!(
            "machine has {} nodes but the workload needs {}",
            cfg.machine.total_nodes(),
            cfg.workload.nodes_required()
        )));
    }

    let mut machine_cfg = cfg.machine.clone();
    if cfg.workload.wants_kernel_events() {
        // The workload asked for the kernel's own instrumentation —
        // promote the per-machine toggle so sweeps don't have to plumb
        // machine configuration per run.
        machine_cfg.kernel_instrumentation = true;
    }
    let sharded = cfg.shards > 1;
    if sharded {
        // The kernel records compact emissions; the observer shards
        // expand them off the critical path. Bit-identical either way.
        machine_cfg.deferred_display = true;
    }
    let mut machine = Machine::new(machine_cfg, cfg.seed)
        .map_err(|e| PipelineError::Invalid(format!("invalid machine configuration: {e:?}")))?;
    machine.set_engine_shards(cfg.engine_shards);

    let harvest = cfg.workload.launch(&mut machine);
    let channels = cfg.workload.channels(&machine);
    let monitor = cfg.zm4.build(channels, cfg.seed);

    let faults = cfg.faults;
    let (outcome, measurement) = if sharded {
        run_sharded(&mut machine, &monitor, cfg.shards, cfg.horizon, faults)
    } else {
        // The sequential oracle: run to completion, then probe the
        // displays in one pass. The signal log is already time-sorted
        // (per channel, because globally), so the sample stream flows
        // through the monitor without a materialized sample vector.
        // Fault injection is per-sample and per-channel monotone, so
        // the faulted stream keeps the same feed-order precondition.
        let outcome = machine.run(cfg.horizon);
        let measurement = monitor
            .observe_iter(trace::probe_sample_iter(&machine).filter_map(move |s| faults.apply(s)));
        (outcome, measurement)
    };
    let trace = to_simple_trace(&measurement);

    let output = harvest(&machine);
    let intrusion = *machine.intrusion();

    Ok(PipelineResult {
        analysis,
        preflight,
        outcome,
        measurement,
        trace,
        output,
        machine,
        intrusion,
    })
}

/// Kernel events handled between monitor-plane release windows. Large
/// enough that the per-window synchronization (a channel send per
/// shard) is noise; small enough that shards stay busy while the
/// kernel runs.
const OBSERVE_WINDOW_EVENTS: u64 = 8_192;

/// The sharded monitor plane: the kernel defers display materialization
/// into compact emission records; observer shards expand each record
/// into its probe samples and run detection + recording concurrently
/// with the simulation. Watermarked releases (every
/// [`OBSERVE_WINDOW_EVENTS`] kernel events) let shards process the
/// stream in time order while the kernel keeps running.
fn run_sharded(
    machine: &mut Machine,
    monitor: &zm4::Zm4,
    shards: usize,
    horizon: SimTime,
    faults: FaultConfig,
) -> (RunOutcome, Measurement) {
    let observers = monitor.shard_observers(shards);
    // Channel (= node index) → stream shard routing.
    let mut shard_of = vec![0usize; monitor.channels()];
    for (i, obs) in observers.iter().enumerate() {
        for ch in obs.channels() {
            shard_of[ch] = i;
        }
    }
    let mut stream = des::shard::ShardStream::spawn(
        observers,
        move |obs: &mut zm4::ObserverShard, _shard, _at, rec: suprenum::EmissionRecord| {
            for w in rec.writes() {
                // The same pure per-sample fault verdicts as the
                // sequential oracle — shard routing can't move a fault.
                let sample = zm4::ProbeSample {
                    time: w.time,
                    channel: w.node.index() as usize,
                    pattern: w.pattern,
                };
                if let Some(sample) = faults.apply(sample) {
                    obs.feed(sample);
                }
            }
        },
    );
    let outcome = machine.run_observed(horizon, OBSERVE_WINDOW_EVENTS, |now, emissions| {
        for rec in emissions.drain(..) {
            // Safe by the kernel's watermark guarantee: every emission
            // recorded after the previous window's release lies strictly
            // after that watermark.
            stream.push(
                shard_of[rec.node.index() as usize],
                rec.first_write_at(),
                rec,
            );
        }
        stream.release(now);
    });
    let measurement = monitor.assemble(stream.finish());
    (outcome, measurement)
}

/// Runs one full measurement.
///
/// # Panics
///
/// Panics if the configuration is invalid (machine smaller than the
/// workload needs, invalid workload) or a [`PolicyMode::Deny`]
/// pre-flight analysis reports errors. Use [`try_run_workload`] to
/// handle those cases without unwinding.
pub fn run_workload<W: Workload>(cfg: PipelineConfig<W>) -> PipelineResult<W> {
    match try_run_workload(cfg) {
        Ok(result) => result,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_sizing_matches_the_paper_setup() {
        assert_eq!(machine_for(4).total_nodes(), 4);
        assert_eq!(machine_for(16).total_nodes(), 16);
        // 17 nodes spill into two 16-node clusters.
        assert_eq!(machine_for(17).total_nodes(), 32);
    }

    #[test]
    fn fingerprint_distinguishes_seed_and_workload() {
        let a = PipelineConfig::new(jacobi::JacobiConfig::default());
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.seed += 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.workload.iterations += 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn undersized_machine_is_refused() {
        let mut cfg = PipelineConfig::new(jacobi::JacobiConfig::default());
        cfg.machine = machine_for(2);
        let err = try_run_workload(cfg).unwrap_err();
        assert!(matches!(err, PipelineError::Invalid(_)));
        assert!(err.to_string().contains("needs"));
    }

    #[test]
    fn zero_shards_is_refused() {
        let mut cfg = PipelineConfig::new(jacobi::JacobiConfig::default());
        cfg.shards = 0;
        let err = try_run_workload(cfg).unwrap_err();
        assert!(err.to_string().contains("shard"));
    }

    #[test]
    fn zero_engine_shards_is_refused() {
        let mut cfg = PipelineConfig::new(jacobi::JacobiConfig::default());
        cfg.engine_shards = 0;
        let err = try_run_workload(cfg).unwrap_err();
        assert!(err.to_string().contains("engine shard"));
    }

    #[test]
    fn fingerprint_ignores_shard_counts() {
        let a = PipelineConfig::new(jacobi::JacobiConfig::default());
        let mut b = a.clone();
        b.shards = 4;
        b.engine_shards = 8;
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn multi_cluster_runs_are_identical_for_every_engine_shard_count() {
        // 20 workers + coordinator → 21 nodes → two 16-node clusters:
        // the kernel partitions per cluster and exchanges boundaries
        // over the simulated token ring. `engine_shards` only packs the
        // cluster shards onto worker threads, so every count must
        // reproduce the same run bit for bit.
        let base = PipelineConfig::new(jacobi::JacobiConfig {
            workers: 20,
            iterations: 4,
            ..jacobi::JacobiConfig::default()
        });
        let reference = run_workload(base.clone());
        assert!(reference.completed());
        assert!(!reference.measurement.trace.is_empty());

        for engine_shards in [2, 3, 8] {
            let mut cfg = base.clone();
            cfg.engine_shards = engine_shards;
            let run = run_workload(cfg);
            assert_eq!(run.outcome, reference.outcome, "{engine_shards} shards");
            assert_eq!(
                run.measurement.trace, reference.measurement.trace,
                "{engine_shards} shards"
            );
            assert_eq!(run.trace, reference.trace, "{engine_shards} shards");
            assert_eq!(
                run.output.max_error, reference.output.max_error,
                "{engine_shards} shards"
            );
            assert_eq!(run.intrusion, reference.intrusion, "{engine_shards} shards");
        }
    }

    #[test]
    fn engine_and_monitor_shards_compose() {
        let base = PipelineConfig::new(jacobi::JacobiConfig {
            workers: 18,
            iterations: 3,
            ..jacobi::JacobiConfig::default()
        });
        let reference = run_workload(base.clone());
        assert!(reference.completed());
        let mut cfg = base;
        cfg.shards = 2;
        cfg.engine_shards = 2;
        let run = run_workload(cfg);
        assert_eq!(run.outcome, reference.outcome);
        assert_eq!(run.measurement.trace, reference.measurement.trace);
        assert_eq!(run.trace, reference.trace);
        assert_eq!(run.intrusion, reference.intrusion);
    }

    #[test]
    fn engine_profile_reports_cross_cluster_balance() {
        // The scaling sweep's jacobi-n64 shape: 63 workers + coordinator
        // over four clusters. The profile is deterministic, so this is a
        // regression gate on the engine's load distribution — the events
        // must actually spread across clusters, or the parallel engine
        // has nothing to win.
        let cfg = PipelineConfig::new(jacobi::JacobiConfig {
            workers: 63,
            cells_per_worker: 48,
            iterations: 40,
            ..jacobi::JacobiConfig::default()
        });
        let run = run_workload(cfg);
        assert!(run.completed());
        let profile = run.machine.engine_profile().expect("multi-cluster engine");
        assert_eq!(profile.shard_events.len(), 4);
        assert_eq!(
            profile.shard_events.iter().sum::<u64>(),
            run.outcome.events,
            "profile must account for every kernel event"
        );
        assert!(profile.shard_events.iter().all(|&e| e > 0));
        assert!(
            profile.balance_bound() > 1.2,
            "engine parallelism bound {:.2} — the multi-cluster shape \
             concentrated on one cluster",
            profile.balance_bound()
        );
        assert!(profile.epochs > 0);
        println!(
            "jacobi-n64 profile: {} events over {} windows ({:.2} ev/window), \
             shards {:?}, balance bound {:.2}x",
            run.outcome.events,
            profile.epochs,
            profile.events_per_window(),
            profile.shard_events,
            profile.balance_bound()
        );

        // A single-cluster machine runs the sequential loop and has no
        // engine profile.
        let small = PipelineConfig::new(jacobi::JacobiConfig {
            workers: 4,
            iterations: 3,
            ..jacobi::JacobiConfig::default()
        });
        assert!(run_workload(small).machine.engine_profile().is_none());
    }

    #[test]
    fn sharded_runs_match_the_sequential_oracle_bit_for_bit() {
        let base = PipelineConfig::new(jacobi::JacobiConfig {
            workers: 5,
            iterations: 6,
            ..jacobi::JacobiConfig::default()
        });
        let reference = run_workload(base.clone());
        assert!(reference.completed());
        assert!(!reference.measurement.trace.is_empty());

        for shards in 2..=4 {
            let mut cfg = base.clone();
            cfg.shards = shards;
            let sharded = run_workload(cfg);
            assert_eq!(sharded.outcome, reference.outcome, "{shards} shards");
            assert_eq!(
                sharded.measurement.trace, reference.measurement.trace,
                "{shards} shards"
            );
            assert_eq!(
                sharded.measurement.recorder_stats, reference.measurement.recorder_stats,
                "{shards} shards"
            );
            assert_eq!(
                sharded.measurement.detector_stats, reference.measurement.detector_stats,
                "{shards} shards"
            );
            assert_eq!(sharded.trace, reference.trace, "{shards} shards");
            assert_eq!(
                sharded.output.max_error, reference.output.max_error,
                "{shards} shards"
            );
            assert_eq!(sharded.intrusion, reference.intrusion, "{shards} shards");
        }
    }

    #[test]
    fn fault_injection_perturbs_only_the_measurement_and_is_shard_invariant() {
        let mut base = PipelineConfig::new(jacobi::JacobiConfig {
            workers: 5,
            iterations: 6,
            ..jacobi::JacobiConfig::default()
        });
        base.faults = FaultConfig {
            probe_drop_permille: 100,
            probe_corrupt_permille: 50,
            clock_drift_ppm: 2_000,
            seed: 7,
        };
        let clean = {
            let mut cfg = base.clone();
            cfg.faults = FaultConfig::default();
            run_workload(cfg)
        };
        let faulted = run_workload(base.clone());
        // The machine itself is untouched — same outcome, same
        // application output — only the monitor's view degrades.
        assert_eq!(faulted.outcome, clean.outcome);
        assert_eq!(faulted.output.max_error, clean.output.max_error);
        assert_ne!(
            faulted.measurement.trace, clean.measurement.trace,
            "faults must perturb the measurement"
        );
        // Deterministic per seed and identical across shard counts.
        for (shards, engine_shards) in [(1, 1), (2, 1), (3, 1)] {
            let mut cfg = base.clone();
            cfg.shards = shards;
            cfg.engine_shards = engine_shards;
            let run = run_workload(cfg);
            assert_eq!(
                run.measurement.trace, faulted.measurement.trace,
                "{shards} monitor shards"
            );
        }
        // A different fault seed moves the fault sites.
        let mut reseeded = base.clone();
        reseeded.faults.seed = 8;
        assert_ne!(
            run_workload(reseeded).measurement.trace,
            faulted.measurement.trace
        );
        // Active faults enter the fingerprint; a no-op layer does not.
        assert_ne!(base.fingerprint(), clean_fingerprint(&base));
        let mut out_of_range = base;
        out_of_range.faults.probe_drop_permille = 2_000;
        let err = try_run_workload(out_of_range).unwrap_err();
        assert!(err.to_string().contains("fault"));
    }

    fn clean_fingerprint(cfg: &PipelineConfig<jacobi::JacobiConfig>) -> u64 {
        let mut clean = cfg.clone();
        clean.faults = FaultConfig::default();
        clean.fingerprint()
    }

    #[test]
    fn shard_counts_beyond_recorders_still_work() {
        let base = PipelineConfig::new(jacobi::JacobiConfig {
            workers: 3,
            iterations: 4,
            ..jacobi::JacobiConfig::default()
        });
        let reference = run_workload(base.clone());
        // 4 nodes → 1 recorder → the shard count clips to 1 observer.
        let mut cfg = base;
        cfg.shards = 16;
        let sharded = run_workload(cfg);
        assert_eq!(sharded.measurement.trace, reference.measurement.trace);
        assert_eq!(sharded.outcome, reference.outcome);
    }
}
