//! Deterministic fault injection on the probe plane.
//!
//! The monitor hardware the paper describes is passive and assumed
//! perfect; the scheduling-fuzz studies need the opposite assumption —
//! probes that drop writes, corrupt patterns, and recorders whose
//! clocks drift. [`FaultConfig`] injects exactly those failures into
//! the probe-sample stream *between* the machine's signal log and the
//! ZM4, so the simulated machine itself stays untouched and
//! bit-identical.
//!
//! Every decision is a pure function of the sample and the fault seed
//! (an FNV-1a hash of `(channel, time, pattern, seed)`), never of
//! iteration order or shard assignment — so faulted measurements are
//! reproducible per seed and identical across monitor-shard and
//! engine-shard counts, exactly like the un-faulted pipeline.

use des::digest::Fnv64;
use hybridmon::Pattern;
use zm4::ProbeSample;

/// Probe-plane fault knobs. The default injects nothing and is
/// behaviourally invisible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultConfig {
    /// Per-mille probability that a display write never reaches the
    /// detector (a dropped probe sample). `0..=1000`.
    pub probe_drop_permille: u16,
    /// Per-mille probability that a display write arrives with some of
    /// its pattern bits flipped (the decoder then sees a different —
    /// still valid — pattern word). `0..=1000`.
    pub probe_corrupt_permille: u16,
    /// Recorder clock drift in parts per million. Each channel's
    /// recorder clock runs fast or slow by its own per-channel fraction
    /// of this bound, scaling timestamps linearly — monotone per
    /// channel, so the detector's feed-order precondition still holds.
    pub clock_drift_ppm: u32,
    /// Seed of the fault pattern. Two runs with equal seeds inject
    /// identical faults; changing the seed moves every fault site.
    pub seed: u64,
}

impl FaultConfig {
    /// `true` when no fault can ever fire — the pipeline then behaves
    /// exactly as if no fault layer existed.
    pub fn is_noop(&self) -> bool {
        self.probe_drop_permille == 0
            && self.probe_corrupt_permille == 0
            && self.clock_drift_ppm == 0
    }

    /// Checks the knobs are in range.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first out-of-range knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.probe_drop_permille > 1000 {
            return Err("probe_drop_permille must be at most 1000".into());
        }
        if self.probe_corrupt_permille > 1000 {
            return Err("probe_corrupt_permille must be at most 1000".into());
        }
        if self.clock_drift_ppm >= 500_000 {
            return Err(
                "clock_drift_ppm must stay below 500000 (clocks must keep running forward)".into(),
            );
        }
        Ok(())
    }

    /// Applies the fault model to one probe sample: `None` when the
    /// write is dropped, otherwise the (possibly corrupted and
    /// clock-shifted) sample. Pure per sample — the verdict depends
    /// only on the sample's identity and the fault seed.
    pub fn apply(&self, sample: ProbeSample) -> Option<ProbeSample> {
        if self.is_noop() {
            return Some(sample);
        }
        let mut h = Fnv64::new();
        h.write_u64(self.seed);
        h.write_u64(sample.channel as u64);
        h.write_u64(sample.time.as_nanos());
        h.write_u64(u64::from(sample.pattern.index()));
        let verdict = h.finish();

        if verdict % 1000 < u64::from(self.probe_drop_permille) {
            return None;
        }

        let mut out = sample;
        if (verdict >> 16) % 1000 < u64::from(self.probe_corrupt_permille) {
            // A nonzero 4-bit XOR mask: the corrupted word is always a
            // *different* valid pattern (possibly the trigger word —
            // exactly the failure a real flaky probe line produces).
            let mask = ((verdict >> 32) % 15 + 1) as u8;
            out.pattern = Pattern::new(sample.pattern.index() ^ mask)
                .expect("xor of two 4-bit pattern indices is a 4-bit pattern index");
        }
        if self.clock_drift_ppm > 0 {
            out.time = des::time::SimTime::from_nanos(
                self.drifted_nanos(out.channel, out.time.as_nanos()),
            );
        }
        Some(out)
    }

    /// The per-channel drifted clock: channel `c` reads
    /// `t × (1 + f(c) × ppm / 1e6)` where `f(c) ∈ [-1, 1]` is a pure
    /// hash of the channel and the seed. Linear with positive slope, so
    /// each channel's samples stay in feed order.
    fn drifted_nanos(&self, channel: usize, nanos: u64) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.seed ^ 0x5eed_c10c);
        h.write_u64(channel as u64);
        // Signed per-channel rate in [-ppm, +ppm].
        let span = i64::from(self.clock_drift_ppm) * 2 + 1;
        let rate = (h.finish() % span as u64) as i64 - i64::from(self.clock_drift_ppm);
        let shift = (nanos as i128 * i128::from(rate) / 1_000_000) as i64;
        nanos.saturating_add_signed(shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::time::SimTime;

    fn sample(channel: usize, nanos: u64, pattern: u8) -> ProbeSample {
        ProbeSample {
            time: SimTime::from_nanos(nanos),
            channel,
            pattern: Pattern::new(pattern).unwrap(),
        }
    }

    #[test]
    fn noop_config_is_identity() {
        let f = FaultConfig::default();
        assert!(f.is_noop());
        let s = sample(3, 1234, 7);
        assert_eq!(f.apply(s), Some(s));
    }

    #[test]
    fn decisions_are_pure_and_seed_dependent() {
        let f = FaultConfig {
            probe_drop_permille: 300,
            probe_corrupt_permille: 300,
            clock_drift_ppm: 500,
            seed: 42,
        };
        let samples: Vec<ProbeSample> = (0..500)
            .map(|i| sample(i % 7, 1000 * i as u64, (i % 16) as u8))
            .collect();
        let once: Vec<_> = samples.iter().map(|&s| f.apply(s)).collect();
        let twice: Vec<_> = samples.iter().map(|&s| f.apply(s)).collect();
        assert_eq!(once, twice, "fault decisions must be pure");
        assert!(once.iter().any(Option::is_none), "some samples drop");
        assert!(
            once.iter()
                .flatten()
                .zip(&samples)
                .any(|(out, orig)| out.pattern != orig.pattern),
            "some samples corrupt"
        );
        let other = FaultConfig { seed: 43, ..f };
        let moved: Vec<_> = samples.iter().map(|&s| other.apply(s)).collect();
        assert_ne!(once, moved, "a different seed moves the fault sites");
    }

    #[test]
    fn clock_drift_is_monotone_per_channel() {
        let f = FaultConfig {
            clock_drift_ppm: 400_000,
            seed: 9,
            ..FaultConfig::default()
        };
        for channel in 0..16 {
            let mut last = 0u64;
            for nanos in [0u64, 10, 1_000, 1_000_000, 5_000_000_000] {
                let out = f.apply(sample(channel, nanos, 1)).unwrap();
                assert!(
                    out.time.as_nanos() >= last,
                    "channel {channel} went backwards at {nanos}"
                );
                last = out.time.as_nanos();
            }
        }
    }

    #[test]
    fn validation_bounds_the_knobs() {
        assert!(FaultConfig::default().validate().is_ok());
        let bad = FaultConfig {
            probe_drop_permille: 1001,
            ..FaultConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = FaultConfig {
            clock_drift_ppm: 600_000,
            ..FaultConfig::default()
        };
        assert!(bad.validate().unwrap_err().contains("clock_drift_ppm"));
    }
}
