//! The pre-flight analysis seam between the pipeline and the analyzer.
//!
//! The pipeline never depends on the analyzer (the analyzer depends on
//! the workloads, which depend on the pipeline); instead a
//! [`Preflight`] carries a plain `fn` pointer the analyzer supplies and
//! a [`PolicyMode`] deciding what its findings may do: nothing
//! (`Off`), print (`Warn` — the mode for reproducing the paper's
//! measurements, where version 3's queue bug must execute to be
//! measured), or refuse the run (`Deny`).

use crate::{PipelineConfig, Workload};

/// What a pre-flight analysis of a run configuration concluded.
///
/// Kept deliberately flat — counts plus pre-rendered text — so the
/// pipeline needs no knowledge of the analyzer's diagnostic model.
#[derive(Debug, Clone, Default)]
pub struct PreflightSummary {
    /// Findings that predict a broken measurement (deadlock, event
    /// loss, corrupted attribution).
    pub errors: usize,
    /// Findings that predict a distorted measurement.
    pub warnings: usize,
    /// Informational findings — proofs of absence, certificates,
    /// provenance notes. Tracked so analysis drift (a proof appearing
    /// or disappearing) is visible run-to-run, not just defects.
    pub infos: usize,
    /// The findings, rendered for a terminal.
    pub rendered: String,
}

/// The analysis hook an external crate supplies for workload `W`.
pub type PreflightHook<W> = fn(&PipelineConfig<W>) -> PreflightSummary;

/// What the pre-flight findings are allowed to do to the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyMode {
    /// Run without any pre-flight analysis.
    #[default]
    Off,
    /// Analyze, print any findings to stderr, and run regardless.
    Warn,
    /// Analyze and refuse to run a configuration with errors.
    Deny,
}

impl PolicyMode {
    /// Resolves the mode from the `ANALYZER_POLICY` environment
    /// variable (`off` | `warn` | `deny`, case-insensitive). `None`
    /// when unset; an unrecognized value is reported on stderr and
    /// treated as unset — a sweep should not silently lose its
    /// analysis because of a typo.
    pub fn from_env() -> Option<PolicyMode> {
        match std::env::var("ANALYZER_POLICY") {
            Err(_) => None,
            Ok(value) => match value.to_ascii_lowercase().as_str() {
                "off" => Some(PolicyMode::Off),
                "warn" => Some(PolicyMode::Warn),
                "deny" => Some(PolicyMode::Deny),
                other => {
                    eprintln!(
                        "ANALYZER_POLICY={other:?} not recognized (expected off|warn|deny); \
                         keeping the default policy"
                    );
                    None
                }
            },
        }
    }
}

/// Whether (and how strictly) [`crate::run_workload`] analyzes its
/// configuration before executing it.
pub struct Preflight<W: Workload> {
    /// What the findings may do. A mode other than [`PolicyMode::Off`]
    /// with no hook behaves as `Off` (there is nothing to run).
    pub mode: PolicyMode,
    /// The analysis itself, supplied externally (see
    /// [`PreflightHook`]).
    pub hook: Option<PreflightHook<W>>,
}

// Manual impls: `W` appears only inside the fn-pointer type, so the
// derive-generated `W: Clone`/`W: Copy` bounds would be too strict.
impl<W: Workload> Clone for Preflight<W> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<W: Workload> Copy for Preflight<W> {}

impl<W: Workload> Default for Preflight<W> {
    fn default() -> Self {
        Preflight::off()
    }
}

impl<W: Workload> std::fmt::Debug for Preflight<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Preflight")
            .field("mode", &self.mode)
            .field("hook", &self.hook.map(|_| "fn"))
            .finish()
    }
}

impl<W: Workload> Preflight<W> {
    /// No analysis.
    pub const fn off() -> Self {
        Preflight {
            mode: PolicyMode::Off,
            hook: None,
        }
    }

    /// Analyze with `hook`, print findings, run regardless.
    pub const fn warn(hook: PreflightHook<W>) -> Self {
        Preflight {
            mode: PolicyMode::Warn,
            hook: Some(hook),
        }
    }

    /// Analyze with `hook` and refuse to run on errors.
    pub const fn deny(hook: PreflightHook<W>) -> Self {
        Preflight {
            mode: PolicyMode::Deny,
            hook: Some(hook),
        }
    }
}

/// A pre-flight analysis that refused the run (see [`try_preflight`]).
///
/// Carries the complete summary — every finding, not just the first —
/// so a caller batching many configurations can surface all of them
/// before failing.
#[derive(Debug, Clone)]
pub struct PreflightDenied {
    /// The full analysis summary, findings included.
    pub summary: PreflightSummary,
}

impl std::fmt::Display for PreflightDenied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pre-flight analysis found {} error(s); refusing to run:\n{}",
            self.summary.errors, self.summary.rendered
        )
    }
}

impl std::error::Error for PreflightDenied {}

/// Runs the configured pre-flight analysis without panicking.
///
/// All findings are printed to stderr *before* the verdict is taken,
/// so a denied run still reports everything the analysis found — not
/// just the first failure.
///
/// # Errors
///
/// Returns [`PreflightDenied`] (carrying the complete summary) under
/// [`PolicyMode::Deny`] when the analysis reports errors.
pub fn try_preflight<W: Workload>(
    cfg: &PipelineConfig<W>,
) -> Result<Option<PreflightSummary>, PreflightDenied> {
    let (hook, deny) = match (cfg.preflight.mode, cfg.preflight.hook) {
        (PolicyMode::Off, _) | (_, None) => return Ok(None),
        (PolicyMode::Warn, Some(hook)) => (hook, false),
        (PolicyMode::Deny, Some(hook)) => (hook, true),
    };
    let summary = hook(cfg);
    if summary.errors + summary.warnings > 0 {
        eprintln!("{}", summary.rendered.trim_end());
    }
    if deny && summary.errors > 0 {
        return Err(PreflightDenied { summary });
    }
    Ok(Some(summary))
}
