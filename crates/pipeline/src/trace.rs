//! From machine signals to monitor samples to SIMPLE traces.
//!
//! These conversions are the glue the pipeline owns: every workload's
//! seven-segment display writes become ZM4 probe samples (channel =
//! node index), and every ZM4 measurement's merged trace becomes
//! SIMPLE events ready for evaluation.

use suprenum::Machine;
use zm4::{Measurement, ProbeSample};

use simple::Trace;

/// Streams a machine's display signal log as ZM4 probe samples without
/// materializing them (channel = node index). The signal log is
/// globally time-sorted, hence per-channel time-sorted — exactly the
/// precondition of [`zm4::Zm4::observe_iter`].
pub fn probe_sample_iter(machine: &Machine) -> impl Iterator<Item = ProbeSample> + '_ {
    machine
        .signals()
        .display_writes()
        .iter()
        .map(|w| ProbeSample {
            time: w.time,
            channel: w.node.index() as usize,
            pattern: w.pattern,
        })
}

/// Converts a machine's display signal log into ZM4 probe samples
/// (channel = node index). Prefer [`probe_sample_iter`] on hot paths —
/// this materializes the vector.
pub fn probe_samples(machine: &Machine) -> Vec<ProbeSample> {
    probe_sample_iter(machine).collect()
}

/// Converts a ZM4 measurement's merged trace into SIMPLE events.
pub fn to_simple_trace(measurement: &Measurement) -> Trace {
    measurement
        .trace
        .iter()
        .map(|r| {
            simple::Event::new(
                r.ts_ns,
                r.channel,
                r.event.token.value(),
                r.event.param.value(),
            )
        })
        .collect()
}
