//! The second stock workload: SPMD Jacobi relaxation.
//!
//! The paper's machine hosted more than ray tracers — its reference
//! \[2\] solves the neutron diffusion equation with parallel conjugate
//! gradients on SUPRENUM. This module implements the archetype of that
//! workload class: a one-dimensional Jacobi relaxation over a chain of
//! workers, each owning a strip of cells and exchanging boundary values
//! with its neighbours every iteration.
//!
//! The point is to show that the monitoring toolkit is
//! application-agnostic: the same `hybrid_mon` instrumentation, ZM4
//! observation and SIMPLE evaluation reveal this program's
//! compute/exchange alternation (the classic BSP stripe pattern) exactly
//! as they revealed the ray tracer's master/servant cycles. The numerics
//! are real — the distributed result is checked against a sequential
//! reference.
//!
//! [`JacobiConfig`] implements [`Workload`], so the whole monitor stack
//! — pre-flight lints, ZM4 observation, happens-before verification,
//! sweep records — applies unchanged; [`run_jacobi`] remains as the
//! one-call convenience wrapper.

use std::sync::{Arc, Mutex};

use des::time::SimDuration;
use simple::{ActivityModel, Trace};
use suprenum::{Action, Machine, Message, NodeId, ProcCtx, Process, ProcessId, Resume};

use crate::{Harvest, OrderEdge, PipelineConfig, RunMetrics, TokenDecl, Workload};

/// Worker: "Exchange" phase begins.
pub const EXCHANGE_BEGIN: u16 = 0x0401;
/// Worker: "Compute" phase begins.
pub const COMPUTE_BEGIN: u16 = 0x0402;
/// Worker: waiting to report results.
pub const REPORT_BEGIN: u16 = 0x0403;

/// Problem configuration.
#[derive(Debug, Clone)]
pub struct JacobiConfig {
    /// Number of worker processes (nodes `1..=workers`).
    pub workers: u16,
    /// Cells per worker strip.
    pub cells_per_worker: u32,
    /// Jacobi iterations.
    pub iterations: u32,
    /// Simulated compute time per cell update.
    pub per_cell: SimDuration,
    /// Fixed boundary values of the global domain.
    pub boundary: (f64, f64),
}

impl Default for JacobiConfig {
    fn default() -> Self {
        JacobiConfig {
            workers: 4,
            cells_per_worker: 64,
            iterations: 30,
            per_cell: SimDuration::from_micros(40),
            boundary: (1.0, 0.0),
        }
    }
}

/// What a Jacobi run folds out of the machine: the assembled solution
/// plus its validation against the sequential reference.
#[derive(Debug, Clone)]
pub struct JacobiOutput {
    /// The assembled solution (workers' strips in order). Strips a
    /// truncated run never reported stay zero.
    pub solution: Vec<f64>,
    /// Maximum absolute error versus the sequential reference.
    pub max_error: f64,
}

impl Workload for JacobiConfig {
    type Output = JacobiOutput;

    fn id(&self) -> &'static str {
        "jacobi"
    }

    fn validate(&self) -> Result<(), String> {
        if !(1..=255).contains(&self.workers) {
            return Err(format!(
                "workers must be 1..=255 (one worker per node, spanning clusters as needed), got {}",
                self.workers
            ));
        }
        if self.cells_per_worker == 0 {
            return Err("cells_per_worker must be at least 1".into());
        }
        if self.iterations == 0 {
            return Err("iterations must be at least 1".into());
        }
        Ok(())
    }

    fn nodes_required(&self) -> u32 {
        u32::from(self.workers) + 1
    }

    fn token_map(&self) -> Vec<TokenDecl> {
        vec![
            TokenDecl::new(EXCHANGE_BEGIN, "Exchange", "Worker"),
            TokenDecl::new(COMPUTE_BEGIN, "Compute", "Worker"),
            TokenDecl::new(REPORT_BEGIN, "Report", "Worker"),
        ]
    }

    fn proven_orders(&self) -> Vec<OrderEdge> {
        vec![OrderEdge::per_channel(
            "exchange-before-compute",
            EXCHANGE_BEGIN,
            COMPUTE_BEGIN,
            "a worker relaxes its strip only after the boundary exchange of the same iteration",
        )]
    }

    fn launch(&self, machine: &mut Machine) -> Harvest<JacobiOutput> {
        let n = self.workers as usize * self.cells_per_worker as usize;
        let cfg = Arc::new(self.clone());
        let solution = Arc::new(Mutex::new(vec![0.0f64; n]));
        machine.add_process(
            NodeId::new(0),
            Box::new(Coordinator {
                cfg: cfg.clone(),
                peers: Vec::new(),
                solution: solution.clone(),
                spawned: 0,
                started: 0,
                reports: 0,
            }),
        );
        Box::new(move |_machine| {
            let solution = solution.lock().unwrap().clone();
            let reference = sequential_reference(&cfg);
            let max_error = solution
                .iter()
                .zip(&reference)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            JacobiOutput {
                solution,
                max_error,
            }
        })
    }

    fn metrics(&self, trace: &Trace, truncated: bool, _output: &JacobiOutput) -> RunMetrics {
        // One work unit = one relaxed strip iteration (a COMPUTE_BEGIN
        // event); `workers * iterations` when nothing was lost.
        let work_units = trace
            .events()
            .iter()
            .filter(|e| e.token.value() == COMPUTE_BEGIN)
            .count() as u64;
        let utilization_percent = (!truncated).then(|| {
            let model = worker_activity_model();
            let (_, end_ns) = trace.span();
            let mut sum = 0.0;
            for worker in 1..=self.workers as usize {
                let lane = trace.channel(worker);
                let track = model.derive_track("worker", lane.events().iter(), end_ns);
                let (start, end) = track.span();
                let busy = track.time_in_state("Compute") + track.time_in_state("Exchange");
                sum += if end > start {
                    100.0 * busy as f64 / (end - start) as f64
                } else {
                    0.0
                };
            }
            sum / f64::from(self.workers)
        });
        RunMetrics {
            work_units,
            utilization_percent,
            steady_percent: None,
        }
    }
}

/// The sequential reference: plain Jacobi on the whole domain.
pub fn sequential_reference(cfg: &JacobiConfig) -> Vec<f64> {
    let n = (cfg.workers as usize) * cfg.cells_per_worker as usize;
    let mut u = vec![0.0f64; n];
    let mut next = u.clone();
    for _ in 0..cfg.iterations {
        for i in 0..n {
            let left = if i == 0 { cfg.boundary.0 } else { u[i - 1] };
            let right = if i == n - 1 { cfg.boundary.1 } else { u[i + 1] };
            next[i] = 0.5 * (left + right);
        }
        std::mem::swap(&mut u, &mut next);
    }
    u
}

#[derive(Debug, Clone, Copy)]
struct Boundary {
    iter: u32,
    from_left: bool,
    value: f64,
}

/// The coordinator's kick-off message: a worker's neighbours in the
/// strip chain. Delivering the topology by message (instead of through
/// shared memory) keeps the workload honest — exactly what a real
/// SUPRENUM program would do — and gives every worker a
/// happens-before edge from the complete spawn phase.
#[derive(Debug, Clone, Copy)]
struct Start {
    left: Option<ProcessId>,
    right: Option<ProcessId>,
}

#[derive(Debug, Clone)]
struct StripReport {
    index: u16,
    cells: Vec<f64>,
}

enum WState {
    Boot,
    AwaitStart,
    ExchangeEmit,
    Sending,
    Receiving,
    ComputeEmit,
    Computing,
    ReportEmit,
    Reporting,
}

struct Worker {
    index: u16,
    cfg: Arc<JacobiConfig>,
    coordinator: ProcessId,
    left: Option<ProcessId>,
    right: Option<ProcessId>,
    cells: Vec<f64>,
    iter: u32,
    state: WState,
    sends_left: Vec<(bool, f64)>,
    awaiting: u8,
    left_ghost: f64,
    right_ghost: f64,
    /// Boundary values that arrived ahead of the iteration that needs
    /// them (a fast neighbour can run one exchange ahead).
    stash: Vec<Boundary>,
}

impl Worker {
    fn new(index: u16, cfg: Arc<JacobiConfig>, coordinator: ProcessId) -> Box<Worker> {
        let cells = vec![0.0; cfg.cells_per_worker as usize];
        Box::new(Worker {
            index,
            cfg,
            coordinator,
            left: None,
            right: None,
            cells,
            iter: 0,
            state: WState::Boot,
            sends_left: Vec::new(),
            awaiting: 0,
            left_ghost: 0.0,
            right_ghost: 0.0,
            stash: Vec::new(),
        })
    }

    fn has_left(&self) -> bool {
        self.left.is_some()
    }

    fn has_right(&self) -> bool {
        self.right.is_some()
    }

    /// Applies a boundary for the current iteration, or stashes one
    /// that ran ahead. Returns `true` if the current iteration's wait
    /// count dropped.
    fn take_boundary(&mut self, b: Boundary) -> bool {
        if b.iter == self.iter {
            if b.from_left {
                self.left_ghost = b.value;
            } else {
                self.right_ghost = b.value;
            }
            self.awaiting -= 1;
            true
        } else {
            debug_assert!(b.iter > self.iter, "boundary from a finished iteration");
            self.stash.push(b);
            false
        }
    }

    /// Drains stashed boundaries that belong to the current iteration.
    fn drain_stash(&mut self) {
        let mut i = 0;
        while i < self.stash.len() {
            if self.stash[i].iter == self.iter {
                let b = self.stash.swap_remove(i);
                self.take_boundary(b);
            } else {
                i += 1;
            }
        }
    }

    fn begin_iteration(&mut self) -> Action {
        self.state = WState::ExchangeEmit;
        // Queue up this iteration's boundary sends.
        self.sends_left.clear();
        if self.has_left() {
            self.sends_left.push((true, self.cells[0]));
        }
        if self.has_right() {
            self.sends_left
                .push((false, *self.cells.last().expect("nonempty strip")));
        }
        self.awaiting = self.sends_left.len() as u8;
        Action::Emit {
            token: EXCHANGE_BEGIN,
            param: self.iter,
        }
    }

    fn next_send_or_receive(&mut self, ctx: &ProcCtx) -> Action {
        if let Some((to_left, value)) = self.sends_left.pop() {
            let dst = if to_left {
                self.left.expect("send to missing left neighbour")
            } else {
                self.right.expect("send to missing right neighbour")
            };
            self.state = WState::Sending;
            // The *receiver* sees this as coming from its right if we
            // sent it to our left.
            let boundary = Boundary {
                iter: self.iter,
                from_left: !to_left,
                value,
            };
            return Action::MailboxSend {
                to: dst,
                msg: Message::new(ctx.pid, 32, boundary),
            };
        }
        self.drain_stash();
        if self.awaiting > 0 {
            self.state = WState::Receiving;
            return Action::MailboxRecv;
        }
        self.state = WState::ComputeEmit;
        Action::Emit {
            token: COMPUTE_BEGIN,
            param: self.iter,
        }
    }

    fn relax(&mut self) {
        let n = self.cells.len();
        let left_edge = if self.has_left() {
            self.left_ghost
        } else {
            self.cfg.boundary.0
        };
        let right_edge = if self.has_right() {
            self.right_ghost
        } else {
            self.cfg.boundary.1
        };
        let mut next = self.cells.clone();
        for (i, slot) in next.iter_mut().enumerate() {
            let left = if i == 0 { left_edge } else { self.cells[i - 1] };
            let right = if i == n - 1 {
                right_edge
            } else {
                self.cells[i + 1]
            };
            *slot = 0.5 * (left + right);
        }
        self.cells = next;
    }
}

impl Process for Worker {
    fn resume(&mut self, ctx: &ProcCtx, why: Resume) -> Action {
        match self.state {
            WState::Boot => {
                self.state = WState::AwaitStart;
                Action::MailboxRecv
            }
            WState::AwaitStart => {
                let Resume::MailboxMsg(msg) = why else {
                    panic!("worker expected start message")
                };
                if let Some(b) = msg.payload::<Boundary>() {
                    // A neighbour got its start first and is already
                    // exchanging; keep waiting for ours.
                    self.stash.push(*b);
                    return Action::MailboxRecv;
                }
                let start = msg.payload::<Start>().expect("start message");
                self.left = start.left;
                self.right = start.right;
                self.begin_iteration()
            }
            WState::ExchangeEmit => self.next_send_or_receive(ctx),
            WState::Sending => {
                debug_assert!(matches!(why, Resume::Sent));
                self.next_send_or_receive(ctx)
            }
            WState::Receiving => {
                let Resume::MailboxMsg(msg) = why else {
                    panic!("worker expected boundary")
                };
                let b = *msg.payload::<Boundary>().expect("boundary message");
                if !self.take_boundary(b) {
                    return Action::MailboxRecv;
                }
                self.next_send_or_receive(ctx)
            }
            WState::ComputeEmit => {
                self.relax();
                self.state = WState::Computing;
                Action::Compute(self.cfg.per_cell * self.cfg.cells_per_worker as u64)
            }
            WState::Computing => {
                self.iter += 1;
                if self.iter < self.cfg.iterations {
                    self.begin_iteration()
                } else {
                    self.state = WState::ReportEmit;
                    Action::Emit {
                        token: REPORT_BEGIN,
                        param: self.iter,
                    }
                }
            }
            WState::ReportEmit => {
                self.state = WState::Reporting;
                let report = StripReport {
                    index: self.index,
                    cells: self.cells.clone(),
                };
                let bytes = 16 + 8 * report.cells.len() as u32;
                Action::MailboxSend {
                    to: self.coordinator,
                    msg: Message::new(ctx.pid, bytes, report),
                }
            }
            WState::Reporting => Action::Exit,
        }
    }

    fn label(&self) -> String {
        format!("jacobi-{}", self.index)
    }
}

struct Coordinator {
    cfg: Arc<JacobiConfig>,
    peers: Vec<ProcessId>,
    solution: Arc<Mutex<Vec<f64>>>,
    spawned: u16,
    started: u16,
    reports: u16,
}

impl Process for Coordinator {
    fn resume(&mut self, ctx: &ProcCtx, why: Resume) -> Action {
        if let Resume::Spawned(pid) = &why {
            self.peers.push(*pid);
        }
        if self.spawned < self.cfg.workers {
            let index = self.spawned;
            self.spawned += 1;
            let body = Worker::new(index, self.cfg.clone(), ctx.pid);
            return Action::Spawn {
                node: NodeId::new(index + 1),
                body,
            };
        }
        if self.started < self.cfg.workers {
            // Every worker is spawned; hand each its neighbours. A
            // worker only starts exchanging once its start message
            // arrives, so the chain is fully wired before any boundary
            // traffic that concerns it.
            let i = self.started as usize;
            self.started += 1;
            let start = Start {
                left: (i > 0).then(|| self.peers[i - 1]),
                right: (i + 1 < self.cfg.workers as usize).then(|| self.peers[i + 1]),
            };
            return Action::MailboxSend {
                to: self.peers[i],
                msg: Message::new(ctx.pid, 16, start),
            };
        }
        match why {
            Resume::MailboxMsg(msg) => {
                let report = msg.payload::<StripReport>().expect("strip report").clone();
                let base = report.index as usize * self.cfg.cells_per_worker as usize;
                let mut solution = self.solution.lock().unwrap();
                solution[base..base + report.cells.len()].copy_from_slice(&report.cells);
                self.reports += 1;
            }
            Resume::Sent => {}
            other => panic!("coordinator cannot handle {other:?}"),
        }
        if self.reports < self.cfg.workers {
            Action::MailboxRecv
        } else {
            Action::Exit
        }
    }

    fn label(&self) -> String {
        "jacobi-coordinator".into()
    }
}

/// Result of a monitored Jacobi run (the [`run_jacobi`] convenience
/// shape; the pipeline-native shape is
/// `PipelineResult<JacobiConfig>`).
#[derive(Debug)]
pub struct JacobiResult {
    /// The assembled solution (workers' strips in order).
    pub solution: Vec<f64>,
    /// The merged monitoring trace.
    pub trace: Trace,
    /// The machine (ground truth, signals).
    pub machine: Machine,
    /// Maximum absolute error versus the sequential reference.
    pub max_error: f64,
}

/// Runs the monitored distributed Jacobi solver through the full
/// pipeline and validates it against the sequential reference.
///
/// # Panics
///
/// Panics if the configuration is invalid or the run does not complete.
pub fn run_jacobi(cfg: JacobiConfig, seed: u64) -> JacobiResult {
    let mut pipeline_cfg = PipelineConfig::new(cfg);
    pipeline_cfg.seed = seed;
    let result = crate::run_workload(pipeline_cfg);
    assert!(result.completed(), "jacobi run must complete");
    JacobiResult {
        solution: result.output.solution,
        trace: result.trace,
        machine: result.machine,
        max_error: result.output.max_error,
    }
}

/// Activity model for the worker instrumentation.
pub fn worker_activity_model() -> ActivityModel {
    let mut m = ActivityModel::new();
    m.state(EXCHANGE_BEGIN, "Exchange")
        .state(COMPUTE_BEGIN, "Compute")
        .state(REPORT_BEGIN, "Report");
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_matches_sequential_exactly() {
        let r = run_jacobi(JacobiConfig::default(), 11);
        assert!(
            r.max_error == 0.0,
            "distributed Jacobi diverged from the reference by {}",
            r.max_error
        );
        // The solution actually relaxed toward the boundary profile.
        assert!(
            r.solution[0] > 0.3,
            "left end should approach the hot boundary"
        );
        assert!(*r.solution.last().unwrap() < 0.2);
    }

    #[test]
    fn trace_shows_bsp_alternation() {
        let cfg = JacobiConfig {
            workers: 3,
            iterations: 10,
            ..JacobiConfig::default()
        };
        let r = run_jacobi(cfg, 5);
        let model = worker_activity_model();
        for worker in 1..=3usize {
            let track = model.derive_track(
                format!("worker {worker}"),
                r.trace.channel(worker).events().iter(),
                r.trace.span().1,
            );
            // 10 Exchange and 10 Compute visits, strictly alternating.
            let states: Vec<&str> = track
                .intervals()
                .iter()
                .map(|iv| iv.state.as_str())
                .collect();
            let exchanges = states.iter().filter(|s| **s == "Exchange").count();
            let computes = states.iter().filter(|s| **s == "Compute").count();
            assert_eq!(exchanges, 10);
            assert_eq!(computes, 10);
            for pair in states.windows(2) {
                assert_ne!(pair[0], pair[1], "phases must alternate: {states:?}");
            }
        }
    }

    #[test]
    fn single_worker_degenerates_to_sequential() {
        let cfg = JacobiConfig {
            workers: 1,
            iterations: 25,
            ..JacobiConfig::default()
        };
        let r = run_jacobi(cfg, 2);
        assert_eq!(r.max_error, 0.0);
    }

    #[test]
    fn workload_metrics_count_relaxations() {
        let cfg = JacobiConfig {
            workers: 3,
            iterations: 10,
            ..JacobiConfig::default()
        };
        let pipeline_cfg = PipelineConfig::new(cfg.clone());
        let result = crate::run_workload(pipeline_cfg);
        let metrics = result.metrics(&cfg);
        assert_eq!(metrics.work_units, 30, "3 workers x 10 iterations");
        let util = metrics.utilization_percent.expect("completed run");
        assert!(
            (0.0..=100.0).contains(&util),
            "utilization is a percentage, got {util}"
        );
        assert!(util > 0.0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(JacobiConfig {
            workers: 0,
            ..JacobiConfig::default()
        }
        .validate()
        .is_err());
        assert!(JacobiConfig {
            workers: 256,
            ..JacobiConfig::default()
        }
        .validate()
        .is_err());
        assert!(JacobiConfig {
            iterations: 0,
            ..JacobiConfig::default()
        }
        .validate()
        .is_err());
        assert!(JacobiConfig::default().validate().is_ok());
    }
}
