//! Proven event orderings a workload declares for trace verification.
//!
//! The happens-before engine (`analyzer::hb`) checks recorded traces
//! against these edges: a cause token whose timestamp lands *after*
//! its matched effect is a measurement-infrastructure bug (clock
//! drift, channel mislabeling, trace corruption) — a legal execution
//! cannot produce it.

/// How a [`OrderEdge`]'s cause and effect instances are matched up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderScope {
    /// Cause and effect are matched by the job id in the event
    /// parameter across *all* channels — the master/servant shape,
    /// where one job id exists once in the whole system. Duplicate
    /// occurrences of one `(token, id)` on unsynchronized channels are
    /// a race (`AN-HB-002`).
    #[default]
    Global,
    /// Cause and effect are matched by parameter *within each
    /// channel* — the SPMD shape, where every worker legitimately
    /// passes through the same instrumentation point with the same
    /// iteration number. Cross-channel duplicates are expected and
    /// never diagnosed.
    PerChannel,
}

/// One ordering guaranteed by the workload's communication protocol,
/// instance-matched by the job id carried in the event parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderEdge {
    /// Stable name (used in diagnostics).
    pub name: &'static str,
    /// Token that must come first.
    pub cause: u16,
    /// Token that must come strictly later (equal timestamps are
    /// tolerated — quantized clocks can collapse a pair onto one tick).
    pub effect: u16,
    /// Why the order is guaranteed.
    pub why: &'static str,
    /// How cause and effect instances are matched.
    pub scope: OrderScope,
}

/// The matching scope a set of declared orders implies for race
/// analysis: [`OrderScope::Global`] as soon as any edge matches
/// globally (one job id exists once in the whole system, so unordered
/// sends to one mailbox are a real race), [`OrderScope::PerChannel`]
/// when every edge — or no edge at all — is per-channel (the SPMD
/// shape, where cross-sender interleaving at a shared mailbox is the
/// declared-benign norm).
pub fn dominant_scope(orders: &[OrderEdge]) -> OrderScope {
    if orders.iter().any(|o| o.scope == OrderScope::Global) {
        OrderScope::Global
    } else {
        OrderScope::PerChannel
    }
}

impl OrderEdge {
    /// A globally matched edge (one job id across the whole system).
    pub const fn global(
        name: &'static str,
        cause: u16,
        effect: u16,
        why: &'static str,
    ) -> OrderEdge {
        OrderEdge {
            name,
            cause,
            effect,
            why,
            scope: OrderScope::Global,
        }
    }

    /// A per-channel edge (every worker passes the same points with
    /// the same parameter; matching never crosses channels).
    pub const fn per_channel(
        name: &'static str,
        cause: u16,
        effect: u16,
        why: &'static str,
    ) -> OrderEdge {
        OrderEdge {
            name,
            cause,
            effect,
            why,
            scope: OrderScope::PerChannel,
        }
    }
}
