//! The happens-before engine: vector clocks over recorded traces,
//! cross-validated against the model checker's proven orderings.
//!
//! A merged ZM4 trace (as SIMPLE events) is a set of totally ordered
//! per-channel streams — one display channel per node — stitched
//! together by communication. The model checker proves, per program
//! version, which cross-channel orderings every legal execution must
//! respect ([`crate::model::proven_orders`]): a job's "Send Jobs Begin"
//! precedes its "Work Begin", the work precedes its "Receive Results
//! Begin", and so on, instance-matched by the job id in the event
//! parameter (the reason the parameter field carries the job sequence
//! number in the first place).
//!
//! [`analyze_trace`] checks a recorded trace against those orderings:
//!
//! * **AN-HB-001** — an ordering violation: a proven-order edge whose
//!   effect carries an *earlier* timestamp than its cause. On a healthy
//!   measurement this cannot happen (mailbox latency is positive); it
//!   appears when recorders drift, channels are mislabeled, or a trace
//!   was corrupted — exactly the class of monitoring bug the paper's
//!   global-time calibration exists to prevent.
//! * **AN-HB-002** — a concurrency race: the same instrumentation
//!   point with the same job id recorded on two channels whose vector
//!   clocks are incomparable. Duplicated attribution with no
//!   happens-before path between the copies means two nodes claim the
//!   same work unsynchronized.
//!
//! Each edge carries an [`OrderScope`]: globally matched edges (the
//! master/servant shape — one job id exists once in the whole system)
//! behave as above, while per-channel edges (the SPMD shape, where
//! every worker legitimately passes the same point with the same
//! iteration number — see `pipeline::jacobi`) match cause and effect
//! within each channel and never diagnose cross-channel duplicates.
//!
//! Vector clocks are built one component per channel; each event ticks
//! its own channel's component, and every matched proven-order edge
//! joins the cause's clock into the effect's channel — so `clock A ≤
//! clock B` exactly when the trace orders A before B through local
//! order plus proven communication edges.

use std::collections::HashMap;

use simple::Trace;

use crate::diag::{Diagnostic, Report};
use crate::model::{OrderScope, ProvenOrder};

/// Statistics from one happens-before analysis.
#[derive(Debug, Clone, Default)]
pub struct HbStats {
    /// Events scanned.
    pub events: usize,
    /// Proven-order edges matched and checked (cause and effect both
    /// present, per job instance).
    pub edges_checked: usize,
    /// Effect events whose cause never appeared in the trace (event
    /// loss upstream — counted, not diagnosed; the FIFO-overload lints
    /// own that failure mode).
    pub unmatched_effects: usize,
}

/// One occurrence of a tracked instrumentation point.
#[derive(Debug, Clone)]
struct Occurrence {
    channel: usize,
    ts_ns: u64,
    /// Vector clock *after* this event (one component per channel).
    clock: Vec<u64>,
}

/// Checks a recorded trace against the model checker's proven
/// orderings, returning the diagnostics and the analysis statistics.
pub fn analyze_trace(trace: &Trace, orders: &[ProvenOrder]) -> (Report, HbStats) {
    let mut report = Report::new("happens-before analysis");
    let mut stats = HbStats::default();

    let events = trace.events();
    stats.events = events.len();
    if events.is_empty() || orders.is_empty() {
        return (report, stats);
    }

    let channels = events.iter().map(|e| e.channel).max().unwrap_or(0) + 1;

    // Pass 1: index every occurrence of a tracked token by (token, job
    // id), building vector clocks as we go. The trace is globally
    // time-sorted, so walking it in order and joining the cause's clock
    // into the effect's channel yields the standard happens-before
    // relation (local order + proven communication edges).
    let tracked: Vec<u16> = {
        let mut t: Vec<u16> = orders.iter().flat_map(|o| [o.cause, o.effect]).collect();
        t.sort_unstable();
        t.dedup();
        t
    };
    // Tokens that participate in at least one globally matched order:
    // only these can race (AN-HB-002). A token appearing solely in
    // per-channel orders legitimately repeats across channels.
    let globally_matched: Vec<u16> = {
        let mut t: Vec<u16> = orders
            .iter()
            .filter(|o| o.scope == OrderScope::Global)
            .flat_map(|o| [o.cause, o.effect])
            .collect();
        t.sort_unstable();
        t.dedup();
        t
    };
    // (token, param) → occurrences in trace order.
    let mut seen: HashMap<(u16, u32), Vec<Occurrence>> = HashMap::new();
    // effect token → orders it participates in (as effect).
    let mut effect_orders: HashMap<u16, Vec<&ProvenOrder>> = HashMap::new();
    for o in orders {
        effect_orders.entry(o.effect).or_default().push(o);
    }

    let mut clocks: Vec<Vec<u64>> = vec![vec![0; channels]; channels];
    for e in events {
        let c = e.channel;
        clocks[c][c] += 1;
        let token = e.token.value();
        if tracked.binary_search(&token).is_err() {
            continue;
        }
        let param = e.param.value();

        // Join the cause clocks of every proven edge ending here.
        // Per-channel edges need no join: their cause lives on the
        // effect's own channel, so local order already covers it.
        if let Some(ending) = effect_orders.get(&token) {
            for o in ending {
                if o.scope != OrderScope::Global {
                    continue;
                }
                if let Some(causes) = seen.get(&(o.cause, param)) {
                    // Earliest cause occurrence is the real sender; any
                    // duplicates are diagnosed separately.
                    let cause = &causes[0];
                    let dst = &mut clocks[c];
                    for (i, v) in cause.clock.iter().enumerate() {
                        if *v > dst[i] {
                            dst[i] = *v;
                        }
                    }
                }
            }
        }

        let occ = Occurrence {
            channel: c,
            ts_ns: e.ts_ns,
            clock: clocks[c].clone(),
        };

        // AN-HB-002: same point, same job id, different channel, and no
        // happens-before path from the first occurrence to this one.
        // Only for globally matched tokens — per-channel points repeat
        // across workers by design.
        if globally_matched.binary_search(&token).is_err() {
            seen.entry((token, param)).or_default().push(occ);
            continue;
        }
        if let Some(prior) = seen.get(&(token, param)) {
            for p in prior {
                if p.channel != c && !leq(&p.clock, &clocks[c]) {
                    report.push(
                        Diagnostic::error(
                            "AN-HB-002",
                            format!(
                                "concurrent duplicate: token 0x{token:04x} with job id \
                                 {param} recorded on channel {} and channel {c} with no \
                                 happens-before path between them",
                                p.channel
                            ),
                        )
                        .at_sim(e.ts_ns, c)
                        .note(format!(
                            "first occurrence at t={}ns on channel {}",
                            p.ts_ns, p.channel
                        ))
                        .help(
                            "two nodes claim the same work unsynchronized — check job \
                             assignment and channel attribution",
                        ),
                    );
                }
            }
        }
        seen.entry((token, param)).or_default().push(occ);
    }

    // Pass 2: check every proven edge instance by timestamp. The first
    // pass can miss inverted edges (the effect scans before its cause
    // exists), so the ordering check runs over the completed index.
    for o in orders {
        for (&(token, param), effects) in &seen {
            if token != o.effect {
                continue;
            }
            match seen.get(&(o.cause, param)) {
                None => stats.unmatched_effects += 1,
                Some(causes) => {
                    for eff in effects {
                        // Global: the earliest occurrence system-wide is
                        // the real sender. Per-channel: the cause must
                        // have fired on the effect's own channel.
                        let cause = match o.scope {
                            OrderScope::Global => Some(&causes[0]),
                            OrderScope::PerChannel => {
                                causes.iter().find(|c| c.channel == eff.channel)
                            }
                        };
                        let Some(cause) = cause else {
                            stats.unmatched_effects += 1;
                            continue;
                        };
                        stats.edges_checked += 1;
                        if cause.ts_ns > eff.ts_ns {
                            report.push(
                                Diagnostic::error(
                                    "AN-HB-001",
                                    format!(
                                        "ordering violation: proven order \"{}\" broken \
                                         for job id {param} — cause token 0x{:04x} at \
                                         t={}ns is later than effect token 0x{:04x} at \
                                         t={}ns",
                                        o.name, o.cause, cause.ts_ns, o.effect, eff.ts_ns
                                    ),
                                )
                                .at_sim(eff.ts_ns, eff.channel)
                                .note(o.why)
                                .help(
                                    "a legal execution cannot produce this trace — check \
                                     recorder clock calibration and channel attribution",
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    (report, stats)
}

/// Validates a trace against proven orders, folding the statistics into
/// the report (an `info` diagnostic when clean).
pub fn validate_orders(trace: &Trace, orders: &[ProvenOrder]) -> Report {
    let (mut report, stats) = analyze_trace(trace, orders);
    if report.is_clean() {
        report.push(Diagnostic::info(
            "AN-HB-001",
            format!(
                "all proven orderings hold: {} edge instance(s) checked across {} events \
                 ({} unmatched by event loss)",
                stats.edges_checked, stats.events, stats.unmatched_effects
            ),
        ));
    }
    report
}

/// Componentwise `a <= b`.
fn leq(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::proven_orders;
    use raysim::config::{AppConfig, Version};
    use raysim::tokens;
    use simple::Event;

    fn ev(ts: u64, channel: usize, token: u16, param: u32) -> Event {
        Event::new(ts, channel, token, param)
    }

    fn healthy_trace() -> Trace {
        // Master on channel 0, servant on channel 1; two jobs.
        Trace::from_unsorted(vec![
            ev(100, 0, tokens::SEND_JOBS_BEGIN, 1),
            ev(200, 1, tokens::WORK_BEGIN, 1),
            ev(250, 0, tokens::SEND_JOBS_BEGIN, 2),
            ev(300, 1, tokens::SEND_RESULTS_BEGIN, 1),
            ev(400, 0, tokens::RECEIVE_RESULTS_BEGIN, 1),
            ev(450, 1, tokens::WORK_BEGIN, 2),
            ev(500, 1, tokens::SEND_RESULTS_BEGIN, 2),
            ev(600, 0, tokens::RECEIVE_RESULTS_BEGIN, 2),
        ])
    }

    #[test]
    fn healthy_trace_validates_cleanly() {
        let orders = proven_orders(&AppConfig::version(Version::V4));
        let (report, stats) = analyze_trace(&healthy_trace(), &orders);
        assert!(report.is_clean(), "{}", report.render());
        assert!(stats.edges_checked >= 8, "edges: {}", stats.edges_checked);
        assert_eq!(stats.unmatched_effects, 0);
        let validated = validate_orders(&healthy_trace(), &orders);
        assert!(validated.contains("AN-HB-001"));
        assert!(!validated.has_errors());
    }

    #[test]
    fn inverted_edge_is_an_ordering_violation() {
        // Work "begins" before the job was ever sent.
        let trace = Trace::from_unsorted(vec![
            ev(100, 1, tokens::WORK_BEGIN, 7),
            ev(200, 0, tokens::SEND_JOBS_BEGIN, 7),
            ev(300, 1, tokens::SEND_RESULTS_BEGIN, 7),
            ev(400, 0, tokens::RECEIVE_RESULTS_BEGIN, 7),
        ]);
        let orders = proven_orders(&AppConfig::version(Version::V4));
        let (report, _) = analyze_trace(&trace, &orders);
        assert!(report.has_errors());
        assert!(report.contains("AN-HB-001"));
        let f = report
            .findings
            .iter()
            .find(|f| f.code == "AN-HB-001")
            .unwrap();
        assert!(f.message.contains("job-sent-before-work"), "{}", f.message);
    }

    #[test]
    fn concurrent_duplicate_is_a_race() {
        // The same work, same job id, on two channels with no
        // happens-before path between them.
        let trace = Trace::from_unsorted(vec![
            ev(100, 0, tokens::SEND_JOBS_BEGIN, 3),
            ev(200, 1, tokens::WORK_BEGIN, 3),
            ev(210, 2, tokens::WORK_BEGIN, 3),
            ev(400, 0, tokens::RECEIVE_RESULTS_BEGIN, 3),
        ]);
        let orders = proven_orders(&AppConfig::version(Version::V1));
        let (report, _) = analyze_trace(&trace, &orders);
        assert!(report.contains("AN-HB-002"), "{}", report.render());
    }

    #[test]
    fn event_loss_counts_unmatched_but_stays_clean() {
        // The send was lost upstream (FIFO overload): not a violation.
        let trace = Trace::from_unsorted(vec![ev(200, 1, tokens::WORK_BEGIN, 9)]);
        let orders = proven_orders(&AppConfig::version(Version::V1));
        let (report, stats) = analyze_trace(&trace, &orders);
        assert!(report.is_clean());
        assert_eq!(stats.unmatched_effects, 1);
    }

    const EXCHANGE: u16 = 0x0401;
    const COMPUTE: u16 = 0x0402;

    fn spmd_order() -> Vec<ProvenOrder> {
        vec![ProvenOrder::per_channel(
            "exchange-before-compute",
            EXCHANGE,
            COMPUTE,
            "a worker relaxes its strip only after exchanging boundaries",
        )]
    }

    #[test]
    fn per_channel_spmd_duplicates_are_not_races() {
        // Every worker hits the same (token, iteration) pair — the SPMD
        // shape. Per-channel scope matches within each worker's channel
        // and never diagnoses the cross-channel repetition.
        let trace = Trace::from_unsorted(vec![
            ev(100, 1, EXCHANGE, 0),
            ev(110, 2, EXCHANGE, 0),
            ev(200, 1, COMPUTE, 0),
            ev(210, 2, COMPUTE, 0),
        ]);
        let (report, stats) = analyze_trace(&trace, &spmd_order());
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(stats.edges_checked, 2);
        assert_eq!(stats.unmatched_effects, 0);
    }

    #[test]
    fn per_channel_inversion_is_still_a_violation() {
        // Worker 2's compute precedes its own exchange — a violation
        // within the channel even though worker 1 is healthy.
        let trace = Trace::from_unsorted(vec![
            ev(100, 1, EXCHANGE, 0),
            ev(150, 2, COMPUTE, 0),
            ev(200, 1, COMPUTE, 0),
            ev(300, 2, EXCHANGE, 0),
        ]);
        let (report, _) = analyze_trace(&trace, &spmd_order());
        assert!(report.has_errors());
        assert!(report.contains("AN-HB-001"));
    }

    #[test]
    fn per_channel_effect_without_local_cause_is_unmatched() {
        // Worker 3 computed without ever exchanging on its own channel
        // (its exchange event was lost): counted, not diagnosed.
        let trace = Trace::from_unsorted(vec![
            ev(100, 1, EXCHANGE, 0),
            ev(200, 1, COMPUTE, 0),
            ev(250, 3, COMPUTE, 0),
        ]);
        let (report, stats) = analyze_trace(&trace, &spmd_order());
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(stats.edges_checked, 1);
        assert_eq!(stats.unmatched_effects, 1);
    }

    #[test]
    fn equal_timestamps_are_tolerated() {
        // Quantized clocks can collapse cause and effect onto one tick;
        // only a strictly earlier effect is a violation.
        let trace = Trace::from_unsorted(vec![
            ev(100, 0, tokens::SEND_JOBS_BEGIN, 4),
            ev(100, 1, tokens::WORK_BEGIN, 4),
        ]);
        let orders = proven_orders(&AppConfig::version(Version::V1));
        let (report, _) = analyze_trace(&trace, &orders);
        assert!(report.is_clean(), "{}", report.render());
    }
}
