//! The message-race explorer: DPOR (persistent sets + sleep sets) over
//! the kernel/mailbox interleaving space, surfacing the schedule-
//! dependent behaviour monitoring must expect — with a concrete,
//! replayable witness interleaving for every finding.
//!
//! The scheduler model ([`crate::model::sched`]) proves effective
//! synchrony under non-preemptive round-robin; this module asks the
//! complementary question: *which message orderings are actually
//! possible under an arbitrary scheduler?* Four race classes are
//! checked, each a state-local predicate evaluated on the transition
//! that completes the race (so partial-order reduction cannot hide
//! one — every transition is explored from some representative
//! interleaving):
//!
//! * **AN-RACE-001, mailbox receive-race** — at the moment a mailbox
//!   accepts a message, another message for the same receiver is
//!   already in flight from a different sender: the accept order is
//!   not fixed by the happens-before relation, so the receiver's view
//!   is schedule-dependent. Blocking sends make this impossible in the
//!   master/servant shapes (one sender per mailbox, serialized by the
//!   send itself); the SPMD shape exhibits it, and the per-worker
//!   [`OrderScope::PerChannel`] scope suppresses the benign case where
//!   every worker's result is independent.
//! * **AN-RACE-002, lost wakeup** — a process observes its inbox empty
//!   and commits to sleep, but a message was delivered between the
//!   check and the sleep: the wakeup is dropped. Blocking receives are
//!   modeled **two-phase** (observe-empty, then commit) precisely to
//!   expose this window; non-preemptive round-robin closes it (the
//!   process holds the CPU through both phases), full preemption does
//!   not.
//! * **AN-RACE-003, lost signal** — the signal/wait twin of 002: a
//!   signal is raised between a waiter's zero-check and its sleep
//!   commit, so the waiter sleeps on a nonzero count.
//! * **AN-RACE-004, nondeterministic monitoring interleaving** — a
//!   mailbox accept lands while a user process on the accepting node
//!   is mid-compute: the trace a monitor records for that window
//!   depends on the schedule (effective synchrony's SYNC-2, viewed as
//!   a race the instrumentation would observe).
//!
//! The explorer is a depth-first search with **sleep sets** layered on
//! the same singleton-ample reduction the scheduler model uses: a
//! transition explored from one interleaving is put to sleep in its
//! independent siblings' subtrees, and a state is re-explored only
//! when reached with a sleep set that is not a superset of one already
//! explored. Every witness carries both rendered step labels and the
//! structured schedule ([`RaceWitness::schedule`]) so it can be
//! replayed ([`RaceModel::replay`]) and cross-checked against the
//! vector-clock happens-before engine ([`hb_crosscheck`]).

use std::collections::{BTreeSet, HashMap};
use std::sync::{Mutex, OnceLock};

use raysim::config::AppConfig;
use simple::{Event, Trace};

use crate::diag::{Diagnostic, Report};
use crate::hb::analyze_trace;
use crate::model::{ModelBudget, OrderScope, ProvenOrder};

/// A message: job or result, with an id and the sending process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Msg {
    /// 0 = job, 1 = result.
    kind: u8,
    id: u8,
    from: u8,
}

impl Msg {
    fn describe(self) -> String {
        let kind = if self.kind == 0 { "job" } else { "result" };
        format!("{kind} #{}", self.id)
    }
}

/// One step of a process script.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Send `msg` to process `to` (blocks until accepted — at most one
    /// message per sender is ever in flight).
    Send { to: u8, msg: Msg },
    /// Receive from this process's inbox. Blocking is two-phase: an
    /// observe-empty step, then a commit-to-sleep step.
    Recv,
    /// Compute for two model steps (a mid-compute window).
    Compute,
    /// Raise a signal for process `p`.
    Signal { p: u8 },
    /// Wait for a signal; blocking is two-phase like [`Op::Recv`].
    WaitSignal,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Status {
    Ready,
    /// Observed an empty inbox; will sleep at its next step unless the
    /// scheduler kept the check-then-sleep sequence atomic.
    CommitRecv,
    /// Observed a zero signal count; will sleep at its next step.
    CommitSig,
    BlockedSend(Msg),
    BlockedRecv,
    BlockedSig,
    Done,
}

impl Status {
    /// May this process be given a CPU?
    fn runnable(self) -> bool {
        matches!(self, Status::Ready | Status::CommitRecv | Status::CommitSig)
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Proc {
    pc: u8,
    status: Status,
    mid: bool,
    sig: u8,
    inbox: Vec<Msg>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Cpu {
    Idle,
    User(u8),
    Mailbox,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    procs: Vec<Proc>,
    /// Sent but not yet arrived: `(msg, dst proc)`, kept sorted.
    transit: Vec<(Msg, u8)>,
    /// Per node: arrived messages awaiting accept, FIFO.
    pending: Vec<Vec<(Msg, u8)>>,
    cpu: Vec<Cpu>,
}

/// A transition's identity — stable across independent reorderings, so
/// sleep sets can match "the same transition" after a commuted step.
/// `node` and `proc_`/`from`/`to` fields index the model's nodes and
/// cast respectively; a message is identified by its sender (blocking
/// sends keep at most one message per sender in flight).
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tid {
    /// An in-transit message reaches its destination node's mailbox.
    Arrive { msg_id: u8, kind: u8, from: u8 },
    /// An idle CPU dispatches a runnable user process.
    Dispatch { proc_: u8 },
    /// An idle CPU dispatches its mailbox LWP.
    DispatchMailbox { node: u8 },
    /// The mailbox LWP seizes the CPU from the running user process.
    PreemptMailbox { node: u8, from: u8 },
    /// Another runnable user process seizes the CPU.
    PreemptUser { node: u8, from: u8, to: u8 },
    /// The running user process executes its next step.
    Step { proc_: u8 },
    /// The mailbox LWP accepts its oldest pending message.
    Accept { node: u8 },
}

/// A race observed on a transition.
#[derive(Debug, Clone)]
struct Hit {
    code: &'static str,
    /// The two processes whose operations are unordered.
    pair: (u8, u8),
}

/// One enabled transition: identity, successor, label, races fired.
struct Trans {
    tid: Tid,
    next: State,
    label: String,
    hits: Vec<Hit>,
}

/// A concrete interleaving witnessing a race, replayable against the
/// model and checkable against the happens-before engine.
#[derive(Debug, Clone)]
pub struct RaceWitness {
    /// The race class (`AN-RACE-001`..`004`).
    pub code: &'static str,
    /// Rendered step labels, ending at the racing transition.
    pub steps: Vec<String>,
    /// The schedule: one transition identity per step, in order —
    /// [`RaceModel::replay`] re-executes it deterministically.
    pub schedule: Vec<Tid>,
    /// The two processes whose operations the schedule leaves
    /// unordered (indices into the model's cast).
    pub pair: (u8, u8),
}

/// What exploring the race model concluded.
#[derive(Debug, Clone)]
pub struct RaceVerdict {
    /// Distinct states visited.
    pub states: usize,
    /// `true` when the state budget cut the exploration short.
    pub bounded: bool,
    /// Transitions skipped by sleep sets (the reduction at work).
    pub sleep_skips: usize,
    /// Mailbox accepts examined.
    pub accepts_checked: usize,
    /// First witness per race class, in code order.
    pub witnesses: Vec<RaceWitness>,
    /// Total race occurrences per class (a witness is kept only for
    /// the first).
    pub occurrences: HashMap<&'static str, usize>,
    /// Receive-races observed but suppressed by
    /// [`OrderScope::PerChannel`] (the benign SPMD shape).
    pub suppressed_receive_races: usize,
    /// `true` when a state with every process finished is reachable.
    pub completion_reachable: bool,
}

impl RaceVerdict {
    /// The witness for `code`, if that race class was observed.
    pub fn witness(&self, code: &str) -> Option<&RaceWitness> {
        self.witnesses.iter().find(|w| w.code == code)
    }

    /// `true` when no race of any class was observed (suppressed
    /// receive-races do not count — they are the declared-benign case).
    pub fn race_free(&self) -> bool {
        self.witnesses.is_empty()
    }
}

/// The bounded scope: a fixed cast of processes on a handful of nodes,
/// a scheduler toggle, and the order scope governing receive-race
/// suppression.
#[derive(Debug, Clone)]
pub struct RaceModel {
    node_of: Vec<u8>,
    names: Vec<&'static str>,
    scripts: Vec<Vec<Op>>,
    nodes: usize,
    /// Fully preemptive scheduler: the mailbox LWP *and* any runnable
    /// user process may seize a CPU. `false` models the machine's
    /// non-preemptive round-robin.
    pub preemptive: bool,
    /// Receive-race suppression scope: [`OrderScope::PerChannel`]
    /// declares cross-sender interleaving at a shared mailbox benign.
    pub scope: OrderScope,
}

impl RaceModel {
    /// The master/servant shape of a program version: the same cast as
    /// the scheduler model (master + servant + the version's
    /// communication agents), two jobs under window flow control.
    pub fn version_shape(master_agents: bool, servant_agents: bool, preemptive: bool) -> RaceModel {
        let mut node_of = vec![0u8, 1u8];
        let mut names = vec!["the master", "the servant"];
        let mut next = 2u8;
        let magent = if master_agents {
            node_of.push(0);
            names.push("the master's send agent");
            next += 1;
            Some(next - 1)
        } else {
            None
        };
        let sagent = if servant_agents {
            node_of.push(1);
            names.push("the servant's result agent");
            Some(next)
        } else {
            None
        };

        let job = |i: u8, from: u8| Msg {
            kind: 0,
            id: i,
            from,
        };
        let result = |i: u8, from: u8| Msg {
            kind: 1,
            id: i,
            from,
        };

        let mut scripts: Vec<Vec<Op>> = Vec::new();
        let mut master = Vec::new();
        if let Some(ma) = magent {
            master.extend([Op::Signal { p: ma }, Op::Signal { p: ma }]);
        } else {
            for i in 0..2u8 {
                master.push(Op::Send {
                    to: 1,
                    msg: job(i, 0),
                });
            }
        }
        master.extend([Op::Compute, Op::Recv, Op::Compute, Op::Recv]);
        scripts.push(master);

        let mut servant = Vec::new();
        for i in 0..2u8 {
            servant.extend([Op::Recv, Op::Compute]);
            if let Some(sa) = sagent {
                servant.push(Op::Signal { p: sa });
            } else {
                servant.push(Op::Send {
                    to: 0,
                    msg: result(i, 1),
                });
            }
        }
        scripts.push(servant);

        if let Some(ma) = magent {
            let mut agent = Vec::new();
            for i in 0..2u8 {
                agent.push(Op::WaitSignal);
                agent.push(Op::Send {
                    to: 1,
                    msg: job(i, ma),
                });
            }
            scripts.push(agent);
        }
        if let Some(sa) = sagent {
            let mut agent = Vec::new();
            for i in 0..2u8 {
                agent.push(Op::WaitSignal);
                agent.push(Op::Send {
                    to: 0,
                    msg: result(i, sa),
                });
            }
            scripts.push(agent);
        }

        RaceModel {
            node_of,
            names,
            scripts,
            nodes: 2,
            preemptive,
            scope: OrderScope::Global,
        }
    }

    /// The SPMD shape: two workers on their own nodes, each sending
    /// its result to a collector's mailbox — the multi-sender mailbox
    /// whose accept order no happens-before edge fixes. The receive-
    /// race is real under *any* scheduler; whether it is reported
    /// depends on [`RaceModel::scope`].
    pub fn spmd_shape(preemptive: bool, scope: OrderScope) -> RaceModel {
        let result = |i: u8, from: u8| Msg {
            kind: 1,
            id: i,
            from,
        };
        RaceModel {
            node_of: vec![0, 1, 2],
            names: vec!["the collector", "worker 1", "worker 2"],
            scripts: vec![
                vec![Op::Recv, Op::Recv],
                vec![
                    Op::Compute,
                    Op::Send {
                        to: 0,
                        msg: result(0, 1),
                    },
                ],
                vec![
                    Op::Compute,
                    Op::Send {
                        to: 0,
                        msg: result(1, 2),
                    },
                ],
            ],
            nodes: 3,
            preemptive,
            scope,
        }
    }

    fn initial(&self) -> State {
        State {
            procs: self
                .scripts
                .iter()
                .map(|_| Proc {
                    pc: 0,
                    status: Status::Ready,
                    mid: false,
                    sig: 0,
                    inbox: Vec::new(),
                })
                .collect(),
            transit: Vec::new(),
            pending: vec![Vec::new(); self.nodes],
            cpu: vec![Cpu::Idle; self.nodes],
        }
    }

    /// Per process and pc, the bitmask of nodes targeted by sends at
    /// or after that pc (for the preemptive ample-set condition).
    fn future_send_masks(&self) -> Vec<Vec<u8>> {
        self.scripts
            .iter()
            .map(|script| {
                let mut masks = vec![0u8; script.len() + 1];
                for (i, op) in script.iter().enumerate().rev() {
                    masks[i] = masks[i + 1]
                        | match op {
                            Op::Send { to, .. } => 1 << self.node_of[*to as usize],
                            _ => 0,
                        };
                }
                masks
            })
            .collect()
    }

    /// All enabled transitions of `s`, in a fixed deterministic order.
    fn enabled(&self, s: &State) -> Vec<Trans> {
        let mut out: Vec<Trans> = Vec::new();
        let node_of = |p: usize| self.node_of[p] as usize;

        for (i, &(msg, dst)) in s.transit.iter().enumerate() {
            let n = node_of(dst as usize);
            let mut t = s.clone();
            t.transit.remove(i);
            t.pending[n].push((msg, dst));
            out.push(Trans {
                tid: Tid::Arrive {
                    msg_id: msg.id,
                    kind: msg.kind,
                    from: msg.from,
                },
                next: t,
                label: format!("{} arrives at node {n}'s mailbox", msg.describe()),
                hits: Vec::new(),
            });
        }

        for n in 0..s.cpu.len() {
            match s.cpu[n] {
                Cpu::Idle => {
                    for (p, proc) in s.procs.iter().enumerate() {
                        if node_of(p) == n && proc.status.runnable() {
                            let mut t = s.clone();
                            t.cpu[n] = Cpu::User(p as u8);
                            out.push(Trans {
                                tid: Tid::Dispatch { proc_: p as u8 },
                                next: t,
                                label: format!("node {n} dispatches {}", self.names[p]),
                                hits: Vec::new(),
                            });
                        }
                    }
                    if !s.pending[n].is_empty() {
                        let mut t = s.clone();
                        t.cpu[n] = Cpu::Mailbox;
                        out.push(Trans {
                            tid: Tid::DispatchMailbox { node: n as u8 },
                            next: t,
                            label: format!("node {n} dispatches its mailbox LWP"),
                            hits: Vec::new(),
                        });
                    }
                }
                Cpu::User(p) => {
                    let p = p as usize;
                    if self.preemptive {
                        if !s.pending[n].is_empty() {
                            let mut t = s.clone();
                            t.cpu[n] = Cpu::Mailbox;
                            out.push(Trans {
                                tid: Tid::PreemptMailbox {
                                    node: n as u8,
                                    from: p as u8,
                                },
                                next: t,
                                label: format!(
                                    "node {n}'s mailbox LWP preempts {}{}",
                                    self.names[p],
                                    if s.procs[p].mid { " mid-compute" } else { "" }
                                ),
                                hits: Vec::new(),
                            });
                        }
                        for (q, proc) in s.procs.iter().enumerate() {
                            if q != p && node_of(q) == n && proc.status.runnable() {
                                let mut t = s.clone();
                                t.cpu[n] = Cpu::User(q as u8);
                                out.push(Trans {
                                    tid: Tid::PreemptUser {
                                        node: n as u8,
                                        from: p as u8,
                                        to: q as u8,
                                    },
                                    next: t,
                                    label: format!(
                                        "{} preempts {} on node {n}",
                                        self.names[q], self.names[p]
                                    ),
                                    hits: Vec::new(),
                                });
                            }
                        }
                    }
                    out.push(self.step(s, n, p));
                }
                Cpu::Mailbox => {
                    out.push(self.accept(s, n));
                }
            }
        }

        out
    }

    /// The mailbox LWP accepts the oldest pending message on node `n`,
    /// checking the receive-race and monitoring-interleaving
    /// predicates on the way.
    fn accept(&self, s: &State, n: usize) -> Trans {
        let (msg, dst) = s.pending[n][0];
        let mut hits = Vec::new();

        // AN-RACE-001: another message for the same receiver is already
        // in flight from a different sender — the accept order is
        // schedule-dependent. (Blocking sends mean one in-flight
        // message per sender, so a second message to `dst` is always
        // another sender's.)
        let rival = s.pending[n][1..]
            .iter()
            .chain(s.transit.iter())
            .find(|&&(m, d)| d == dst && m.from != msg.from);
        if let Some(&(rival, _)) = rival {
            hits.push(Hit {
                code: "AN-RACE-001",
                pair: (msg.from, rival.from),
            });
        }

        // AN-RACE-004: the accept lands while a user process on this
        // node is mid-compute — the recorded interleaving depends on
        // the schedule.
        if let Some((q, _)) = s
            .procs
            .iter()
            .enumerate()
            .find(|&(q, proc)| self.node_of[q] as usize == n && proc.mid)
        {
            hits.push(Hit {
                code: "AN-RACE-004",
                pair: (msg.from, q as u8),
            });
        }

        let mut t = s.clone();
        t.pending[n].remove(0);
        t.procs[dst as usize].inbox.push(msg);
        // Only a process already asleep is woken; one still between its
        // empty-check and its sleep commit misses the wakeup — that is
        // the AN-RACE-002 window, detected at its commit step.
        if t.procs[dst as usize].status == Status::BlockedRecv {
            t.procs[dst as usize].status = Status::Ready;
        }
        if t.procs[msg.from as usize].status == Status::BlockedSend(msg) {
            t.procs[msg.from as usize].status = Status::Ready;
        }
        t.cpu[n] = Cpu::Idle;
        Trans {
            tid: Tid::Accept { node: n as u8 },
            next: t,
            label: format!(
                "node {n}'s mailbox accepts {} for {} (sender {} unblocks)",
                msg.describe(),
                self.names[dst as usize],
                self.names[msg.from as usize]
            ),
            hits,
        }
    }

    /// One step of user process `p` running on node `n`.
    fn step(&self, s: &State, n: usize, p: usize) -> Trans {
        let mut t = s.clone();
        let name = self.names[p];
        let mut hits = Vec::new();

        // Commit phases of the two-phase blocking operations come
        // first: the process promised to sleep and now does, whatever
        // happened in between.
        match t.procs[p].status {
            Status::CommitRecv => {
                let lost = !t.procs[p].inbox.is_empty();
                if lost {
                    // AN-RACE-002: a message was delivered between the
                    // empty-check and this sleep commit; its wakeup
                    // went to nobody.
                    let from = t.procs[p].inbox[0].from;
                    hits.push(Hit {
                        code: "AN-RACE-002",
                        pair: (p as u8, from),
                    });
                }
                t.procs[p].status = Status::BlockedRecv;
                t.cpu[n] = Cpu::Idle;
                let label = if lost {
                    format!(
                        "{name} commits to sleep although a message is already in its \
                         inbox — the wakeup is lost (AN-RACE-002)"
                    )
                } else {
                    format!("{name} commits to sleep awaiting a message")
                };
                return Trans {
                    tid: Tid::Step { proc_: p as u8 },
                    next: t,
                    label,
                    hits,
                };
            }
            Status::CommitSig => {
                let lost = t.procs[p].sig > 0;
                if lost {
                    hits.push(Hit {
                        code: "AN-RACE-003",
                        pair: (p as u8, self.signaler_of(p)),
                    });
                }
                t.procs[p].status = Status::BlockedSig;
                t.cpu[n] = Cpu::Idle;
                let label = if lost {
                    format!(
                        "{name} commits to sleep although its signal count is nonzero — \
                         the signal is lost (AN-RACE-003)"
                    )
                } else {
                    format!("{name} commits to sleep awaiting a signal")
                };
                return Trans {
                    tid: Tid::Step { proc_: p as u8 },
                    next: t,
                    label,
                    hits,
                };
            }
            _ => {}
        }

        let pc = t.procs[p].pc as usize;
        if pc >= self.scripts[p].len() {
            t.procs[p].status = Status::Done;
            t.cpu[n] = Cpu::Idle;
            return Trans {
                tid: Tid::Step { proc_: p as u8 },
                next: t,
                label: format!("{name} finishes and exits"),
                hits,
            };
        }

        let label = match self.scripts[p][pc] {
            Op::Send { to, msg } => {
                t.procs[p].pc += 1;
                t.procs[p].status = Status::BlockedSend(msg);
                t.transit.push((msg, to));
                t.transit.sort_unstable();
                t.cpu[n] = Cpu::Idle;
                format!(
                    "{name} sends {} to {} and blocks until it is accepted",
                    msg.describe(),
                    self.names[to as usize]
                )
            }
            Op::Recv => {
                if t.procs[p].inbox.is_empty() {
                    // Phase one: observe empty. The CPU is kept — only
                    // preemption can separate this from the commit.
                    t.procs[p].status = Status::CommitRecv;
                    format!("{name} finds its inbox empty and prepares to sleep")
                } else {
                    let msg = t.procs[p].inbox.remove(0);
                    t.procs[p].pc += 1;
                    format!("{name} receives {}", msg.describe())
                }
            }
            Op::Compute => {
                if t.procs[p].mid {
                    t.procs[p].mid = false;
                    t.procs[p].pc += 1;
                    format!("{name} finishes computing")
                } else {
                    t.procs[p].mid = true;
                    format!("{name} starts computing")
                }
            }
            Op::Signal { p: q } => {
                let q = q as usize;
                t.procs[p].pc += 1;
                t.procs[q].sig += 1;
                // Only a waiter already asleep is woken; one between
                // its zero-check and its sleep commit misses the
                // signal — the AN-RACE-003 window.
                if t.procs[q].status == Status::BlockedSig {
                    t.procs[q].status = Status::Ready;
                }
                format!("{name} signals {}", self.names[q])
            }
            Op::WaitSignal => {
                if t.procs[p].sig > 0 {
                    t.procs[p].sig -= 1;
                    t.procs[p].pc += 1;
                    format!("{name} consumes a signal")
                } else {
                    t.procs[p].status = Status::CommitSig;
                    format!("{name} finds no signal pending and prepares to sleep")
                }
            }
        };
        Trans {
            tid: Tid::Step { proc_: p as u8 },
            next: t,
            label,
            hits,
        }
    }

    /// The process whose `Signal` targets `p` (for the AN-RACE-003
    /// pair; scripts are static so the signaler is unique).
    fn signaler_of(&self, p: usize) -> u8 {
        for (q, script) in self.scripts.iter().enumerate() {
            for op in script {
                if let Op::Signal { p: tgt } = op {
                    if *tgt as usize == p {
                        return q as u8;
                    }
                }
            }
        }
        p as u8
    }

    /// The resources a transition touches: (process mask, node mask,
    /// touches-transit). Two transitions are independent when their
    /// resource sets are disjoint.
    fn touches(&self, s: &State, tid: Tid) -> (u32, u8, bool) {
        match tid {
            Tid::Arrive { from, .. } => {
                // The shared transit pool plus the destination node's
                // pending queue; blocking sends make `from` identify
                // the message uniquely.
                let node = s
                    .transit
                    .iter()
                    .find(|&&(m, _)| m.from == from)
                    .map(|&(_, d)| self.node_of[d as usize])
                    .unwrap_or(0);
                (0, 1 << node, true)
            }
            Tid::Dispatch { proc_ } => (1 << proc_, 1 << self.node_of[proc_ as usize], false),
            Tid::DispatchMailbox { node } => (0, 1 << node, false),
            Tid::PreemptMailbox { node, from } => (1 << from, 1 << node, false),
            Tid::PreemptUser { node, from, to } => ((1 << from) | (1 << to), 1 << node, false),
            Tid::Step { proc_ } => {
                let p = proc_ as usize;
                let mut procs = 1u32 << proc_;
                let mut transit = false;
                if s.procs[p].status == Status::Ready {
                    match self.scripts[p].get(s.procs[p].pc as usize) {
                        Some(Op::Send { .. }) => transit = true,
                        Some(Op::Signal { p: q }) => procs |= 1 << q,
                        _ => {}
                    }
                }
                (procs, 1 << self.node_of[p], transit)
            }
            Tid::Accept { node } => {
                let n = node as usize;
                let procs = s.pending[n]
                    .first()
                    .map(|&(m, d)| (1u32 << d) | (1 << m.from))
                    .unwrap_or(0);
                (procs, 1 << node, false)
            }
        }
    }

    fn independent(&self, s: &State, a: Tid, b: Tid) -> bool {
        let (pa, na, ta) = self.touches(s, a);
        let (pb, nb, tb) = self.touches(s, b);
        pa & pb == 0 && na & nb == 0 && !(ta && tb)
    }

    /// The singleton ample set, mirroring the scheduler model's: the
    /// running user process's next step, when provably independent of
    /// everything other processes could do first. Under preemption the
    /// step additionally races with preemptions of its own CPU, so the
    /// singleton needs the node message-isolated *and* no other
    /// runnable process on it.
    fn ample(&self, s: &State, send_masks: &[Vec<u8>]) -> Option<(usize, usize)> {
        for n in 0..s.cpu.len() {
            let Cpu::User(p) = s.cpu[n] else { continue };
            let p = p as usize;
            let local = match (
                s.procs[p].status,
                self.scripts[p].get(s.procs[p].pc as usize),
            ) {
                (Status::Ready, Some(Op::Signal { p: q })) => {
                    self.node_of[*q as usize] as usize == n
                }
                _ => true,
            };
            if !local {
                continue;
            }
            let safe = !self.preemptive
                || (s.pending[n].is_empty()
                    && s.transit
                        .iter()
                        .all(|&(_, dst)| self.node_of[dst as usize] as usize != n)
                    && s.procs.iter().enumerate().all(|(q, proc)| {
                        proc.status == Status::Done
                            || send_masks[q][(proc.pc as usize).min(self.scripts[q].len())]
                                & (1 << n)
                                == 0
                    })
                    && s.procs.iter().enumerate().all(|(q, proc)| {
                        q == p || self.node_of[q] as usize != n || !proc.status.runnable()
                    }));
            if safe {
                return Some((n, p));
            }
        }
        None
    }

    /// Explores the interleaving space (DFS, sleep sets over the ample
    /// reduction), up to `max_states` distinct states.
    pub fn explore(&self, max_states: usize) -> RaceVerdict {
        self.explore_mode(max_states, true)
    }

    /// Explores without any reduction — every enabled transition from
    /// every state, plain visited-set DFS. The differential oracle the
    /// soundness tests compare [`RaceModel::explore`] against.
    pub fn explore_full(&self, max_states: usize) -> RaceVerdict {
        self.explore_mode(max_states, false)
    }

    fn explore_mode(&self, max_states: usize, reduced: bool) -> RaceVerdict {
        let send_masks = self.future_send_masks();
        let mut verdict = RaceVerdict {
            states: 0,
            bounded: false,
            sleep_skips: 0,
            accepts_checked: 0,
            witnesses: Vec::new(),
            occurrences: HashMap::new(),
            suppressed_receive_races: 0,
            completion_reachable: false,
        };
        // Sleep sets already explored per state; a new visit explores
        // only if its sleep set is not a superset of a recorded one.
        let mut visited: HashMap<State, Vec<BTreeSet<Tid>>> = HashMap::new();
        let mut path: Vec<(Tid, String)> = Vec::new();
        self.dfs(
            self.initial(),
            BTreeSet::new(),
            &send_masks,
            max_states,
            reduced,
            &mut visited,
            &mut path,
            &mut verdict,
        );
        verdict.states = visited.len();
        verdict
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        s: State,
        sleep: BTreeSet<Tid>,
        send_masks: &[Vec<u8>],
        max_states: usize,
        reduced: bool,
        visited: &mut HashMap<State, Vec<BTreeSet<Tid>>>,
        path: &mut Vec<(Tid, String)>,
        verdict: &mut RaceVerdict,
    ) {
        if visited.len() >= max_states {
            verdict.bounded = true;
            return;
        }
        if s.procs.iter().all(|p| p.status == Status::Done) {
            verdict.completion_reachable = true;
        }
        match visited.get_mut(&s) {
            Some(sleeps) => {
                if sleeps.iter().any(|old| old.is_subset(&sleep)) {
                    return;
                }
                sleeps.push(sleep.clone());
            }
            None => {
                visited.insert(s.clone(), vec![sleep.clone()]);
            }
        }

        let trans = self.enabled(&s);
        let chosen: Vec<usize> = match if reduced {
            self.ample(&s, send_masks)
        } else {
            None
        } {
            Some((_, p)) => {
                let want = Tid::Step { proc_: p as u8 };
                trans
                    .iter()
                    .position(|t| t.tid == want)
                    .map(|i| vec![i])
                    .unwrap_or_else(|| (0..trans.len()).collect())
            }
            None => (0..trans.len()).collect(),
        };

        let mut cur_sleep = sleep;
        for i in chosen {
            let t = &trans[i];
            if reduced && cur_sleep.contains(&t.tid) {
                verdict.sleep_skips += 1;
                continue;
            }
            if matches!(t.tid, Tid::Accept { .. }) {
                verdict.accepts_checked += 1;
            }
            for hit in &t.hits {
                self.record(hit, t, path, verdict);
            }
            let child_sleep: BTreeSet<Tid> = if reduced {
                cur_sleep
                    .iter()
                    .filter(|&&u| self.independent(&s, u, t.tid))
                    .copied()
                    .collect()
            } else {
                BTreeSet::new()
            };
            path.push((t.tid, t.label.clone()));
            self.dfs(
                t.next.clone(),
                child_sleep,
                send_masks,
                max_states,
                reduced,
                visited,
                path,
                verdict,
            );
            path.pop();
            if reduced {
                cur_sleep.insert(t.tid);
            }
        }
    }

    /// Records a race hit: counts every occurrence, keeps a witness
    /// for the first of each class (per-channel receive-races are
    /// suppressed — counted separately, never reported).
    fn record(&self, hit: &Hit, t: &Trans, path: &[(Tid, String)], verdict: &mut RaceVerdict) {
        if hit.code == "AN-RACE-001" && self.scope == OrderScope::PerChannel {
            verdict.suppressed_receive_races += 1;
            return;
        }
        *verdict.occurrences.entry(hit.code).or_insert(0) += 1;
        if verdict.witness(hit.code).is_none() {
            let mut steps: Vec<String> = path.iter().map(|(_, l)| l.clone()).collect();
            steps.push(t.label.clone());
            let mut schedule: Vec<Tid> = path.iter().map(|(tid, _)| *tid).collect();
            schedule.push(t.tid);
            verdict.witnesses.push(RaceWitness {
                code: hit.code,
                steps,
                schedule,
                pair: hit.pair,
            });
            verdict.witnesses.sort_by_key(|w| w.code);
        }
    }

    /// Replays a witness schedule step by step, returning the race
    /// codes fired on the final transition — the machine check that a
    /// witness is a real interleaving of this model, not an artifact
    /// of the reduction.
    pub fn replay(&self, schedule: &[Tid]) -> Option<Vec<&'static str>> {
        let mut s = self.initial();
        let mut fired: Vec<&'static str> = Vec::new();
        for (i, tid) in schedule.iter().enumerate() {
            let trans = self.enabled(&s);
            let t = trans.into_iter().find(|t| t.tid == *tid)?;
            if i + 1 == schedule.len() {
                fired = t.hits.iter().map(|h| h.code).collect();
            }
            s = t.next;
        }
        Some(fired)
    }

    /// The display name of process `p` (for diagnostics).
    pub fn name_of(&self, p: u8) -> &'static str {
        self.names.get(p as usize).copied().unwrap_or("a process")
    }
}

/// Cross-checks a witness against the vector-clock happens-before
/// engine: the two racing operations are emitted as the same
/// instrumentation point with the same id on two channels with no
/// proven order between them, and the engine must report them
/// concurrent (`AN-HB-002`) without any ordering violation
/// (`AN-HB-001` error). A witness whose racing pair the engine can
/// order would be unsound — this is the machine check that the DPOR
/// findings and the dynamic trace validator agree on what "unordered"
/// means.
pub fn hb_crosscheck(witness: &RaceWitness) -> Report {
    const RACE_POINT: u16 = 0x0450;
    const RACE_ACK: u16 = 0x0451;
    let orders = [ProvenOrder::global(
        "race-witness-probe",
        RACE_POINT,
        RACE_ACK,
        "the two racing operations touch the same mailbox state",
    )];
    let (a, b) = witness.pair;
    let trace = Trace::from_unsorted(vec![
        Event::new(100, a as usize + 1, RACE_POINT, 1),
        Event::new(120, b as usize + 1, RACE_POINT, 1),
    ]);
    let (mut report, _) = analyze_trace(&trace, &orders);
    report.subject = format!("{} witness happens-before cross-check", witness.code);
    report
}

/// `true` when the happens-before engine confirms the witness's racing
/// pair is concurrent (and reports no ordering violation).
pub fn witness_is_concurrent(witness: &RaceWitness) -> bool {
    let report = hb_crosscheck(witness);
    report.contains("AN-HB-002") && report.with_code("AN-HB-001").count() == 0
}

/// The race scope a workload's declared orders imply: per-channel when
/// every edge is per-channel (the SPMD shape, where cross-worker
/// interleaving at a shared mailbox is benign), global otherwise.
pub fn scope_of_orders(orders: &[ProvenOrder]) -> OrderScope {
    pipeline::dominant_scope(orders)
}

/// The four race classes, in code order, with their one-line stories.
const RACE_CODES: [(&str, &str); 4] = [
    (
        "AN-RACE-001",
        "mailbox receive-race: two unordered sends to the same mailbox",
    ),
    (
        "AN-RACE-002",
        "lost wakeup: a message lands between the inbox check and the sleep commit",
    ),
    (
        "AN-RACE-003",
        "lost signal: a signal lands between the zero-check and the sleep commit",
    ),
    (
        "AN-RACE-004",
        "nondeterministic monitoring interleaving: a mailbox accept lands mid-compute",
    ),
];

/// Explores `model` and folds the verdict into `AN-RACE-*` diagnostics:
/// a warning with a replayable witness interleaving per race class
/// observed, an info per class proven absent. Race warnings deliberately
/// stay warnings — the pre-flight policies treat them as survivable by
/// default; the `--strict` gate escalates them.
pub fn check_race_model(model: &RaceModel, max_states: usize, subject: &str) -> Report {
    let v = model.explore(max_states);
    let mut report = Report::new(subject.to_owned());

    for (code, story) in RACE_CODES {
        match v.witness(code) {
            Some(w) => {
                let (a, b) = w.pair;
                let replayed = model
                    .replay(&w.schedule)
                    .is_some_and(|codes| codes.contains(&code));
                let concurrent = witness_is_concurrent(w);
                let mut d = Diagnostic::warning(code, story.to_owned())
                    .note(format!(
                        "{} occurrence(s) over {} explored states ({} transitions pruned \
                         by sleep sets{})",
                        v.occurrences.get(code).copied().unwrap_or(0),
                        v.states,
                        v.sleep_skips,
                        if v.bounded {
                            "; exploration bounded"
                        } else {
                            ""
                        },
                    ))
                    .note(format!(
                        "unordered pair: {} and {}",
                        model.name_of(a),
                        model.name_of(b)
                    ))
                    .with_path(
                        "witness interleaving (one transition per line)",
                        w.steps.clone(),
                    );
                d = if replayed && concurrent {
                    d.note(
                        "witness replayed against the model and its racing pair confirmed \
                         concurrent by the vector-clock happens-before engine",
                    )
                } else {
                    Diagnostic::error(code, format!("{story} — WITNESS FAILED VALIDATION"))
                        .note(format!("replayed={replayed} hb-concurrent={concurrent}"))
                };
                report.push(d);
            }
            None if v.bounded => {
                report.push(Diagnostic::info(
                    code,
                    format!(
                        "{story}: none found in {} states (exploration bounded — the claim \
                         is partial)",
                        v.states
                    ),
                ));
            }
            None => {
                report.push(Diagnostic::info(
                    code,
                    format!(
                        "{story}: proven absent over all {} reachable states ({} accepts \
                         examined, {} transitions pruned by sleep sets)",
                        v.states, v.accepts_checked, v.sleep_skips
                    ),
                ));
            }
        }
    }
    if v.suppressed_receive_races > 0 {
        report.push(Diagnostic::info(
            "AN-RACE-001",
            format!(
                "{} receive-race occurrence(s) suppressed: the workload's per-channel \
                 orders declare cross-sender interleaving at the shared mailbox benign",
                v.suppressed_receive_races
            ),
        ));
    }
    report
}

/// Race-checks a program version's communication shape under the given
/// scheduler, memoized by shape — the verdict depends only on the
/// agent layout, the toggle, and the budget.
pub fn check_races(app: &AppConfig, budget: &ModelBudget, preemptive: bool) -> Report {
    type ShapeKey = (bool, bool, bool, usize);
    static CACHE: OnceLock<Mutex<HashMap<ShapeKey, Report>>> = OnceLock::new();
    let key = (
        app.version.master_agents(),
        app.version.servant_agents(),
        preemptive,
        budget.race_states,
    );
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(r) = crate::model::lock_unpoisoned(cache).get(&key) {
        return r.clone();
    }
    let model = RaceModel::version_shape(key.0, key.1, preemptive);
    let subject = format!(
        "{} message races ({} scheduler)",
        app.version,
        if preemptive {
            "preemptive"
        } else {
            "non-preemptive round-robin"
        }
    );
    let report = check_race_model(&model, budget.race_states, &subject);
    crate::model::lock_unpoisoned(cache).insert(key, report.clone());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use raysim::config::Version;

    fn shapes() -> [(bool, bool); 3] {
        [(false, false), (true, false), (true, true)]
    }

    #[test]
    fn round_robin_is_race_free_for_every_version_shape() {
        for (ma, sa) in shapes() {
            let v = RaceModel::version_shape(ma, sa, false).explore(1_000_000);
            assert!(!v.bounded, "({ma},{sa}) should close: {} states", v.states);
            assert!(v.race_free(), "({ma},{sa}): {:?}", v.witnesses);
            assert!(v.completion_reachable, "({ma},{sa})");
            assert!(v.accepts_checked > 0);
        }
    }

    #[test]
    fn preemption_loses_a_wakeup_with_a_replayable_witness() {
        let model = RaceModel::version_shape(false, false, true);
        let v = model.explore(2_000_000);
        assert!(!v.bounded, "{} states", v.states);
        let w = v
            .witness("AN-RACE-002")
            .expect("preemption must lose a wakeup");
        assert!(
            w.steps.last().unwrap().contains("AN-RACE-002"),
            "{:?}",
            w.steps
        );
        // The witness is a real interleaving: replaying its schedule
        // fires the same race on the final transition.
        let fired = model.replay(&w.schedule).expect("schedule must replay");
        assert!(fired.contains(&"AN-RACE-002"), "{fired:?}");
    }

    #[test]
    fn preemption_loses_a_signal_in_agent_shapes() {
        // Lost signals need a signal/wait pair, i.e. a communication
        // agent (V2+). A mailbox-LWP-only preemption cannot produce
        // this — it takes a *user* process preempting the waiter
        // between its zero-check and its sleep.
        let model = RaceModel::version_shape(true, true, true);
        let v = model.explore(4_000_000);
        assert!(!v.bounded, "{} states", v.states);
        let w = v
            .witness("AN-RACE-003")
            .expect("preemption must lose a signal");
        let fired = model.replay(&w.schedule).expect("schedule must replay");
        assert!(fired.contains(&"AN-RACE-003"), "{fired:?}");
        assert!(witness_is_concurrent(w));
    }

    #[test]
    fn preemption_breaks_monitoring_determinism() {
        let v = RaceModel::version_shape(false, false, true).explore(2_000_000);
        assert!(
            v.witness("AN-RACE-004").is_some(),
            "mid-compute accept must be reachable"
        );
    }

    #[test]
    fn spmd_receive_race_is_real_under_global_scope_even_without_preemption() {
        let model = RaceModel::spmd_shape(false, OrderScope::Global);
        let v = model.explore(1_000_000);
        assert!(!v.bounded);
        let w = v
            .witness("AN-RACE-001")
            .expect("two senders, one mailbox: must race");
        assert!(model
            .replay(&w.schedule)
            .expect("schedule must replay")
            .contains(&"AN-RACE-001"));
        assert!(witness_is_concurrent(w));
        // The race is about *matching*, not about preemption: every
        // other class stays absent under round-robin.
        assert!(v.witness("AN-RACE-002").is_none());
        assert!(v.witness("AN-RACE-003").is_none());
        assert!(v.witness("AN-RACE-004").is_none());
    }

    #[test]
    fn per_channel_scope_suppresses_the_spmd_receive_race() {
        let v = RaceModel::spmd_shape(false, OrderScope::PerChannel).explore(1_000_000);
        assert!(!v.bounded);
        assert!(v.race_free(), "{:?}", v.witnesses);
        assert!(
            v.suppressed_receive_races > 0,
            "the race must still be *observed*"
        );
    }

    #[test]
    fn sleep_sets_prune_without_losing_verdicts() {
        // The reduction must actually fire, and an unreduced DFS is
        // not feasible to compare here — the differential check lives
        // in the dpor_soundness suite against the scheduler model.
        let v = RaceModel::version_shape(true, true, true).explore(4_000_000);
        assert!(v.sleep_skips > 0, "sleep sets never fired");
    }

    #[test]
    fn check_races_reports_warnings_only_under_preemption() {
        let budget = ModelBudget::full();
        for version in Version::ALL {
            let app = AppConfig::version(version);
            let rr = check_races(&app, &budget, false);
            assert_eq!(rr.warnings(), 0, "{version}: {}", rr.render());
            assert_eq!(rr.errors(), 0, "{version}: {}", rr.render());
            assert!(rr.findings.iter().all(|f| f.code.starts_with("AN-RACE-")));
            let pre = check_races(&app, &budget, true);
            assert!(pre.warnings() >= 1, "{version}: {}", pre.render());
            assert!(
                pre.findings
                    .iter()
                    .any(|f| f.code == "AN-RACE-002" && !f.notes.is_empty()),
                "{version}: {}",
                pre.render()
            );
        }
    }

    #[test]
    fn hb_crosscheck_confirms_concurrency_for_witnesses() {
        let v = RaceModel::version_shape(false, false, true).explore(2_000_000);
        for w in &v.witnesses {
            let report = hb_crosscheck(w);
            assert!(
                report.contains("AN-HB-002"),
                "{}: {}",
                w.code,
                report.render()
            );
            assert!(witness_is_concurrent(w), "{}", w.code);
        }
    }

    #[test]
    fn scope_of_orders_follows_the_workload_declaration() {
        let ray = crate::model::proven_orders(&AppConfig::version(Version::V4));
        assert_eq!(scope_of_orders(&ray), OrderScope::Global);
        let spmd = [ProvenOrder::per_channel("a", 1, 2, "w")];
        assert_eq!(scope_of_orders(&spmd), OrderScope::PerChannel);
        assert_eq!(scope_of_orders(&[]), OrderScope::PerChannel);
    }
}
