//! The diagnostic model: findings, severities and `rustc`-style reports.
//!
//! Every analysis pass produces [`Diagnostic`]s collected into a
//! [`Report`]. A diagnostic carries a stable machine-readable code
//! (`AN-TOKEN-001`, `AN-PROTO-002`, `AN-MODEL-004`, …) so tests, CI
//! gates and the pre-flight hook can match on *what* was found rather
//! than on message text, plus a structured [`Location`]: a
//! configuration field, an instrumentation token, a simulated-time
//! point on a monitoring channel, or a model-checker counterexample
//! path. Reports render for humans (`rustc` style), as JSON (see
//! [`crate::render::report_json`]) and as SARIF 2.1.0 (see
//! [`crate::render::sarif`]).

use std::fmt;

/// What a diagnostic points at, machine-readably.
///
/// The human-facing rendering lives in [`Finding::span`]; this enum
/// carries the same information in a form the JSON and SARIF renderers
/// (and downstream tooling) can consume without parsing text.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Location {
    /// No structured location (legacy findings, whole-config verdicts).
    #[default]
    None,
    /// A configuration field, e.g. `pixel_queue_capacity` = `768`.
    Config {
        /// Dotted field path, e.g. `app.pixel_queue_capacity`.
        field: String,
        /// The offending value, stringified.
        value: String,
    },
    /// A declared instrumentation token.
    Token {
        /// The 16-bit token id.
        token: u16,
    },
    /// A point in a recorded trace: simulated time on a channel.
    Sim {
        /// Monitor timestamp, nanoseconds.
        time_ns: u64,
        /// The monitoring channel (object node).
        channel: usize,
    },
    /// A model-checker counterexample or witness: the transition labels
    /// from the initial state to the offending state.
    Model {
        /// One label per transition, in execution order.
        path: Vec<String>,
    },
}

impl Location {
    /// A short machine-readable kind tag (`config`, `token`, `sim`,
    /// `model`, `none`) used by the JSON renderer.
    pub fn kind(&self) -> &'static str {
        match self {
            Location::None => "none",
            Location::Config { .. } => "config",
            Location::Token { .. } => "token",
            Location::Sim { .. } => "sim",
            Location::Model { .. } => "model",
        }
    }

    /// A fully-qualified logical name for SARIF's `logicalLocations`.
    pub fn logical_name(&self) -> String {
        match self {
            Location::None => String::new(),
            Location::Config { field, .. } => field.clone(),
            Location::Token { token } => format!("token:{token:#06x}"),
            Location::Sim { time_ns, channel } => {
                format!("channel {channel} @ t={time_ns}ns")
            }
            Location::Model { path } => format!("model path ({} steps)", path.len()),
        }
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing; does not indicate a defect.
    Info,
    /// Likely to distort a measurement (lost events, skewed Gantt
    /// tracks) but the run completes.
    Warning,
    /// The run will deadlock, corrupt its trace, or silently lose data.
    Error,
}

impl Severity {
    /// Parses the CLI spelling (`info`, `warning`, `error`).
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warning" | "warn" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }

    /// The SARIF `level` for this severity.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Info => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => f.write_str("info"),
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One diagnostic produced by an analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable machine-readable code, e.g. `AN-PROTO-002`.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// One-line headline.
    pub message: String,
    /// What the finding points at (a config field, a token, a node),
    /// rendered for humans, e.g. `app.pixel_queue_capacity = 768`.
    pub span: String,
    /// The same location, machine-readable.
    pub location: Location,
    /// Additional `note:` lines explaining the arithmetic.
    pub notes: Vec<String>,
    /// Additional `help:` lines suggesting a fix.
    pub helps: Vec<String>,
}

/// The unified diagnostic type every analyzer subsystem emits — the
/// token lints, the protocol graph, the rate predictor, the protocol
/// model checker and the happens-before engine all produce this one
/// struct, so CLI gates, JSON/SARIF artifacts and the pre-flight hook
/// handle them uniformly.
pub type Diagnostic = Finding;

impl Finding {
    /// Creates a finding with the given severity.
    pub fn new(severity: Severity, code: &'static str, message: impl Into<String>) -> Self {
        Finding {
            code,
            severity,
            message: message.into(),
            span: String::new(),
            location: Location::None,
            notes: Vec::new(),
            helps: Vec::new(),
        }
    }

    /// Creates an error finding.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Finding::new(Severity::Error, code, message)
    }

    /// Creates a warning finding.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Finding::new(Severity::Warning, code, message)
    }

    /// Creates an info finding.
    pub fn info(code: &'static str, message: impl Into<String>) -> Self {
        Finding::new(Severity::Info, code, message)
    }

    /// Sets the span the finding points at.
    pub fn at(mut self, span: impl Into<String>) -> Self {
        self.span = span.into();
        self
    }

    /// Sets the machine-readable location.
    pub fn locate(mut self, location: Location) -> Self {
        self.location = location;
        self
    }

    /// Points the finding at a configuration field, setting both the
    /// human span and the structured location.
    pub fn at_config(self, field: impl Into<String>, value: impl fmt::Display) -> Self {
        let field = field.into();
        let value = value.to_string();
        let span = format!("{field} = {value}");
        self.at(span).locate(Location::Config { field, value })
    }

    /// Points the finding at a trace position, setting both the human
    /// span and the structured location.
    pub fn at_sim(self, time_ns: u64, channel: usize) -> Self {
        self.at(format!("channel {channel} @ t={time_ns}ns"))
            .locate(Location::Sim { time_ns, channel })
    }

    /// Attaches a model-checker path (counterexample or witness) as the
    /// location and as note lines, one per step.
    pub fn with_path(mut self, heading: &str, path: Vec<String>) -> Self {
        self.notes.push(format!("{heading}:"));
        for (i, step) in path.iter().enumerate() {
            self.notes.push(format!("  {:>3}. {step}", i + 1));
        }
        self.locate(Location::Model { path })
    }

    /// Appends a `note:` line.
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Appends a `help:` line.
    pub fn help(mut self, help: impl Into<String>) -> Self {
        self.helps.push(help.into());
        self
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if !self.span.is_empty() {
            writeln!(f, "  --> {}", self.span)?;
        }
        for note in &self.notes {
            writeln!(f, "   = note: {note}")?;
        }
        for help in &self.helps {
            writeln!(f, "   = help: {help}")?;
        }
        Ok(())
    }
}

/// A collection of findings about one analysis subject.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// What was analyzed, e.g. `Version 3 (agents both, bundle 50)`.
    pub subject: String,
    /// The findings, in the order the passes produced them.
    pub findings: Vec<Finding>,
}

impl Report {
    /// An empty report about `subject`.
    pub fn new(subject: impl Into<String>) -> Self {
        Report {
            subject: subject.into(),
            findings: Vec::new(),
        }
    }

    /// Adds a finding.
    pub fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Moves all findings of `other` into this report.
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
    }

    /// Escalates to errors every *warning* whose code starts with
    /// `prefix` — the `--strict` ("deny") treatment of findings that
    /// are survivable by default. Info findings (proofs of absence)
    /// are left alone. Returns how many findings were raised.
    pub fn escalate_warnings(&mut self, prefix: &str) -> usize {
        let mut raised = 0;
        for f in &mut self.findings {
            if f.severity == Severity::Warning && f.code.starts_with(prefix) {
                f.severity = Severity::Error;
                raised += 1;
            }
        }
        raised
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Number of errors.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warnings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Returns `true` if the report contains an error.
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    /// Returns `true` if there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The most severe finding's severity, `None` on a clean report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Number of findings at or above `severity` — what a CLI gate
    /// configured with `--fail-on <severity>` counts.
    pub fn count_at_least(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity >= severity)
            .count()
    }

    /// Returns `true` if any finding carries `code`.
    pub fn contains(&self, code: &str) -> bool {
        self.findings.iter().any(|f| f.code == code)
    }

    /// All findings carrying `code`.
    pub fn with_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Finding> {
        self.findings.iter().filter(move |f| f.code == code)
    }

    /// The most severe findings first, preserving pass order within a
    /// severity class.
    pub fn sorted_by_severity(&self) -> Vec<&Finding> {
        let mut out: Vec<&Finding> = self.findings.iter().collect();
        out.sort_by_key(|f| std::cmp::Reverse(f.severity));
        out
    }

    /// Renders the whole report in `rustc` style, findings most severe
    /// first, closing with a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for finding in self.sorted_by_severity() {
            out.push_str(&finding.to_string());
            out.push('\n');
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// The one-line summary, e.g.
    /// `analysis of Version 3: 1 error, 2 warnings, 1 info`.
    pub fn summary(&self) -> String {
        let counts = [
            (self.errors(), "error", "errors"),
            (self.warnings(), "warning", "warnings"),
            (self.count(Severity::Info), "info", "info"),
        ];
        let parts: Vec<String> = counts
            .iter()
            .filter(|(n, _, _)| *n > 0)
            .map(|(n, one, many)| format!("{n} {}", if *n == 1 { one } else { many }))
            .collect();
        if parts.is_empty() {
            format!("analysis of {}: clean", self.subject)
        } else {
            format!("analysis of {}: {}", self.subject, parts.join(", "))
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_renders_rustc_style() {
        let f = Finding::error("AN-TEST-001", "queue too small")
            .at("app.pixel_queue_capacity = 768")
            .note("demand is 2250")
            .help("raise the constant");
        let text = f.to_string();
        assert!(text.starts_with("error[AN-TEST-001]: queue too small"));
        assert!(text.contains("--> app.pixel_queue_capacity = 768"));
        assert!(text.contains("= note: demand is 2250"));
        assert!(text.contains("= help: raise the constant"));
    }

    #[test]
    fn report_counts_and_lookup() {
        let mut r = Report::new("unit");
        r.push(Finding::warning("AN-A-001", "w"));
        r.push(Finding::error("AN-B-001", "e"));
        r.push(Finding::info("AN-C-001", "i"));
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert!(r.contains("AN-B-001"));
        assert!(!r.contains("AN-Z-999"));
        assert_eq!(r.with_code("AN-A-001").count(), 1);
        assert_eq!(r.summary(), "analysis of unit: 1 error, 1 warning, 1 info");
    }

    #[test]
    fn render_orders_errors_first() {
        let mut r = Report::new("unit");
        r.push(Finding::info("AN-C-001", "third"));
        r.push(Finding::error("AN-B-001", "first"));
        let rendered = r.render();
        let err_pos = rendered.find("error[").unwrap();
        let info_pos = rendered.find("info[").unwrap();
        assert!(err_pos < info_pos);
    }

    #[test]
    fn clean_report_summary() {
        let r = Report::new("Version 4");
        assert!(r.is_clean());
        assert_eq!(r.summary(), "analysis of Version 4: clean");
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Report::new("a");
        a.push(Finding::error("AN-A-001", "x"));
        let mut b = Report::new("b");
        b.push(Finding::warning("AN-B-001", "y"));
        a.merge(b);
        assert_eq!(a.findings.len(), 2);
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn severity_parses_and_maps_to_sarif() {
        assert_eq!(Severity::parse("info"), Some(Severity::Info));
        assert_eq!(Severity::parse("warning"), Some(Severity::Warning));
        assert_eq!(Severity::parse("warn"), Some(Severity::Warning));
        assert_eq!(Severity::parse("error"), Some(Severity::Error));
        assert_eq!(Severity::parse("fatal"), None);
        assert_eq!(Severity::Info.sarif_level(), "note");
        assert_eq!(Severity::Warning.sarif_level(), "warning");
        assert_eq!(Severity::Error.sarif_level(), "error");
    }

    #[test]
    fn structured_locations() {
        let f = Finding::error("AN-TEST-001", "x").at_config("app.window", 0);
        assert_eq!(f.span, "app.window = 0");
        assert_eq!(
            f.location,
            Location::Config {
                field: "app.window".into(),
                value: "0".into()
            }
        );
        assert_eq!(f.location.kind(), "config");
        assert_eq!(f.location.logical_name(), "app.window");

        let f = Finding::warning("AN-TEST-002", "y").at_sim(1_500, 3);
        assert_eq!(f.location.kind(), "sim");
        assert!(f.span.contains("t=1500ns"));

        let f = Finding::error("AN-TEST-003", "z")
            .with_path("counterexample", vec!["send job 0".into(), "stall".into()]);
        assert_eq!(f.location.kind(), "model");
        assert!(f.notes.iter().any(|n| n.contains("send job 0")));
        assert!(f.location.logical_name().contains("2 steps"));
    }

    #[test]
    fn escalation_raises_matching_warnings_only() {
        let mut r = Report::new("unit");
        r.push(Finding::warning("AN-RACE-001", "race"));
        r.push(Finding::info("AN-RACE-002", "proven absent"));
        r.push(Finding::warning("AN-MODEL-001", "other subsystem"));
        assert_eq!(r.escalate_warnings("AN-RACE-"), 1);
        assert_eq!(r.errors(), 1);
        assert_eq!(
            r.with_code("AN-RACE-001").next().unwrap().severity,
            Severity::Error
        );
        assert_eq!(
            r.with_code("AN-RACE-002").next().unwrap().severity,
            Severity::Info
        );
        assert_eq!(
            r.with_code("AN-MODEL-001").next().unwrap().severity,
            Severity::Warning
        );
        assert_eq!(r.escalate_warnings("AN-RACE-"), 0);
    }

    #[test]
    fn threshold_counting() {
        let mut r = Report::new("unit");
        assert_eq!(r.max_severity(), None);
        r.push(Finding::info("AN-A-001", "i"));
        r.push(Finding::warning("AN-A-002", "w"));
        r.push(Finding::error("AN-A-003", "e"));
        assert_eq!(r.max_severity(), Some(Severity::Error));
        assert_eq!(r.count_at_least(Severity::Info), 3);
        assert_eq!(r.count_at_least(Severity::Warning), 2);
        assert_eq!(r.count_at_least(Severity::Error), 1);
    }
}
