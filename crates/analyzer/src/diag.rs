//! The diagnostic model: findings, severities and `rustc`-style reports.
//!
//! Every analysis pass produces [`Finding`]s collected into a
//! [`Report`]. A finding carries a stable machine-readable code
//! (`AN-TOKEN-001`, `AN-PROTO-002`, …) so tests, CI gates and the
//! pre-flight hook can match on *what* was found rather than on message
//! text, plus a span naming the offending configuration field or token.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing; does not indicate a defect.
    Info,
    /// Likely to distort a measurement (lost events, skewed Gantt
    /// tracks) but the run completes.
    Warning,
    /// The run will deadlock, corrupt its trace, or silently lose data.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => f.write_str("info"),
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One diagnostic produced by an analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable machine-readable code, e.g. `AN-PROTO-002`.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// One-line headline.
    pub message: String,
    /// What the finding points at (a config field, a token, a node),
    /// e.g. `app.pixel_queue_capacity = 768`.
    pub span: String,
    /// Additional `note:` lines explaining the arithmetic.
    pub notes: Vec<String>,
    /// Additional `help:` lines suggesting a fix.
    pub helps: Vec<String>,
}

impl Finding {
    /// Creates a finding with the given severity.
    pub fn new(severity: Severity, code: &'static str, message: impl Into<String>) -> Self {
        Finding {
            code,
            severity,
            message: message.into(),
            span: String::new(),
            notes: Vec::new(),
            helps: Vec::new(),
        }
    }

    /// Creates an error finding.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Finding::new(Severity::Error, code, message)
    }

    /// Creates a warning finding.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Finding::new(Severity::Warning, code, message)
    }

    /// Creates an info finding.
    pub fn info(code: &'static str, message: impl Into<String>) -> Self {
        Finding::new(Severity::Info, code, message)
    }

    /// Sets the span the finding points at.
    pub fn at(mut self, span: impl Into<String>) -> Self {
        self.span = span.into();
        self
    }

    /// Appends a `note:` line.
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Appends a `help:` line.
    pub fn help(mut self, help: impl Into<String>) -> Self {
        self.helps.push(help.into());
        self
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if !self.span.is_empty() {
            writeln!(f, "  --> {}", self.span)?;
        }
        for note in &self.notes {
            writeln!(f, "   = note: {note}")?;
        }
        for help in &self.helps {
            writeln!(f, "   = help: {help}")?;
        }
        Ok(())
    }
}

/// A collection of findings about one analysis subject.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// What was analyzed, e.g. `Version 3 (agents both, bundle 50)`.
    pub subject: String,
    /// The findings, in the order the passes produced them.
    pub findings: Vec<Finding>,
}

impl Report {
    /// An empty report about `subject`.
    pub fn new(subject: impl Into<String>) -> Self {
        Report {
            subject: subject.into(),
            findings: Vec::new(),
        }
    }

    /// Adds a finding.
    pub fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Moves all findings of `other` into this report.
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Number of errors.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warnings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Returns `true` if the report contains an error.
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    /// Returns `true` if there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Returns `true` if any finding carries `code`.
    pub fn contains(&self, code: &str) -> bool {
        self.findings.iter().any(|f| f.code == code)
    }

    /// All findings carrying `code`.
    pub fn with_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Finding> {
        self.findings.iter().filter(move |f| f.code == code)
    }

    /// The most severe findings first, preserving pass order within a
    /// severity class.
    pub fn sorted_by_severity(&self) -> Vec<&Finding> {
        let mut out: Vec<&Finding> = self.findings.iter().collect();
        out.sort_by_key(|f| std::cmp::Reverse(f.severity));
        out
    }

    /// Renders the whole report in `rustc` style, findings most severe
    /// first, closing with a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for finding in self.sorted_by_severity() {
            out.push_str(&finding.to_string());
            out.push('\n');
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// The one-line summary, e.g.
    /// `analysis of Version 3: 1 error, 2 warnings, 1 info`.
    pub fn summary(&self) -> String {
        let counts = [
            (self.errors(), "error", "errors"),
            (self.warnings(), "warning", "warnings"),
            (self.count(Severity::Info), "info", "info"),
        ];
        let parts: Vec<String> = counts
            .iter()
            .filter(|(n, _, _)| *n > 0)
            .map(|(n, one, many)| format!("{n} {}", if *n == 1 { one } else { many }))
            .collect();
        if parts.is_empty() {
            format!("analysis of {}: clean", self.subject)
        } else {
            format!("analysis of {}: {}", self.subject, parts.join(", "))
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_renders_rustc_style() {
        let f = Finding::error("AN-TEST-001", "queue too small")
            .at("app.pixel_queue_capacity = 768")
            .note("demand is 2250")
            .help("raise the constant");
        let text = f.to_string();
        assert!(text.starts_with("error[AN-TEST-001]: queue too small"));
        assert!(text.contains("--> app.pixel_queue_capacity = 768"));
        assert!(text.contains("= note: demand is 2250"));
        assert!(text.contains("= help: raise the constant"));
    }

    #[test]
    fn report_counts_and_lookup() {
        let mut r = Report::new("unit");
        r.push(Finding::warning("AN-A-001", "w"));
        r.push(Finding::error("AN-B-001", "e"));
        r.push(Finding::info("AN-C-001", "i"));
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert!(r.contains("AN-B-001"));
        assert!(!r.contains("AN-Z-999"));
        assert_eq!(r.with_code("AN-A-001").count(), 1);
        assert_eq!(r.summary(), "analysis of unit: 1 error, 1 warning, 1 info");
    }

    #[test]
    fn render_orders_errors_first() {
        let mut r = Report::new("unit");
        r.push(Finding::info("AN-C-001", "third"));
        r.push(Finding::error("AN-B-001", "first"));
        let rendered = r.render();
        let err_pos = rendered.find("error[").unwrap();
        let info_pos = rendered.find("info[").unwrap();
        assert!(err_pos < info_pos);
    }

    #[test]
    fn clean_report_summary() {
        let r = Report::new("Version 4");
        assert!(r.is_clean());
        assert_eq!(r.summary(), "analysis of Version 4: clean");
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Report::new("a");
        a.push(Finding::error("AN-A-001", "x"));
        let mut b = Report::new("b");
        b.push(Finding::warning("AN-B-001", "y"));
        a.merge(b);
        assert_eq!(a.findings.len(), 2);
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.to_string(), "error");
    }
}
