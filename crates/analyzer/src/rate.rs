//! Static event-rate overload prediction.
//!
//! From the instrumentation density (events emitted per job, per the
//! declared point map and version) and the application's cost constants,
//! this module derives a **worst-case** sustained event rate per display
//! channel, aggregates channels onto their ZM4 event recorders
//! (`channel / streams_per_recorder`), and compares each recorder's
//! arrival rate against the 10 000 events/s FIFO→disk drain and the 32 K
//! FIFO — predicting, before any simulation runs, whether a measurement
//! would lose events (the dynamic E3 experiment's failure mode):
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | `AN-RATE-001` | error | worst-case backlog exceeds the FIFO: events will be lost |
//! | `AN-RATE-002` | warning | backlog exceeds half the FIFO: one doubling from loss |
//! | `AN-RATE-003` | info | arrival exceeds the sustained drain but the FIFO absorbs it |
//! | `AN-RATE-004` | warning | instantaneous burst exceeds the recorder's 10 M events/s limit |
//!
//! "Worst case" means the *fastest* admissible job: rays that hit
//! nothing (the `raytracer::cost::CostModel::per_ray` floor), base costs
//! only, every channel of a recorder busy simultaneously. A clean bill
//! here is a guarantee; a finding is a possibility, not a certainty.

use hybridmon::MonitoringMode;
use raysim::config::AppConfig;
use suprenum::MachineConfig;
use zm4::Zm4Config;

use crate::diag::{Finding, Report};

/// Worst-case kernel events per job when kernel instrumentation is on:
/// dispatch + block on the send side, mailbox service + dispatch on the
/// receive side, plus two scheduler transitions for the servant's own
/// blocking — all per job in the worst case.
pub const KERNEL_EVENTS_PER_JOB: f64 = 6.0;

/// Worst-case load of one display channel (one node).
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelLoad {
    /// The channel (node index; the master is channel 0).
    pub channel: usize,
    /// Role of the node, for reports.
    pub role: &'static str,
    /// Instrumentation events emitted per job.
    pub events_per_job: f64,
    /// Fastest admissible service time of one job, seconds.
    pub min_seconds_per_job: f64,
    /// Jobs this node handles over the whole image.
    pub jobs: f64,
    /// Peak sustained event rate, events/s.
    pub peak_hz: f64,
    /// How long the node can sustain the peak (its total busy time).
    pub busy_seconds: f64,
}

/// Worst-case load of one ZM4 event recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct RecorderLoad {
    /// Recorder index.
    pub recorder: usize,
    /// The channels multiplexed onto it.
    pub channels: Vec<usize>,
    /// Combined peak arrival rate, events/s.
    pub arrival_hz: f64,
    /// Sustained drain rate, events/s.
    pub drain_hz: f64,
    /// Worst-case FIFO backlog, records (arrival above drain integrated
    /// over the channels' busy intervals).
    pub peak_backlog: f64,
    /// Combined instantaneous burst rate (events back to back on every
    /// channel), events/s.
    pub burst_hz: f64,
}

/// The full prediction: per-channel and per-recorder worst cases.
#[derive(Debug, Clone, PartialEq)]
pub struct RatePrediction {
    /// Per-channel loads, channel 0 first.
    pub channels: Vec<ChannelLoad>,
    /// Per-recorder loads.
    pub recorders: Vec<RecorderLoad>,
}

fn master_load(app: &AppConfig, per_event: f64, kernel_events: f64) -> ChannelLoad {
    let jobs = total_jobs(app);
    // Per job: Send Jobs begin/end, Wait for Results, Receive Results,
    // amortized Write Pixels pair per chunk, plus the agent's four
    // events when the master hands jobs to communication agents (the
    // agents share the master's display channel).
    let mut events = 4.0 + 2.0 * app.bundle_size as f64 / app.write_chunk.max(1) as f64;
    if app.version.master_agents() {
        events += 4.0;
    }
    events += kernel_events;
    let bundle = app.bundle_size as f64;
    let seconds = app.send_base.as_secs_f64()
        + app.send_per_pixel.as_secs_f64() * bundle
        + app.receive_base.as_secs_f64()
        + app.receive_per_pixel.as_secs_f64() * bundle
        + events * per_event;
    ChannelLoad {
        channel: 0,
        role: "master",
        events_per_job: events,
        min_seconds_per_job: seconds,
        jobs,
        peak_hz: events / seconds,
        busy_seconds: jobs * seconds,
    }
}

fn servant_load(
    app: &AppConfig,
    channel: usize,
    per_event: f64,
    kernel_events: f64,
) -> ChannelLoad {
    let jobs = total_jobs(app) / app.servants.max(1) as f64;
    // Per job: Work, Wait for Job, Send Results when instrumented, plus
    // the servant-side agent's four events in versions 3 and 4.
    let mut events = 2.0;
    if app.instrument_send_results {
        events += 1.0;
    }
    if app.version.servant_agents() {
        events += 4.0;
    }
    events += kernel_events;
    // The fastest job: every ray misses everything, costing only the
    // per-ray floor of the cost model.
    let seconds = app.work_base.as_secs_f64()
        + app.cost.per_ray.as_secs_f64() * app.bundle_size as f64
        + events * per_event;
    ChannelLoad {
        channel,
        role: "servant",
        events_per_job: events,
        min_seconds_per_job: seconds,
        jobs,
        peak_hz: events / seconds,
        busy_seconds: jobs * seconds,
    }
}

fn total_jobs(app: &AppConfig) -> f64 {
    let rays = app.total_pixels() as f64 * (app.oversample as f64).powi(2);
    rays / app.bundle_size.max(1) as f64
}

/// Worst-case FIFO backlog of one recorder: channel `c` contributes
/// `peak_hz` until `busy_seconds(c)`, the drain removes `drain_hz`
/// throughout. The backlog is piecewise linear in time, so its maximum
/// lies at one of the busy-interval endpoints.
fn peak_backlog(channels: &[&ChannelLoad], drain_hz: f64) -> f64 {
    let mut max = 0.0f64;
    for probe in channels {
        let t = probe.busy_seconds;
        let arrived: f64 = channels
            .iter()
            .map(|c| c.peak_hz * c.busy_seconds.min(t))
            .sum();
        max = max.max(arrived - drain_hz * t);
    }
    max
}

/// Computes the worst-case rate prediction for a run setup.
pub fn predict(app: &AppConfig, machine: &MachineConfig, zm4: &Zm4Config) -> RatePrediction {
    let per_event = machine
        .monitor_costs
        .per_event(machine.monitoring)
        .as_secs_f64();
    let kernel_events =
        if machine.kernel_instrumentation && machine.monitoring == MonitoringMode::Hybrid {
            KERNEL_EVENTS_PER_JOB
        } else {
            0.0
        };

    let mut channels = vec![master_load(app, per_event, kernel_events)];
    for s in 1..=app.servants as usize {
        channels.push(servant_load(app, s, per_event, kernel_events));
    }

    let streams = zm4.streams_per_recorder.max(1);
    let recorder_count = channels.len().div_ceil(streams);
    let recorders = (0..recorder_count)
        .map(|r| {
            let members: Vec<&ChannelLoad> = channels
                .iter()
                .filter(|c| c.channel / streams == r)
                .collect();
            RecorderLoad {
                recorder: r,
                channels: members.iter().map(|c| c.channel).collect(),
                arrival_hz: members.iter().map(|c| c.peak_hz).sum(),
                drain_hz: zm4.disk_drain_rate as f64,
                peak_backlog: peak_backlog(&members, zm4.disk_drain_rate as f64),
                burst_hz: if per_event > 0.0 {
                    members.len() as f64 / per_event
                } else {
                    0.0
                },
            }
        })
        .collect();
    RatePrediction {
        channels,
        recorders,
    }
}

/// Runs the overload prediction and renders findings.
pub fn analyze_rate(app: &AppConfig, machine: &MachineConfig, zm4: &Zm4Config) -> Report {
    let mut report = Report::new(format!("{} event rates", app.version));
    if machine.monitoring == MonitoringMode::Off {
        report.push(
            Finding::info("AN-RATE-003", "monitoring is off; no events reach the ZM4")
                .at("machine.monitoring = off"),
        );
        return report;
    }
    let prediction = predict(app, machine, zm4);
    for rec in &prediction.recorders {
        let span = format!(
            "recorder {} (channels {:?}): worst-case arrival {:.0} events/s, drain {:.0}",
            rec.recorder, rec.channels, rec.arrival_hz, rec.drain_hz
        );
        if rec.burst_hz > Zm4Config::BURST_RATE_HZ as f64 {
            report.push(
                Finding::warning(
                    "AN-RATE-004",
                    format!(
                        "instantaneous burst of {:.2e} events/s exceeds the recorder's \
                         {:.0e} events/s limit",
                        rec.burst_hz,
                        Zm4Config::BURST_RATE_HZ as f64
                    ),
                )
                .at(span.clone())
                .note("back-to-back instrumentation calls on every multiplexed stream"),
            );
        }
        if rec.arrival_hz <= rec.drain_hz {
            continue;
        }
        let fifo = zm4.fifo_capacity as f64;
        let horizon = zm4
            .overflow_horizon(rec.arrival_hz)
            .map(|d| d.as_secs_f64());
        if rec.peak_backlog > fifo {
            let mut f = Finding::error(
                "AN-RATE-001",
                format!(
                    "predicted event loss: worst-case backlog of {:.0} records \
                     overflows the {:.0}-record FIFO",
                    rec.peak_backlog, fifo
                ),
            )
            .at(span)
            .note(format!(
                "the excess of {:.0} events/s fills the FIFO in {:.2} s but the \
                 instrumented phase sustains the rate longer",
                rec.arrival_hz - rec.drain_hz,
                horizon.unwrap_or(f64::INFINITY),
            ))
            .help(
                "reduce instrumentation density (larger bundles, fewer points), \
                 spread the channels over more recorders, or thin the point map",
            );
            if zm4.streams_per_recorder > 1 {
                f = f.help(format!(
                    "with streams_per_recorder = 1 instead of {} each channel gets \
                     its own FIFO and drain",
                    zm4.streams_per_recorder
                ));
            }
            report.push(f);
        } else if rec.peak_backlog > fifo / 2.0 {
            report.push(
                Finding::warning(
                    "AN-RATE-002",
                    format!(
                        "worst-case backlog of {:.0} records uses more than half the \
                         {:.0}-record FIFO",
                        rec.peak_backlog, fifo
                    ),
                )
                .at(span)
                .note("one doubling of instrumentation density away from event loss"),
            );
        } else {
            report.push(
                Finding::info(
                    "AN-RATE-003",
                    format!(
                        "arrival exceeds the sustained drain; the FIFO absorbs the \
                         worst-case backlog of {:.0} records",
                        rec.peak_backlog
                    ),
                )
                .at(span)
                .note(
                    "merged-trace timestamps stay correct — the FIFO defers draining, \
                     not recording",
                ),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use raysim::config::Version;
    use raysim::run::RunConfig;

    fn setup(version: Version) -> (AppConfig, MachineConfig, Zm4Config) {
        let cfg = RunConfig::new(AppConfig::version(version));
        (cfg.app, cfg.machine, cfg.zm4)
    }

    #[test]
    fn stock_versions_never_predict_loss() {
        for version in Version::ALL {
            let (app, machine, zm4) = setup(version);
            let report = analyze_rate(&app, &machine, &zm4);
            assert!(!report.has_errors(), "{version}:\n{}", report.render());
            assert_eq!(report.warnings(), 0, "{version}:\n{}", report.render());
        }
    }

    #[test]
    fn single_ray_jobs_run_near_the_drain_limit() {
        // V1's one-ray jobs are the densest stock instrumentation; the
        // servant-only recorders exceed the sustained drain in the worst
        // case, but the FIFO absorbs the backlog (the E3 story).
        let (app, machine, zm4) = setup(Version::V1);
        let report = analyze_rate(&app, &machine, &zm4);
        assert!(report.contains("AN-RATE-003"), "{}", report.render());
        let (app, machine, zm4) = setup(Version::V4);
        let report = analyze_rate(&app, &machine, &zm4);
        assert!(
            report.is_clean(),
            "bundled jobs leave headroom:\n{}",
            report.render()
        );
    }

    #[test]
    fn over_instrumentation_predicts_loss() {
        let (mut app, machine, mut zm4) = setup(Version::V1);
        // Every node's stream multiplexed onto one recorder, send-results
        // instrumented, oversampling quadrupling the job count.
        app.instrument_send_results = true;
        app.oversample = 2;
        zm4.streams_per_recorder = 16;
        let report = analyze_rate(&app, &machine, &zm4);
        assert!(report.contains("AN-RATE-001"), "{}", report.render());
        assert!(report.has_errors());
    }

    #[test]
    fn monitoring_off_short_circuits() {
        let (app, mut machine, zm4) = setup(Version::V1);
        machine.monitoring = MonitoringMode::Off;
        let report = analyze_rate(&app, &machine, &zm4);
        assert!(!report.has_errors());
        assert_eq!(report.findings.len(), 1);
    }

    #[test]
    fn prediction_arithmetic_is_consistent() {
        let (app, machine, zm4) = setup(Version::V3);
        let p = predict(&app, &machine, &zm4);
        assert_eq!(p.channels.len(), 16);
        assert_eq!(p.recorders.len(), 4);
        for c in &p.channels {
            assert!(c.peak_hz > 0.0);
            assert!((c.peak_hz - c.events_per_job / c.min_seconds_per_job).abs() < 1e-9);
        }
        // Every channel lands on exactly one recorder.
        let assigned: usize = p.recorders.iter().map(|r| r.channels.len()).sum();
        assert_eq!(assigned, p.channels.len());
        // Bundled V3 jobs are far below the drain on every recorder.
        for r in &p.recorders {
            assert!(
                r.arrival_hz < r.drain_hz,
                "recorder {} overloaded",
                r.recorder
            );
        }
    }

    #[test]
    fn kernel_instrumentation_raises_density() {
        let (app, mut machine, zm4) = setup(Version::V4);
        let base = predict(&app, &machine, &zm4);
        machine.kernel_instrumentation = true;
        let instrumented = predict(&app, &machine, &zm4);
        for (b, k) in base.channels.iter().zip(&instrumented.channels) {
            assert!(k.events_per_job > b.events_per_job);
        }
    }

    #[test]
    fn backlog_peaks_at_a_busy_endpoint() {
        let fast = ChannelLoad {
            channel: 0,
            role: "servant",
            events_per_job: 1.0,
            min_seconds_per_job: 0.001,
            jobs: 1000.0,
            peak_hz: 9_000.0,
            busy_seconds: 1.0,
        };
        let slow = ChannelLoad {
            channel: 1,
            peak_hz: 6_000.0,
            busy_seconds: 3.0,
            ..fast.clone()
        };
        // Combined 15k vs 10k drain for 1 s (backlog 5k), then 6k vs 10k
        // drains it back down: the peak is at t = 1 s.
        let peak = peak_backlog(&[&fast, &slow], 10_000.0);
        assert!((peak - 5_000.0).abs() < 1e-6, "peak {peak}");
    }
}
