//! Machine-readable renderers for diagnostic reports: JSON and SARIF.
//!
//! The human rendering lives on [`Report::render`]; this module adds
//! the two artifact formats the CI gate uploads:
//!
//! * [`report_json`] / [`reports_json`] — a plain JSON object per
//!   report (subject, counts, findings with structured locations);
//! * [`sarif`] — a minimal [SARIF 2.1.0] log: one run, one rule per
//!   distinct diagnostic code, one result per finding, with the
//!   structured [`Location`] mapped to a SARIF logical location.
//!
//! Both are hand-rendered (stable key order, two-space indentation) —
//! the workspace is offline and carries no serde; determinism matters
//! more than generality because the V1–V4 outputs are golden-snapshot
//! tested.
//!
//! [SARIF 2.1.0]: https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::diag::{Location, Report};

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn str_array(items: &[String], indent: &str) -> String {
    if items.is_empty() {
        return "[]".to_owned();
    }
    let inner: Vec<String> = items
        .iter()
        .map(|s| format!("{indent}  \"{}\"", escape(s)))
        .collect();
    format!("[\n{}\n{indent}]", inner.join(",\n"))
}

fn location_json(location: &Location, indent: &str) -> String {
    let mut fields = vec![format!("\"kind\": \"{}\"", location.kind())];
    match location {
        Location::None => {}
        Location::Config { field, value } => {
            fields.push(format!("\"field\": \"{}\"", escape(field)));
            fields.push(format!("\"value\": \"{}\"", escape(value)));
        }
        Location::Token { token } => fields.push(format!("\"token\": {token}")),
        Location::Sim { time_ns, channel } => {
            fields.push(format!("\"time_ns\": {time_ns}"));
            fields.push(format!("\"channel\": {channel}"));
        }
        Location::Model { path } => {
            fields.push(format!(
                "\"path\": {}",
                str_array(path, &format!("{indent}  "))
            ));
        }
    }
    let inner: Vec<String> = fields
        .into_iter()
        .map(|f| format!("{indent}  {f}"))
        .collect();
    format!("{{\n{}\n{indent}}}", inner.join(",\n"))
}

/// Renders one report as a JSON object at `indent` nesting levels.
pub fn report_json_at(report: &Report, level: usize) -> String {
    let pad = "  ".repeat(level);
    let mut out = String::new();
    let _ = writeln!(out, "{pad}{{");
    let _ = writeln!(out, "{pad}  \"subject\": \"{}\",", escape(&report.subject));
    let _ = writeln!(out, "{pad}  \"errors\": {},", report.errors());
    let _ = writeln!(out, "{pad}  \"warnings\": {},", report.warnings());
    let _ = writeln!(
        out,
        "{pad}  \"info\": {},",
        report.count(crate::diag::Severity::Info)
    );
    if report.findings.is_empty() {
        let _ = writeln!(out, "{pad}  \"findings\": []");
    } else {
        let _ = writeln!(out, "{pad}  \"findings\": [");
        let items: Vec<String> = report
            .findings
            .iter()
            .map(|f| {
                let fp = format!("{pad}    ");
                let mut o = String::new();
                let _ = writeln!(o, "{fp}{{");
                let _ = writeln!(o, "{fp}  \"code\": \"{}\",", escape(f.code));
                let _ = writeln!(o, "{fp}  \"severity\": \"{}\",", f.severity);
                let _ = writeln!(o, "{fp}  \"message\": \"{}\",", escape(&f.message));
                let _ = writeln!(o, "{fp}  \"span\": \"{}\",", escape(&f.span));
                let _ = writeln!(
                    o,
                    "{fp}  \"location\": {},",
                    location_json(&f.location, &format!("{fp}  "))
                );
                let _ = writeln!(
                    o,
                    "{fp}  \"notes\": {},",
                    str_array(&f.notes, &format!("{fp}  "))
                );
                let _ = writeln!(
                    o,
                    "{fp}  \"helps\": {}",
                    str_array(&f.helps, &format!("{fp}  "))
                );
                let _ = write!(o, "{fp}}}");
                o
            })
            .collect();
        let _ = writeln!(out, "{}", items.join(",\n"));
        let _ = writeln!(out, "{pad}  ]");
    }
    let _ = write!(out, "{pad}}}");
    out
}

/// Renders one report as a standalone JSON document.
pub fn report_json(report: &Report) -> String {
    let mut out = report_json_at(report, 0);
    out.push('\n');
    out
}

/// Renders several reports as one JSON document: an object with a
/// `reports` array (the `analyze --json` artifact).
pub fn reports_json(reports: &[Report]) -> String {
    reports_json_with_timings(reports, &[])
}

/// Per-subject analysis cost entry for the `analyze --json` artifact:
/// the subject string plus `(layer key, milliseconds)` pairs, rendered
/// as a top-level `timings` array. Wall times vary run to run, so the
/// golden snapshots use [`reports_json`] (no `timings` key) and the CLI
/// adds this block only to its written artifacts.
pub type SubjectTimings = (String, Vec<(&'static str, f64)>);

/// [`reports_json`] plus a `timings` array reporting per-layer analysis
/// wall time for each subject. An empty `timings` slice renders the
/// exact [`reports_json`] document.
pub fn reports_json_with_timings(reports: &[Report], timings: &[SubjectTimings]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema_version\": 1,\n  \"reports\": [\n");
    let items: Vec<String> = reports.iter().map(|r| report_json_at(r, 2)).collect();
    out.push_str(&items.join(",\n"));
    out.push_str("\n  ]");
    if !timings.is_empty() {
        out.push_str(",\n  \"timings\": [\n");
        let items: Vec<String> = timings
            .iter()
            .map(|(subject, layers)| {
                let mut o = String::new();
                let _ = writeln!(o, "    {{");
                let _ = writeln!(o, "      \"subject\": \"{}\",", escape(subject));
                let fields: Vec<String> = layers
                    .iter()
                    .map(|(key, ms)| format!("      \"{key}\": {ms:.3}"))
                    .collect();
                let _ = writeln!(o, "{}", fields.join(",\n"));
                let _ = write!(o, "    }}");
                o
            })
            .collect();
        out.push_str(&items.join(",\n"));
        out.push_str("\n  ]");
    }
    out.push_str("\n}\n");
    out
}

/// Renders reports as one SARIF 2.1.0 log with a single run.
///
/// Rules are collected from the distinct diagnostic codes (sorted, so
/// the output is deterministic); each finding becomes a `result` whose
/// message concatenates the headline with its note/help lines and whose
/// logical location carries [`Location::logical_name`].
pub fn sarif(reports: &[Report]) -> String {
    // One rule per code, with the first-seen message as description.
    let mut rules: BTreeMap<&str, &str> = BTreeMap::new();
    for report in reports {
        for f in &report.findings {
            rules.entry(f.code).or_insert(&f.message);
        }
    }
    let rule_index: BTreeMap<&str, usize> =
        rules.keys().enumerate().map(|(i, &c)| (c, i)).collect();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"suprenum-analyzer\",\n");
    out.push_str(
        "          \"informationUri\": \"https://github.com/suprenum-monitor/suprenum-monitor\",\n",
    );
    if rules.is_empty() {
        out.push_str("          \"rules\": []\n");
    } else {
        out.push_str("          \"rules\": [\n");
        let items: Vec<String> = rules
            .iter()
            .map(|(code, desc)| {
                format!(
                    "            {{\n              \"id\": \"{}\",\n              \
                     \"shortDescription\": {{ \"text\": \"{}\" }}\n            }}",
                    escape(code),
                    escape(desc)
                )
            })
            .collect();
        out.push_str(&items.join(",\n"));
        out.push_str("\n          ]\n");
    }
    out.push_str("        }\n      },\n");

    let mut results: Vec<String> = Vec::new();
    for report in reports {
        for f in &report.findings {
            let mut text = f.message.clone();
            for n in &f.notes {
                let _ = write!(text, "\nnote: {n}");
            }
            for h in &f.helps {
                let _ = write!(text, "\nhelp: {h}");
            }
            let logical = if f.span.is_empty() {
                report.subject.clone()
            } else {
                f.span.clone()
            };
            let qualified = match &f.location {
                Location::None => logical,
                loc => loc.logical_name(),
            };
            results.push(format!(
                "        {{\n          \"ruleId\": \"{}\",\n          \"ruleIndex\": {},\n          \
                 \"level\": \"{}\",\n          \"message\": {{ \"text\": \"{}\" }},\n          \
                 \"locations\": [\n            {{\n              \"logicalLocations\": [\n                \
                 {{ \"fullyQualifiedName\": \"{}\" }}\n              ]\n            }}\n          ]\n        }}",
                escape(f.code),
                rule_index[f.code],
                f.severity.sarif_level(),
                escape(&text),
                escape(&qualified),
            ));
        }
    }
    if results.is_empty() {
        out.push_str("      \"results\": []\n");
    } else {
        out.push_str("      \"results\": [\n");
        out.push_str(&results.join(",\n"));
        out.push_str("\n      ]\n");
    }
    out.push_str("    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Finding, Report};

    fn sample() -> Report {
        let mut r = Report::new("Version 3 (agents both, bundle 50)");
        r.push(
            Finding::error("AN-PROTO-002", "queue \"too small\"")
                .at_config("app.pixel_queue_capacity", 768)
                .note("demand is 2250")
                .help("raise the constant"),
        );
        r.push(Finding::info("AN-MODEL-003", "credits conserved"));
        r
    }

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_contains_structured_location() {
        let text = report_json(&sample());
        assert!(text.contains("\"code\": \"AN-PROTO-002\""));
        assert!(text.contains("\"kind\": \"config\""));
        assert!(text.contains("\"field\": \"app.pixel_queue_capacity\""));
        assert!(text.contains("\"value\": \"768\""));
        assert!(text.contains("queue \\\"too small\\\""));
        assert!(text.contains("\"errors\": 1"));
    }

    #[test]
    fn json_parses_as_balanced_braces() {
        // Without serde, a structural smoke check: balanced braces and
        // brackets outside string literals.
        let text = reports_json(&[sample(), Report::new("clean")]);
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in text.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn timings_block_is_additive() {
        let reports = [sample()];
        let bare = reports_json(&reports);
        assert_eq!(bare, reports_json_with_timings(&reports, &[]));
        let timed = reports_json_with_timings(
            &reports,
            &[(
                "version 3".to_owned(),
                vec![("token_ms", 0.25), ("model_ms", 12.5)],
            )],
        );
        assert!(timed.contains("\"timings\": ["));
        assert!(timed.contains("\"token_ms\": 0.250"));
        assert!(timed.contains("\"model_ms\": 12.500"));
        // The reports array itself is unchanged by the timings block.
        assert!(timed.starts_with(bare.trim_end_matches("\n}\n")));
    }

    #[test]
    fn sarif_has_rules_and_results() {
        let text = sarif(&[sample()]);
        assert!(text.contains("\"version\": \"2.1.0\""));
        assert!(text.contains("\"id\": \"AN-MODEL-003\""));
        assert!(text.contains("\"id\": \"AN-PROTO-002\""));
        assert!(text.contains("\"level\": \"error\""));
        assert!(text.contains("\"level\": \"note\""));
        assert!(text.contains("app.pixel_queue_capacity"));
        assert!(text.contains("note: demand is 2250"));
        // Rule indices refer to the sorted rule list: AN-MODEL-003 is 0.
        assert!(text.contains("\"ruleId\": \"AN-MODEL-003\",\n          \"ruleIndex\": 0"));
    }

    #[test]
    fn empty_reports_render_empty_runs() {
        let text = sarif(&[]);
        assert!(text.contains("\"rules\": []"));
        assert!(text.contains("\"results\": []"));
    }
}
