//! Static analysis of instrumentation and protocol configurations.
//!
//! The paper's evaluation chapter finds its bugs *dynamically*: E2
//! discovers version 3's undersized pixel queue in a Gantt chart, E3
//! discovers event loss by watching a FIFO overflow. This crate front-
//! loads that work — everything that is decidable from the declared
//! configuration is checked **before** a simulation runs:
//!
//! * [`token_lints`] — lints over the declared instrumentation point
//!   maps ([`raysim::tokens::point_map`], [`suprenum::os_tokens`]):
//!   unmatched begin/end pairs, duplicate and colliding token ids,
//!   kernel-reservation violations, shared-display interleaving
//!   hazards (`AN-TOKEN-*`).
//! * [`protocol`] — the version's wait-for/message-flow graph: deadlock
//!   cycles, pseudo-synchronous mailbox coupling, window-credit
//!   conservation, and the pixel-queue capacity check that catches the
//!   version-3 bug statically (`AN-PROTO-*`).
//! * [`rate`] — worst-case per-channel event rates aggregated per ZM4
//!   event recorder against the 10 000 events/s drain and the 32 K
//!   FIFO: predicted event loss before any event exists (`AN-RATE-*`).
//!
//! Findings are [`diag::Finding`]s with stable machine-readable codes,
//! collected into [`diag::Report`]s that render in `rustc` style.
//!
//! # One-call API
//!
//! ```
//! use analyzer::analyze_version;
//! use raysim::config::Version;
//!
//! let report = analyze_version(Version::V3);
//! assert!(report.contains("AN-PROTO-002"), "{}", report.render());
//! ```
//!
//! # Pre-flight wiring
//!
//! [`raysim::run::run`] consults a [`raysim::run::PreflightPolicy`];
//! [`preflight::warn_policy`] and [`preflight::deny_policy`] supply the
//! analysis hook without a dependency cycle.

pub mod diag;
pub mod preflight;
pub mod protocol;
pub mod rate;
pub mod token_lints;

pub use diag::{Finding, Report, Severity};
pub use preflight::{
    analyze_all_versions, analyze_app, analyze_run, analyze_version, deny_policy, preflight_hook,
    warn_policy,
};
pub use protocol::{analyze_protocol, CreditLedger, ProtocolGraph};
pub use rate::{analyze_rate, predict, RatePrediction};
pub use token_lints::{lint_pair, lint_stock_maps, TokenDecl, TokenMap};
