//! Static analysis of instrumentation and protocol configurations.
//!
//! The paper's evaluation chapter finds its bugs *dynamically*: E2
//! discovers version 3's undersized pixel queue in a Gantt chart, E3
//! discovers event loss by watching a FIFO overflow. This crate front-
//! loads that work — everything that is decidable from the declared
//! configuration is checked **before** a simulation runs:
//!
//! * [`token_lints`] — lints over the declared instrumentation point
//!   maps ([`raysim::tokens::point_map`], [`suprenum::os_tokens`]):
//!   unmatched begin/end pairs, duplicate and colliding token ids,
//!   kernel-reservation violations, shared-display interleaving
//!   hazards (`AN-TOKEN-*`).
//! * [`protocol`] — the version's wait-for/message-flow graph: deadlock
//!   cycles, pseudo-synchronous mailbox coupling, window-credit
//!   conservation, and the pixel-queue capacity check that catches the
//!   version-3 bug statically (`AN-PROTO-*`).
//! * [`rate`] — worst-case per-channel event rates aggregated per ZM4
//!   event recorder against the 10 000 events/s drain and the 32 K
//!   FIFO: predicted event loss before any event exists (`AN-RATE-*`).
//! * [`model`] — the bounded protocol model checker: deadlock
//!   reachability with counterexample paths, the V3 window collapse as
//!   a reachability verdict, credit conservation over *all* reachable
//!   states, and the effective-synchrony theorem with a counterexample
//!   under a preemptive-scheduler toggle (`AN-MODEL-*`).
//! * [`hb`] — the vector-clock happens-before engine over recorded
//!   traces, cross-validated against the model checker's proven
//!   orderings (`AN-HB-*`).
//! * [`race`] — the DPOR message-race explorer (sleep sets over a
//!   persistent-set reduction): mailbox receive-races, lost wakeups,
//!   lost signals and nondeterministic monitoring interleavings, each
//!   with a replayable witness interleaving cross-checked against the
//!   happens-before engine (`AN-RACE-*`).
//! * [`structural`] — the place/transition-net layer: P-invariants by
//!   Gaussian elimination over the incidence matrix (credit
//!   conservation as a machine-checkable certificate), siphon/trap
//!   deadlock analysis, and capacity synthesis — polynomial-time
//!   proofs that hold for any shape size, closing the claims the
//!   exhaustive layers leave partial at their state budgets
//!   (`AN-STRUCT-*`).
//!
//! Findings are [`diag::Diagnostic`]s with stable machine-readable
//! codes, severities, and structured locations, collected into
//! [`diag::Report`]s that render in `rustc` style — or as JSON and
//! SARIF via [`render`].
//!
//! # One-call API
//!
//! ```
//! use analyzer::analyze_version;
//! use raysim::config::Version;
//!
//! let report = analyze_version(Version::V3);
//! assert!(report.contains("AN-PROTO-002"), "{}", report.render());
//! ```
//!
//! # Pre-flight wiring
//!
//! [`raysim::run::run`] consults a [`raysim::run::PreflightPolicy`];
//! [`preflight::warn_policy`] and [`preflight::deny_policy`] supply the
//! analysis hook without a dependency cycle.

pub mod diag;
pub mod hb;
pub mod model;
pub mod preflight;
pub mod protocol;
pub mod race;
pub mod rate;
pub mod render;
pub mod structural;
pub mod token_lints;

pub use diag::{Diagnostic, Finding, Location, Report, Severity};
pub use hb::{analyze_trace, validate_orders, HbStats};
pub use model::{
    check_app, check_app_timed, check_preemptive_variant, proven_orders, ModelBudget, ModelTimings,
    OrderScope, ProvenOrder,
};
pub use preflight::{
    analyze_all_versions, analyze_app, analyze_run, analyze_version, analyze_version_timed,
    deny_policy, pipeline_deny, pipeline_hook, pipeline_warn, policy_from_env, preflight_hook,
    warn_policy, workload_deny, workload_hook, workload_warn, LayerTimings,
};
pub use protocol::{analyze_protocol, CreditLedger, ProtocolGraph};
pub use race::{
    check_race_model, check_races, hb_crosscheck, scope_of_orders, witness_is_concurrent,
    RaceModel, RaceVerdict, RaceWitness,
};
pub use rate::{analyze_rate, predict, RatePrediction};
pub use render::{report_json, reports_json, reports_json_with_timings, sarif, SubjectTimings};
pub use structural::{
    analyze_structural, check_structural, DeadlockVerdict, PInvariant, PetriNet, ProtocolNet,
    StructuralVerdict,
};
pub use token_lints::{lint_pair, lint_stock_maps, TokenDecl, TokenMap};
