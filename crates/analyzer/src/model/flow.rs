//! The credit/queue flow model: an exhaustively explored abstraction of
//! the master↔servant window protocol at paper scale.
//!
//! The state tracks the protocol in **bundle units**: jobs outstanding
//! at servants, completed-but-unwritten bundles, the contiguous prefix
//! at the write head, and the unassigned remainder (saturated to
//! `MANY` so the 16 384-pixel paper image stays finite). Servants are
//! collapsed into one credit counter — they are symmetric, any servant
//! with a credit can accept any job, and any outstanding job may
//! complete next, so per-servant credit splits do not change
//! reachability of this projection.
//!
//! The abstraction is an **over-approximation** of the simulator: which
//! completed bundle bridges the contiguous prefix is chosen
//! nondeterministically (any extension up to the completed total),
//! which includes every real completion order. Two exact rules are kept
//! because the verdicts depend on them:
//!
//! * writes are *urgent*: whenever the contiguous prefix reaches the
//!   write chunk the master writes it in the same step, exactly like
//!   [`raysim`]'s master checking `write_ready` after every receive;
//! * with no job outstanding, everything in flight is contiguous (there
//!   is no gap a missing bundle could leave), so the state is forced to
//!   full bridge — this is what makes the eager write-back fallback
//!   fire and is why the implemented protocol cannot wedge in eager
//!   mode.
//!
//! Explored exhaustively (BFS with parent pointers), the model yields
//! machine-checked verdicts: deadlock reachability with a counterexample
//! path, the peak number of concurrently outstanding jobs (the V3
//! window collapse, with a witness path), and credit conservation as an
//! invariant over *all* reachable states. Transition labels are encoded
//! as compact actions and rendered to prose only when a path is
//! reconstructed — the exploration itself allocates nothing per edge
//! beyond the hash insert.
//!
//! # Partial-order reduction
//!
//! [`FlowModel::explore`] applies a **send-priority persistent set
//! with urgent-send closure**: in any state where the master can send,
//! only the send transitions are expanded (completion branches are
//! deferred until no send is enabled), and chains of forced sends are
//! folded into the incoming edge the way the urgent writes already are
//! — only *send-closed* states are stored, each edge carrying the
//! count of sends folded into it so witness paths stay replayable.
//! This is sound for every verdict the model reports: sends and
//! completions never disable each other (a completion frees queue
//! space and returns a credit; a send consumes them and every
//! completion choice available before the send is still available
//! after it), a send-enabled state always has a successor (never a
//! deadlock), peak concurrency is reached at send-closed states (out
//! only grows along a send chain), and the credit/capacity invariants
//! are enabledness-guarded on the folded steps. The interleaving
//! blowup of send×complete orders collapses ~6× at paper scale.
//! [`FlowModel::explore_full`] keeps the unreduced exploration; the
//! `dpor_soundness` differential proptest pins the two to identical
//! verdicts on randomized small shapes.

use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

/// The flow model's parameters, all in bundle units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowModel {
    /// Total window credits: servants × window.
    pub credits: u32,
    /// Pixel-queue capacity in bundles (`⌊capacity / bundle⌋`).
    pub capacity_b: u32,
    /// Write chunk in bundles (`⌈write_chunk / bundle⌉`).
    pub chunk_b: u32,
    /// Eager write-back: the master flushes a partial chunk when
    /// nothing is outstanding and nothing is assignable (the
    /// implemented master's fallback). `false` models strict chunked
    /// write-back.
    pub eager: bool,
}

/// Sentinel for "more bundles than the protocol can distinguish".
const MANY: u16 = u16::MAX;

/// One abstract state (bundle units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    /// Jobs outstanding at servants (each holds one credit).
    out: u16,
    /// Completed-but-unwritten bundles in the queue.
    done: u16,
    /// Contiguous completed bundles at the write head (`<= done`).
    contig: u16,
    /// Unassigned bundles, saturated to [`MANY`].
    remaining: u16,
}

/// A transition, encoded compactly; rendered to prose only for
/// counterexample paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Initial state marker (never rendered).
    Init,
    /// Master sends a job; the remainder stays saturated.
    SendMany,
    /// Master sends a job and the remainder collapses to the concrete
    /// tail (this was one of the image's last bundles).
    SendTail(u16),
    /// Master sends a job with the given concrete bundle count left
    /// after it.
    SendCount(u16),
    /// A servant completes a job that does not touch the write head.
    CompleteAway,
    /// A servant completes a job; the contiguous stretch extends to
    /// the given length (bridging earlier completions); any full
    /// chunks are written immediately.
    CompleteBridge(u16),
}

impl Action {
    fn render(self) -> String {
        match self {
            Action::Init => String::new(),
            Action::SendMany => "master sends a job (plenty of pixels left)".to_owned(),
            Action::SendTail(n) => {
                format!("master sends a job ({n} bundle(s) of the image left)")
            }
            Action::SendCount(n) => format!("master sends a job ({n} bundle(s) left)"),
            Action::CompleteAway => "a servant completes a job away from the write head".to_owned(),
            Action::CompleteBridge(c) => format!(
                "a servant completes a job; the contiguous stretch reaches {c} bundle(s) \
                 and the master writes every full chunk"
            ),
        }
    }
}

/// What exploring the flow model concluded.
#[derive(Debug, Clone)]
pub struct FlowVerdict {
    /// Reachable states explored.
    pub states: usize,
    /// `true` when the exploration hit the state budget; universal
    /// claims (deadlock freedom, peak concurrency) are then partial.
    pub bounded: bool,
    /// A transition path to a deadlocked state, if one is reachable.
    pub deadlock: Option<Vec<String>>,
    /// Most jobs ever concurrently outstanding, over all explored
    /// states.
    pub max_outstanding: u32,
    /// A transition path witnessing `max_outstanding`.
    pub peak_witness: Vec<String>,
    /// `true` when no reachable state held more jobs than credits
    /// (no credit is ever minted) — the credit-conservation invariant.
    pub credits_conserved: bool,
    /// `true` when `outstanding + completed <= capacity_b` held in
    /// every explored state.
    pub capacity_respected: bool,
    /// `true` when a completed state (all work written) was reached.
    pub completion_reachable: bool,
}

/// Membership set for explored states.
///
/// The state fields are tightly bounded (`out ≤ credits`, `done ≤
/// capacity_b`, `contig < chunk_b` after normalization, `remaining ∈
/// {MANY, 0..=tail}`), so for every realistic shape the whole space
/// indexes into a dense bitset — no hashing on the hot path, which is
/// traversed once per *edge* (~10⁸ at paper scale). Shapes whose
/// product overflows the cap fall back to a hash set with a cheap
/// multiplicative hasher.
enum Seen {
    Dense {
        bits: Vec<u64>,
        done_dim: usize,
        contig_dim: usize,
        rem_dim: usize,
    },
    Sparse(HashSet<u64, BuildHasherDefault<FxHasher>>),
}

/// Largest dense table allowed, in bits (16 MiB of memory).
const DENSE_CAP: usize = 1 << 27;

impl Seen {
    fn new(m: &FlowModel) -> Seen {
        let out_dim = m.credits.min(m.capacity_b) as usize + 1;
        let done_dim = m.capacity_b as usize + 1;
        let contig_dim = (m.chunk_b as usize).max(1);
        let rem_dim = usize::from(m.tail()) + 2;
        let size = out_dim
            .checked_mul(done_dim)
            .and_then(|s| s.checked_mul(contig_dim))
            .and_then(|s| s.checked_mul(rem_dim));
        match size {
            Some(size) if size <= DENSE_CAP => Seen::Dense {
                bits: vec![0; size.div_ceil(64)],
                done_dim,
                contig_dim,
                rem_dim,
            },
            _ => Seen::Sparse(HashSet::default()),
        }
    }

    /// Marks `s` as seen; returns `true` when it was new.
    fn insert(&mut self, s: State) -> bool {
        match self {
            Seen::Dense {
                bits,
                done_dim,
                contig_dim,
                rem_dim,
            } => {
                let rem = if s.remaining == MANY {
                    0
                } else {
                    usize::from(s.remaining) + 1
                };
                let idx = ((usize::from(s.out) * *done_dim + usize::from(s.done)) * *contig_dim
                    + usize::from(s.contig))
                    * *rem_dim
                    + rem;
                let (word, bit) = (idx / 64, 1u64 << (idx % 64));
                let new = bits[word] & bit == 0;
                bits[word] |= bit;
                new
            }
            Seen::Sparse(set) => {
                let key = (u64::from(s.out) << 48)
                    | (u64::from(s.done) << 32)
                    | (u64::from(s.contig) << 16)
                    | u64::from(s.remaining);
                set.insert(key)
            }
        }
    }
}

/// FxHash-style multiplicative hasher for the sparse fallback — the
/// derived `SipHash` dominates exploration time on debug builds.
#[derive(Default)]
struct FxHasher(u64);

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl FlowModel {
    /// Builds the model from protocol constants in **pixel** units.
    pub fn from_protocol(
        servants: u32,
        window: u32,
        bundle: u32,
        capacity: u32,
        chunk: u32,
        eager: bool,
    ) -> FlowModel {
        let bundle = bundle.max(1);
        FlowModel {
            credits: servants * window,
            capacity_b: (capacity / bundle).max(1),
            chunk_b: chunk.div_ceil(bundle).max(1),
            eager,
        }
    }

    /// Tail length (bundles) used when `MANY` collapses to a concrete
    /// remainder: just enough to exercise the endgame write-back.
    fn tail(&self) -> u16 {
        (self.chunk_b + 1).min(u32::from(u16::MAX - 1)) as u16
    }

    fn in_flight(s: State) -> u32 {
        u32::from(s.out) + u32::from(s.done)
    }

    /// Bundles assignable right now: free queue slots, remainder
    /// permitting.
    fn assignable(&self, s: State) -> u32 {
        let free = self.capacity_b.saturating_sub(Self::in_flight(s));
        if s.remaining == MANY {
            free
        } else {
            free.min(u32::from(s.remaining))
        }
    }

    /// Has every bundle been assigned, completed and written?
    fn is_complete(s: State) -> bool {
        s.remaining == 0 && s.out == 0 && s.done == 0
    }

    /// Applies the master's deterministic write-back to a state:
    /// chunk-triggered writes always; the eager fallback flush when
    /// nothing is outstanding and nothing is assignable.
    fn normalize(&self, mut s: State) -> State {
        loop {
            // With no job outstanding there is no gap: everything
            // completed is contiguous from the write head.
            if s.out == 0 {
                s.contig = s.done;
            }
            if u32::from(s.contig) >= self.chunk_b && s.contig > 0 {
                s.done -= s.contig;
                s.contig = 0;
                continue;
            }
            if self.eager && s.out == 0 && s.done > 0 && self.assignable(s) == 0 {
                // The implemented master's fallback: flush the partial
                // stretch rather than stall.
                s.done = 0;
                s.contig = 0;
                continue;
            }
            return s;
        }
    }

    /// Is a send enabled in `s`?
    fn can_send(&self, s: State) -> bool {
        u32::from(s.out) < self.credits && self.assignable(s) > 0
    }

    /// Pushes `t` — reached via `action` with `burst` sends already
    /// folded into the edge — or, while sends are still enabled in it,
    /// its send-closure (urgent sends, branching where the saturated
    /// remainder may collapse to a concrete tail).
    fn push_closed(
        &self,
        t: State,
        action: Action,
        burst: u16,
        next: &mut Vec<(State, Action, u16)>,
    ) {
        if !self.can_send(t) {
            next.push((t, action, burst));
            return;
        }
        if t.remaining == MANY {
            let mut u = t;
            u.out += 1;
            self.push_closed(self.normalize(u), action, burst + 1, next);
            let mut u = t;
            u.out += 1;
            u.remaining = self.tail();
            self.push_closed(self.normalize(u), action, burst + 1, next);
        } else {
            let mut u = t;
            u.out += 1;
            u.remaining -= 1;
            self.push_closed(self.normalize(u), action, burst + 1, next);
        }
    }

    /// Writes all successor states with compact action codes into
    /// `next`, each edge tagged with the number of urgent sends folded
    /// into it. With `reduced`, states where a send is enabled expand
    /// only the send transitions (the persistent set) and every
    /// successor is closed under forced sends, so only send-closed
    /// states are ever stored.
    fn successors(&self, s: State, reduced: bool, next: &mut Vec<(State, Action, u16)>) {
        next.clear();

        // Send: a credit and a queue slot carry one bundle out.
        if self.can_send(s) {
            if s.remaining == MANY {
                let mut t = s;
                t.out += 1;
                let (t, a) = (self.normalize(t), Action::SendMany);
                if reduced {
                    self.push_closed(t, a, 0, next);
                } else {
                    next.push((t, a, 0));
                }
                let mut t = s;
                t.out += 1;
                t.remaining = self.tail();
                let (t, a) = (self.normalize(t), Action::SendTail(self.tail()));
                if reduced {
                    self.push_closed(t, a, 0, next);
                } else {
                    next.push((t, a, 0));
                }
            } else {
                let mut t = s;
                t.out += 1;
                t.remaining -= 1;
                let a = Action::SendCount(t.remaining);
                let t = self.normalize(t);
                if reduced {
                    self.push_closed(t, a, 0, next);
                } else {
                    next.push((t, a, 0));
                }
            }
            if reduced {
                // Send-priority persistent set: completions commute
                // with (and never disable) sends, so their expansion
                // waits until no send is enabled.
                return;
            }
        }

        // Complete: any outstanding job finishes; the master receives
        // the result and the credit returns. The completed bundle may
        // extend the contiguous prefix by any amount (bridging
        // previously completed bundles) or leave it untouched.
        if s.out > 0 {
            let out = s.out - 1;
            let done = s.done + 1;
            if out > 0 {
                let mut t = s;
                t.out = out;
                t.done = done;
                let t = self.normalize(t);
                if reduced {
                    self.push_closed(t, Action::CompleteAway, 0, next);
                } else {
                    next.push((t, Action::CompleteAway, 0));
                }
            }
            for contig in (s.contig + 1)..=done {
                let mut t = s;
                t.out = out;
                t.done = done;
                t.contig = contig;
                let t = self.normalize(t);
                if reduced {
                    self.push_closed(t, Action::CompleteBridge(contig), 0, next);
                } else {
                    next.push((t, Action::CompleteBridge(contig), 0));
                }
            }
        }
    }

    /// Explores the state space with send-priority partial-order
    /// reduction (BFS), up to `max_states` states. Verdicts equal
    /// [`FlowModel::explore_full`]'s in a fraction of the states.
    pub fn explore(&self, max_states: usize) -> FlowVerdict {
        self.explore_mode(max_states, true)
    }

    /// Explores every reachable state with no reduction — the
    /// reference exploration the differential tests compare against.
    pub fn explore_full(&self, max_states: usize) -> FlowVerdict {
        self.explore_mode(max_states, false)
    }

    fn explore_mode(&self, max_states: usize, reduced: bool) -> FlowVerdict {
        let initial = self.normalize(State {
            out: 0,
            done: 0,
            contig: 0,
            remaining: MANY,
        });
        let mut seen = Seen::new(self);
        // (state, parent index, action from the parent, sends folded
        // into the edge)
        let mut nodes: Vec<(State, usize, Action, u16)> =
            vec![(initial, usize::MAX, Action::Init, 0)];
        seen.insert(initial);

        let mut verdict = FlowVerdict {
            states: 0,
            bounded: false,
            deadlock: None,
            max_outstanding: 0,
            peak_witness: Vec::new(),
            credits_conserved: true,
            capacity_respected: true,
            completion_reachable: false,
        };
        let mut peak_at = 0usize;
        let mut succs: Vec<(State, Action, u16)> = Vec::new();

        let mut head = 0usize;
        while head < nodes.len() && !verdict.bounded {
            let (s, _, _, _) = nodes[head];

            // Mechanical invariants, checked in every reachable state:
            // no credit is ever minted (outstanding jobs never exceed
            // the window total) and the queue bound is never overrun.
            if u32::from(s.out) > self.credits {
                verdict.credits_conserved = false;
            }
            if Self::in_flight(s) > self.capacity_b {
                verdict.capacity_respected = false;
            }
            if u32::from(s.out) > verdict.max_outstanding {
                verdict.max_outstanding = u32::from(s.out);
                peak_at = head;
            }

            if Self::is_complete(s) {
                verdict.completion_reachable = true;
                head += 1;
                continue;
            }

            self.successors(s, reduced, &mut succs);
            if succs.is_empty() {
                if verdict.deadlock.is_none() {
                    verdict.deadlock = Some(path_to(&nodes, head));
                }
                head += 1;
                continue;
            }
            for &(t, action, burst) in &succs {
                if nodes.len() >= max_states {
                    verdict.bounded = true;
                    break;
                }
                if seen.insert(t) {
                    nodes.push((t, head, action, burst));
                }
            }
            head += 1;
        }

        verdict.states = nodes.len();
        verdict.peak_witness = path_to(&nodes, peak_at);
        verdict
    }
}

/// Reconstructs rendered transition labels from the initial state to
/// `target` via parent pointers. An edge with folded urgent sends
/// renders as its primary action plus one line for the send burst, so
/// a reduced-exploration witness replays the same schedule.
fn path_to(nodes: &[(State, usize, Action, u16)], target: usize) -> Vec<String> {
    let mut labels = Vec::new();
    let mut i = target;
    while i != 0 {
        let (child, parent, action, burst) = &nodes[i];
        if *burst > 0 {
            let left = if child.remaining == MANY {
                "plenty of pixels left".to_owned()
            } else {
                format!("{} bundle(s) left", child.remaining)
            };
            labels.push(format!(
                "the master immediately sends {burst} more job(s) without yielding ({left})"
            ));
        }
        labels.push(action.render());
        i = *parent;
    }
    labels.reverse();
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(credits: u32, capacity_b: u32, chunk_b: u32, eager: bool) -> FlowModel {
        FlowModel {
            credits,
            capacity_b,
            chunk_b,
            eager,
        }
    }

    #[test]
    fn eager_models_are_deadlock_free() {
        for (credits, cap, chunk) in [(45, 15, 2), (45, 163, 2), (4, 16, 1), (2, 2, 3)] {
            let v = model(credits, cap, chunk, true).explore(2_000_000);
            assert!(!v.bounded, "{credits}/{cap}/{chunk} should close");
            assert!(
                v.deadlock.is_none(),
                "eager {credits}/{cap}/{chunk}: {:?}",
                v.deadlock
            );
            assert!(v.credits_conserved);
            assert!(v.capacity_respected);
            assert!(v.completion_reachable);
        }
    }

    #[test]
    fn v3_shape_collapses_the_window() {
        // Paper V3 in bundle units: 45 credits but only ⌊768/50⌋ = 15
        // queue slots.
        let v = FlowModel::from_protocol(15, 3, 50, 768, 64, true).explore(2_000_000);
        assert!(!v.bounded);
        assert_eq!(v.max_outstanding, 15);
        assert!(!v.peak_witness.is_empty());
        assert!(v.deadlock.is_none());
    }

    #[test]
    fn v4_shape_reaches_full_concurrency() {
        // Paper V4: 45 credits, ⌊16384/100⌋ = 163 slots.
        let v = FlowModel::from_protocol(15, 3, 100, 16_384, 128, true).explore(2_000_000);
        assert!(!v.bounded);
        assert_eq!(v.max_outstanding, 45);
        assert!(v.deadlock.is_none());
        assert!(v.credits_conserved);
        assert!(v.completion_reachable);
    }

    #[test]
    fn strict_chunk_larger_than_queue_deadlocks() {
        // chunk_b > capacity_b: the contiguous stretch can never reach
        // the chunk, so strict write-back wedges.
        let v = model(2, 2, 3, false).explore(100_000);
        assert!(!v.bounded);
        let path = v.deadlock.expect("must deadlock");
        assert!(!path.is_empty());
        assert!(path.iter().any(|l| l.contains("sends a job")), "{path:?}");
    }

    #[test]
    fn strict_aligned_config_can_still_wedge_on_the_tail() {
        // Even with chunk_b <= capacity_b a write can overshoot the
        // chunk boundary and leave a short tail: deadlock is reachable
        // (though not inevitable) under strict write-back.
        let v = model(2, 4, 2, false).explore(200_000);
        assert!(!v.bounded);
        assert!(v.completion_reachable);
        assert!(v.deadlock.is_some());
    }

    #[test]
    fn budget_bounds_the_exploration() {
        let v = model(45, 512, 4, true).explore(1_000);
        assert!(v.bounded);
        assert!(v.states <= 1_001);
    }

    #[test]
    fn v1_paper_scale_closes_within_the_full_budget() {
        let v = FlowModel::from_protocol(15, 3, 1, 512, 4, true).explore(2_000_000);
        assert!(!v.bounded, "V1 should close: {} states", v.states);
        assert!(v.deadlock.is_none());
        assert_eq!(v.max_outstanding, 45);
    }

    #[test]
    fn v1_reduction_beats_the_five_x_target() {
        // The unreduced V1/V2 exploration takes 615 535 states; the
        // send-priority reduction must close the same space in at most
        // a fifth of that with the verdict intact.
        let v = FlowModel::from_protocol(15, 3, 1, 512, 4, true).explore(2_000_000);
        assert!(!v.bounded);
        assert!(
            v.states <= 123_000,
            "reduction regressed: {} states",
            v.states
        );
    }

    #[test]
    fn reduction_matches_full_exploration_on_pinned_shapes() {
        // Paper shapes plus the strict write-back wedges: the reduced
        // and unreduced explorations must agree on every verdict field
        // (the randomized twin of this check lives in the
        // `dpor_soundness` proptest suite).
        let shapes = [
            FlowModel::from_protocol(15, 3, 50, 768, 64, true),
            FlowModel::from_protocol(15, 3, 100, 16_384, 128, true),
            model(2, 2, 3, false),
            model(2, 4, 2, false),
            model(4, 16, 1, true),
        ];
        for m in shapes {
            let r = m.explore(2_000_000);
            let f = m.explore_full(2_000_000);
            assert!(!r.bounded && !f.bounded, "{m:?}");
            assert_eq!(r.deadlock.is_some(), f.deadlock.is_some(), "{m:?}");
            assert_eq!(r.max_outstanding, f.max_outstanding, "{m:?}");
            assert_eq!(r.credits_conserved, f.credits_conserved, "{m:?}");
            assert_eq!(r.capacity_respected, f.capacity_respected, "{m:?}");
            assert_eq!(r.completion_reachable, f.completion_reachable, "{m:?}");
            assert!(r.states <= f.states, "{m:?}");
        }
    }
}
