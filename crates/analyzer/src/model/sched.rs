//! The small-scope scheduler model: effective synchrony as a
//! machine-checked property.
//!
//! The paper's headline finding is that SUPRENUM's "asynchronous"
//! mailbox send is *effectively synchronous*: the sender blocks until
//! the destination node's mailbox LWP accepts the message, and under
//! non-preemptive round-robin that LWP only gets the CPU when the
//! destination's user process blocks — so by the time a send completes,
//! sender *and* receiver have both given up their CPUs. ZM4 Gantt
//! charts showed it empirically; this model proves it for a bounded
//! scope and produces a concrete counterexample when the scheduler is
//! made preemptive.
//!
//! Scope: one master and one servant node (with communication agents
//! matching the program version's shape), two jobs under window flow
//! control, one CPU and one kernel mailbox LWP per node, and messages
//! with nonzero transit time. Every interleaving of process steps,
//! message arrivals, dispatches and (optionally) preemptions is
//! explored; at every mailbox *accept* two properties are checked:
//!
//! * **SYNC-1** — the sender is still blocked in the send (the send
//!   cannot have "completed asynchronously" before the sender gave up
//!   its CPU);
//! * **SYNC-2** — no user process on the accepting node is mid-compute
//!   (the mailbox LWP only ran because its owner had blocked).
//!
//! Two jobs matter: the second message can arrive while a user process
//! is mid-compute on the first (the master between receives, the
//! servant between jobs), which is exactly the window a preemptive
//! mailbox LWP would exploit. Non-preemptive scheduling satisfies both
//! properties in every reachable state; the preemptive toggle adds one
//! transition — the mailbox LWP seizes the CPU from a computing user
//! process — and SYNC-2 acquires a reachable counterexample, the Gantt
//! chart the paper would have drawn on a preemptive machine.
//!
//! # Partial-order reduction
//!
//! [`SchedModel::explore`] uses an **ample-set reduction**: when a
//! node's CPU is held by a user process, that process's next step is
//! explored as a singleton ample set whenever it is provably
//! independent of every transition other processes could take first.
//! Under non-preemptive scheduling this always holds — nothing else
//! can touch the node while the CPU is busy (the mailbox LWP needs an
//! idle CPU, a running process is never the sender of an in-flight
//! message, and remote steps only append to transit/pending) — so each
//! node's run-to-block becomes a deterministic chain. Under the
//! preemptive toggle the mailbox LWP *can* interleave, so the
//! singleton is taken only when no message is pending at or in transit
//! to the node and no process's remaining script sends to it; the
//! preemption races that make SYNC-2 fail are always fully expanded.
//! [`SchedModel::explore_full`] keeps the unreduced exploration for
//! the `dpor_soundness` differential proptests.

use std::collections::HashMap;

/// A message: job or result, with an id and the sending process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Msg {
    /// 0 = job, 1 = result.
    kind: u8,
    id: u8,
    from: u8,
}

impl Msg {
    fn describe(self) -> String {
        let kind = if self.kind == 0 { "job" } else { "result" };
        format!("{kind} #{}", self.id)
    }
}

/// One step of a process script.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Send `msg` to process `to` (blocks until the destination node's
    /// mailbox LWP accepts it).
    Send { to: u8, msg: Msg },
    /// Receive the next message from this process's inbox (blocks when
    /// empty).
    Recv,
    /// Compute for a while (two model steps, exposing a mid-compute
    /// window).
    Compute,
    /// Raise a signal for process `p` (a counting semaphore).
    Signal { p: u8 },
    /// Wait for a signal (blocks until one is raised).
    WaitSignal,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Status {
    Ready,
    BlockedSend(Msg),
    BlockedRecv,
    BlockedSig,
    Done,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Proc {
    pc: u8,
    status: Status,
    /// Mid-compute: the process has started but not finished a
    /// [`Op::Compute`] step.
    mid: bool,
    /// Pending signal count.
    sig: u8,
    /// Delivered-but-unconsumed messages.
    inbox: Vec<Msg>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Cpu {
    Idle,
    User(u8),
    Mailbox,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    procs: Vec<Proc>,
    /// Messages sent but not yet arrived at their node: `(msg, dst
    /// proc)`, kept sorted for canonical hashing.
    transit: Vec<(Msg, u8)>,
    /// Per node: arrived messages awaiting mailbox accept, in FIFO
    /// order.
    pending: Vec<Vec<(Msg, u8)>>,
    /// Per node: who holds the CPU.
    cpu: Vec<Cpu>,
}

/// The bounded scope: which communication agents exist and whether the
/// node scheduler may preempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedModel {
    /// The master delegates job sends to an agent on its node.
    pub master_agents: bool,
    /// The servant delegates result sends to an agent on its node.
    pub servant_agents: bool,
    /// Preemptive node scheduler: the mailbox LWP may seize the CPU
    /// from a running user process.
    pub preemptive: bool,
}

/// What exploring the scheduler model concluded.
#[derive(Debug, Clone)]
pub struct SchedVerdict {
    /// Reachable states explored.
    pub states: usize,
    /// `true` when the state budget cut the exploration short.
    pub bounded: bool,
    /// Mailbox accepts examined across all reachable states.
    pub accepts_checked: usize,
    /// Counterexample path: an accept completed while the sender was
    /// not blocked in the send.
    pub sync1_violation: Option<Vec<String>>,
    /// Counterexample path: an accept ran while a user process on the
    /// node was mid-compute.
    pub sync2_violation: Option<Vec<String>>,
    /// `true` when a state with every process finished is reachable.
    pub completion_reachable: bool,
    /// `true` when no reachable non-final state was stuck.
    pub no_stuck_states: bool,
}

impl SchedVerdict {
    /// Both effective-synchrony properties held over all explored
    /// states.
    pub fn effectively_synchronous(&self) -> bool {
        self.sync1_violation.is_none() && self.sync2_violation.is_none()
    }
}

/// The fixed cast of processes: index, node, display name.
struct Cast {
    master: u8,
    servant: u8,
    magent: Option<u8>,
    sagent: Option<u8>,
    node: Vec<u8>,
    names: Vec<&'static str>,
}

impl SchedModel {
    fn cast(&self) -> Cast {
        let mut node = vec![0u8, 1u8];
        let mut names = vec!["the master", "the servant"];
        let mut next = 2u8;
        let magent = if self.master_agents {
            node.push(0);
            names.push("the master's send agent");
            next += 1;
            Some(next - 1)
        } else {
            None
        };
        let sagent = if self.servant_agents {
            node.push(1);
            names.push("the servant's result agent");
            Some(next)
        } else {
            None
        };
        Cast {
            master: 0,
            servant: 1,
            magent,
            sagent,
            node,
            names,
        }
    }

    /// The process scripts: the master distributes two jobs (window
    /// flow control) and collects both results, with admin compute
    /// phases between receives; the servant computes each job in turn.
    /// The compute phases are the mid-compute windows that matter under
    /// preemption — the second message of either direction can arrive
    /// during one.
    fn scripts(&self, cast: &Cast) -> Vec<Vec<Op>> {
        let job = |i: u8, from: u8| Msg {
            kind: 0,
            id: i,
            from,
        };
        let result = |i: u8, from: u8| Msg {
            kind: 1,
            id: i,
            from,
        };

        let mut scripts: Vec<Vec<Op>> = Vec::new();

        // Master.
        let mut master = Vec::new();
        if let Some(ma) = cast.magent {
            master.extend([Op::Signal { p: ma }, Op::Signal { p: ma }]);
        } else {
            for i in 0..2u8 {
                master.push(Op::Send {
                    to: cast.servant,
                    msg: job(i, cast.master),
                });
            }
        }
        master.extend([Op::Compute, Op::Recv, Op::Compute, Op::Recv]);
        scripts.push(master);

        // Servant: two jobs, each received, computed, and answered.
        let mut servant = Vec::new();
        for i in 0..2u8 {
            servant.extend([Op::Recv, Op::Compute]);
            if let Some(sa) = cast.sagent {
                servant.push(Op::Signal { p: sa });
            } else {
                servant.push(Op::Send {
                    to: cast.master,
                    msg: result(i, cast.servant),
                });
            }
        }
        scripts.push(servant);

        // Master's send agent: forwards each job on a signal.
        if let Some(ma) = cast.magent {
            let mut agent = Vec::new();
            for i in 0..2u8 {
                agent.push(Op::WaitSignal);
                agent.push(Op::Send {
                    to: cast.servant,
                    msg: job(i, ma),
                });
            }
            scripts.push(agent);
        }

        // Servant's result agent: forwards each result on a signal.
        if let Some(sa) = cast.sagent {
            let mut agent = Vec::new();
            for i in 0..2u8 {
                agent.push(Op::WaitSignal);
                agent.push(Op::Send {
                    to: cast.master,
                    msg: result(i, sa),
                });
            }
            scripts.push(agent);
        }

        scripts
    }

    /// Explores the interleaving space with ample-set partial-order
    /// reduction (BFS), up to `max_states` states. Verdicts equal
    /// [`SchedModel::explore_full`]'s in fewer states.
    pub fn explore(&self, max_states: usize) -> SchedVerdict {
        self.explore_mode(max_states, true)
    }

    /// Explores every interleaving with no reduction — the reference
    /// exploration the differential tests compare against.
    pub fn explore_full(&self, max_states: usize) -> SchedVerdict {
        self.explore_mode(max_states, false)
    }

    /// Per process and program counter, the bitmask of nodes targeted
    /// by `Op::Send`s at or after that pc — the cheap static fact the
    /// preemptive ample-set condition needs.
    fn future_send_masks(&self, cast: &Cast, scripts: &[Vec<Op>]) -> Vec<Vec<u8>> {
        scripts
            .iter()
            .map(|script| {
                let mut masks = vec![0u8; script.len() + 1];
                for (i, op) in script.iter().enumerate().rev() {
                    masks[i] = masks[i + 1]
                        | match op {
                            Op::Send { to, .. } => 1 << cast.node[*to as usize],
                            _ => 0,
                        };
                }
                masks
            })
            .collect()
    }

    fn explore_mode(&self, max_states: usize, reduced: bool) -> SchedVerdict {
        let cast = self.cast();
        let scripts = self.scripts(&cast);
        let nodes_count = 2usize;
        let send_masks = self.future_send_masks(&cast, &scripts);

        let initial = State {
            procs: scripts
                .iter()
                .map(|_| Proc {
                    pc: 0,
                    status: Status::Ready,
                    mid: false,
                    sig: 0,
                    inbox: Vec::new(),
                })
                .collect(),
            transit: Vec::new(),
            pending: vec![Vec::new(); nodes_count],
            cpu: vec![Cpu::Idle; nodes_count],
        };

        let mut verdict = SchedVerdict {
            states: 0,
            bounded: false,
            accepts_checked: 0,
            sync1_violation: None,
            sync2_violation: None,
            completion_reachable: false,
            no_stuck_states: true,
        };

        let mut seen: HashMap<State, usize> = HashMap::new();
        seen.insert(initial.clone(), 0);
        let mut graph: Vec<(State, usize, String)> = vec![(initial, usize::MAX, String::new())];

        let mut head = 0usize;
        while head < graph.len() {
            let s = graph[head].0.clone();

            if s.procs.iter().all(|p| p.status == Status::Done) {
                verdict.completion_reachable = true;
                head += 1;
                continue;
            }

            let succs = if reduced {
                self.ample_successor(&s, &cast, &scripts, &send_masks)
            } else {
                None
            }
            .map(|step| vec![step])
            .unwrap_or_else(|| self.successors(&s, &cast, &scripts, head, &graph, &mut verdict));
            if succs.is_empty() {
                verdict.no_stuck_states = false;
                head += 1;
                continue;
            }
            for (t, label) in succs {
                if seen.len() >= max_states {
                    verdict.bounded = true;
                    break;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(t.clone()) {
                    e.insert(graph.len());
                    graph.push((t, head, label));
                }
            }
            head += 1;
        }

        verdict.states = graph.len();
        verdict
    }

    /// The singleton ample set, when one is sound: the next step of a
    /// user process that holds a CPU, provided nothing another process
    /// does first could interact with it.
    ///
    /// Non-preemptive: always sound. The mailbox LWP needs an idle
    /// CPU, a running process is never the sender of an in-flight
    /// message (a sender is blocked until its accept), its inbox and
    /// signal count are only written by same-node activity the busy
    /// CPU excludes, and remote transitions touch disjoint state — so
    /// the step commutes with every other enabled transition and
    /// postponing the others loses no reachable behaviour or visible
    /// accept context.
    ///
    /// Preemptive: the mailbox LWP may seize the CPU, which is
    /// dependent with the running process's step (both touch its
    /// status and the node's CPU). The singleton is sound only when no
    /// preemption on this node can become enabled before the process
    /// blocks: nothing pending at the node, nothing in transit to it,
    /// and no process's remaining script (static, so precomputed as
    /// suffix masks) ever sends to it.
    ///
    /// A cross-node `Signal` would break node-locality, so it is never
    /// chained (no stock script has one; the guard keeps the reduction
    /// sound for future casts).
    fn ample_successor(
        &self,
        s: &State,
        cast: &Cast,
        scripts: &[Vec<Op>],
        send_masks: &[Vec<u8>],
    ) -> Option<(State, String)> {
        for n in 0..s.cpu.len() {
            let Cpu::User(p) = s.cpu[n] else { continue };
            let p = p as usize;
            let local = match scripts[p].get(s.procs[p].pc as usize) {
                Some(Op::Signal { p: q }) => cast.node[*q as usize] as usize == n,
                _ => true,
            };
            if !local {
                continue;
            }
            let safe = !self.preemptive
                || (s.pending[n].is_empty()
                    && s.transit
                        .iter()
                        .all(|&(_, dst)| cast.node[dst as usize] as usize != n)
                    && s.procs.iter().enumerate().all(|(q, proc)| {
                        proc.status == Status::Done
                            || send_masks[q][(proc.pc as usize).min(scripts[q].len())] & (1 << n)
                                == 0
                    }));
            if safe {
                return Some(self.step(s, cast, scripts, n, p));
            }
        }
        None
    }

    /// All successor states; SYNC checks run on every accept examined.
    fn successors(
        &self,
        s: &State,
        cast: &Cast,
        scripts: &[Vec<Op>],
        here: usize,
        graph: &[(State, usize, String)],
        verdict: &mut SchedVerdict,
    ) -> Vec<(State, String)> {
        let mut next: Vec<(State, String)> = Vec::new();
        let node_of = |p: usize| cast.node[p] as usize;

        // Message arrival: any in-transit message reaches its node's
        // mailbox (transit time is nondeterministic but positive — the
        // arrival is always a separate step from the send).
        for (i, &(msg, dst)) in s.transit.iter().enumerate() {
            let mut t = s.clone();
            t.transit.remove(i);
            t.pending[node_of(dst as usize)].push((msg, dst));
            next.push((
                t,
                format!(
                    "{} arrives at node {}'s mailbox",
                    msg.describe(),
                    node_of(dst as usize)
                ),
            ));
        }

        for n in 0..s.cpu.len() {
            match s.cpu[n] {
                Cpu::Idle => {
                    for (p, proc) in s.procs.iter().enumerate() {
                        if node_of(p) == n && proc.status == Status::Ready {
                            let mut t = s.clone();
                            t.cpu[n] = Cpu::User(p as u8);
                            next.push((t, format!("node {n} dispatches {}", cast.names[p])));
                        }
                    }
                    if !s.pending[n].is_empty() {
                        let mut t = s.clone();
                        t.cpu[n] = Cpu::Mailbox;
                        next.push((t, format!("node {n} dispatches its mailbox LWP")));
                    }
                }
                Cpu::User(p) => {
                    let p = p as usize;
                    // Preemptive scheduler: the mailbox LWP may seize
                    // the CPU from the running user process.
                    if self.preemptive && !s.pending[n].is_empty() {
                        let mut t = s.clone();
                        t.cpu[n] = Cpu::Mailbox;
                        t.procs[p].status = Status::Ready;
                        next.push((
                            t,
                            format!(
                                "node {n}'s mailbox LWP preempts {}{}",
                                cast.names[p],
                                if s.procs[p].mid { " mid-compute" } else { "" }
                            ),
                        ));
                    }
                    next.push(self.step(s, cast, scripts, n, p));
                }
                Cpu::Mailbox => {
                    // Accept the oldest pending message — the step
                    // where effective synchrony is checked.
                    let (msg, dst) = s.pending[n][0];
                    verdict.accepts_checked += 1;

                    let sender = msg.from as usize;
                    if s.procs[sender].status != Status::BlockedSend(msg)
                        && verdict.sync1_violation.is_none()
                    {
                        let mut path = path_to(graph, here);
                        path.push(format!(
                            "node {n}'s mailbox accepts {} while its sender {} is NOT \
                             blocked in the send — SYNC-1 violated",
                            msg.describe(),
                            cast.names[sender]
                        ));
                        verdict.sync1_violation = Some(path);
                    }
                    let computing = s
                        .procs
                        .iter()
                        .enumerate()
                        .find(|&(q, proc)| node_of(q) == n && proc.mid);
                    if let Some((q, _)) = computing {
                        if verdict.sync2_violation.is_none() {
                            let mut path = path_to(graph, here);
                            path.push(format!(
                                "node {n}'s mailbox accepts {} while {} is still \
                                 mid-compute — SYNC-2 (effective synchrony) violated",
                                msg.describe(),
                                cast.names[q]
                            ));
                            verdict.sync2_violation = Some(path);
                        }
                    }

                    let mut t = s.clone();
                    t.pending[n].remove(0);
                    t.procs[dst as usize].inbox.push(msg);
                    if t.procs[dst as usize].status == Status::BlockedRecv {
                        t.procs[dst as usize].status = Status::Ready;
                    }
                    // The send completes: the sender unblocks.
                    if t.procs[sender].status == Status::BlockedSend(msg) {
                        t.procs[sender].status = Status::Ready;
                    }
                    t.cpu[n] = Cpu::Idle;
                    next.push((
                        t,
                        format!(
                            "node {n}'s mailbox accepts {} for {} (sender {} unblocks)",
                            msg.describe(),
                            cast.names[dst as usize],
                            cast.names[sender]
                        ),
                    ));
                }
            }
        }

        next
    }

    /// Executes one step of the user process `p` running on node `n`.
    fn step(
        &self,
        s: &State,
        cast: &Cast,
        scripts: &[Vec<Op>],
        n: usize,
        p: usize,
    ) -> (State, String) {
        let mut t = s.clone();
        let name = cast.names[p];
        let pc = t.procs[p].pc as usize;

        if pc >= scripts[p].len() {
            t.procs[p].status = Status::Done;
            t.cpu[n] = Cpu::Idle;
            return (t, format!("{name} finishes and exits"));
        }

        match scripts[p][pc] {
            Op::Send { to, msg } => {
                t.procs[p].pc += 1;
                t.procs[p].status = Status::BlockedSend(msg);
                t.transit.push((msg, to));
                t.transit.sort_unstable();
                t.cpu[n] = Cpu::Idle;
                (
                    t,
                    format!(
                        "{name} sends {} to {} and blocks until it is accepted",
                        msg.describe(),
                        cast.names[to as usize]
                    ),
                )
            }
            Op::Recv => {
                if t.procs[p].inbox.is_empty() {
                    t.procs[p].status = Status::BlockedRecv;
                    t.cpu[n] = Cpu::Idle;
                    (t, format!("{name} waits to receive (blocks)"))
                } else {
                    let msg = t.procs[p].inbox.remove(0);
                    t.procs[p].pc += 1;
                    (t, format!("{name} receives {}", msg.describe()))
                }
            }
            Op::Compute => {
                if t.procs[p].mid {
                    t.procs[p].mid = false;
                    t.procs[p].pc += 1;
                    (t, format!("{name} finishes computing"))
                } else {
                    t.procs[p].mid = true;
                    (t, format!("{name} starts computing"))
                }
            }
            Op::Signal { p: q } => {
                let q = q as usize;
                t.procs[p].pc += 1;
                // Counting semaphore: the signal is banked even when the
                // waiter is mid-wakeup, so no wakeup is ever lost — the
                // woken process retries its wait and consumes the count.
                t.procs[q].sig += 1;
                if t.procs[q].status == Status::BlockedSig {
                    t.procs[q].status = Status::Ready;
                }
                (t, format!("{name} signals {}", cast.names[q]))
            }
            Op::WaitSignal => {
                if t.procs[p].sig > 0 {
                    t.procs[p].sig -= 1;
                    t.procs[p].pc += 1;
                    (t, format!("{name} consumes a signal"))
                } else {
                    t.procs[p].status = Status::BlockedSig;
                    t.cpu[n] = Cpu::Idle;
                    (t, format!("{name} waits for a signal (blocks)"))
                }
            }
        }
    }
}

fn path_to(nodes: &[(State, usize, String)], target: usize) -> Vec<String> {
    let mut labels = Vec::new();
    let mut i = target;
    while i != 0 {
        let (_, parent, ref label) = nodes[i];
        labels.push(label.clone());
        i = parent;
    }
    labels.reverse();
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    /// V1: no agents; V2: master agent; V3/V4: both.
    fn shapes() -> [(bool, bool); 3] {
        [(false, false), (true, false), (true, true)]
    }

    #[test]
    fn non_preemptive_scheduling_is_effectively_synchronous() {
        for (ma, sa) in shapes() {
            let v = SchedModel {
                master_agents: ma,
                servant_agents: sa,
                preemptive: false,
            }
            .explore(2_000_000);
            assert!(!v.bounded, "shape ({ma},{sa}) should close");
            assert!(v.accepts_checked > 0);
            assert!(v.effectively_synchronous(), "({ma},{sa})");
            assert!(v.completion_reachable, "({ma},{sa})");
            assert!(v.no_stuck_states, "({ma},{sa})");
        }
    }

    #[test]
    fn preemptive_scheduling_breaks_sync2_with_a_counterexample() {
        for (ma, sa) in shapes() {
            let v = SchedModel {
                master_agents: ma,
                servant_agents: sa,
                preemptive: true,
            }
            .explore(4_000_000);
            assert!(!v.bounded, "shape ({ma},{sa}) should close");
            assert!(
                v.sync1_violation.is_none(),
                "sends still block: ({ma},{sa})"
            );
            let path = v
                .sync2_violation
                .unwrap_or_else(|| panic!("preemptive ({ma},{sa}) must violate SYNC-2"));
            crate::model::testutil::assert_sync2_witness(&path);
        }
    }

    #[test]
    fn state_space_stays_small_scope() {
        let v = SchedModel {
            master_agents: true,
            servant_agents: true,
            preemptive: true,
        }
        .explore(4_000_000);
        assert!(!v.bounded);
        assert!(v.states < 1_000_000, "scope crept: {} states", v.states);
    }
}
