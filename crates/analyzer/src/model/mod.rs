//! The protocol model checker: machine-checked verdicts about a
//! [`raysim`] configuration, produced without executing the simulator.
//!
//! Three bounded models, each exhaustively explored:
//!
//! * [`flow`] — the window/credit/pixel-queue protocol in bundle units
//!   at paper scale (deadlock reachability, peak concurrency / the V3
//!   window collapse, credit conservation);
//! * [`exact`] — a pixel-exact segment model for small configurations
//!   (schedule-dependent *possible* vs schedule-independent
//!   *inevitable* deadlock, differentially tested against the
//!   simulator);
//! * [`sched`] — a small-scope node-scheduler/mailbox model (the
//!   effective-synchrony theorem, with a counterexample under a
//!   preemptive toggle).
//!
//! [`check_app`] runs the layers appropriate for a configuration and
//! folds the verdicts into [`Diagnostic`]s (the `AN-MODEL-*` codes);
//! [`proven_orders`] exports the event orderings the models guarantee,
//! which the happens-before engine ([`crate::hb`]) checks against every
//! recorded trace.

pub mod exact;
pub mod flow;
pub mod sched;

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use raysim::config::AppConfig;

use crate::diag::{Diagnostic, Location, Report};
use crate::structural::DeadlockVerdict;
use exact::ExactModel;
use flow::FlowModel;
use sched::{SchedModel, SchedVerdict};

/// State budgets for the three explorations.
///
/// The pre-flight budget keeps per-run analysis cheap (a bounded
/// exploration reports `AN-MODEL-005` instead of a universal claim);
/// the full budget is what the `analyze` CLI and the CI gate use, and
/// closes every stock V1–V4 state space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelBudget {
    /// Max states for the flow model.
    pub flow_states: usize,
    /// Max states for the exact model (`0` disables it).
    pub exact_states: usize,
    /// Max states for the scheduler model.
    pub sched_states: usize,
    /// Max states for the race explorer ([`crate::race`]).
    pub race_states: usize,
}

impl ModelBudget {
    /// The cheap per-run budget used by the pre-flight hook.
    pub fn preflight() -> ModelBudget {
        ModelBudget {
            flow_states: 100_000,
            exact_states: 0,
            sched_states: 500_000,
            race_states: 200_000,
        }
    }

    /// The full budget used by the `analyze` CLI and the CI gate:
    /// closes all four stock paper configurations.
    pub fn full() -> ModelBudget {
        ModelBudget {
            flow_states: 2_000_000,
            exact_states: 1_000_000,
            sched_states: 2_000_000,
            race_states: 2_000_000,
        }
    }
}

/// Locks `m`, recovering from poisoning: a panic in one thread (say, a
/// failed assertion in a test sharing the process-wide verdict caches)
/// must not cascade `PoisonError` panics into every later analysis.
/// The cached values are read-only once inserted and each insert is a
/// single `HashMap::insert`, so a poisoned guard's data is still
/// consistent.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Largest image (pixels) the exact model is attempted on; beyond this
/// the segment state space is left to the flow abstraction.
const EXACT_MAX_PIXELS: u32 = 64;

/// An event ordering the models prove holds in every legal execution.
///
/// This is the pipeline's [`pipeline::OrderEdge`], re-exported under
/// its historical analyzer name: workloads declare the edges (see
/// [`pipeline::Workload::proven_orders`]), the models here witness the
/// ray tracer's, and the happens-before engine checks any of them.
pub use pipeline::{OrderEdge as ProvenOrder, OrderScope};

/// The orderings guaranteed by message causality and the blocking
/// mailbox protocol, as witnessed by the scheduler model: a message is
/// accepted only after its send began, so each job's instrumentation
/// points are totally ordered across nodes. Delegates to the ray-tracer
/// workload's own declaration ([`raysim::workload::proven_orders`]),
/// which this module's scheduler model is the witness for.
pub fn proven_orders(app: &AppConfig) -> Vec<ProvenOrder> {
    raysim::workload::proven_orders(app)
}

/// Explores the scheduler model, memoizing by shape — sweeps pre-flight
/// hundreds of runs that share the handful of version shapes, and the
/// verdict depends only on `(master_agents, servant_agents, preemptive,
/// budget)`.
pub fn check_sched(model: SchedModel, max_states: usize) -> SchedVerdict {
    type ShapeKey = (bool, bool, bool, usize);
    static CACHE: OnceLock<Mutex<HashMap<ShapeKey, SchedVerdict>>> = OnceLock::new();
    let key = (
        model.master_agents,
        model.servant_agents,
        model.preemptive,
        max_states,
    );
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(v) = lock_unpoisoned(cache).get(&key) {
        return v.clone();
    }
    let v = model.explore(max_states);
    lock_unpoisoned(cache).insert(key, v.clone());
    v
}

/// Wall time spent in each model-checking phase of [`check_app_timed`],
/// for the per-layer cost breakdown `analyze --json` publishes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelTimings {
    /// The structural (place/transition-net) layer.
    pub structural: Duration,
    /// The exhaustive flow/exact/sched explorations.
    pub model: Duration,
    /// The DPOR race explorer.
    pub race: Duration,
}

/// One exhaustive layer that hit its state budget: which universal
/// claims stay partial, and which the structural layer closed anyway.
struct BoundedLayer {
    summary: String,
    partial: Vec<String>,
    closed: Vec<String>,
}

/// Model-checks an application configuration and folds the verdicts
/// into diagnostics.
///
/// The **structural layer runs first** (`AN-STRUCT-*`): its
/// P-invariant and siphon proofs hold for any shape size, so when an
/// exhaustive exploration below stops at its state budget, the
/// properties the structural layer already proved are reported closed
/// instead of partial. Then emits `AN-MODEL-001` (deadlock
/// reachability), `AN-MODEL-002` (window collapse), `AN-MODEL-003`
/// (credit conservation), `AN-MODEL-004` (effective synchrony) and
/// `AN-MODEL-005` (budget-bounded exploration, naming the specific
/// properties left partial). Proven properties are reported as `info`
/// diagnostics so a report stays clean for healthy configurations;
/// violated ones are errors carrying a counterexample path.
pub fn check_app(app: &AppConfig, budget: &ModelBudget) -> Report {
    check_app_timed(app, budget).0
}

/// [`check_app`] plus the per-phase wall-time breakdown.
pub fn check_app_timed(app: &AppConfig, budget: &ModelBudget) -> (Report, ModelTimings) {
    let mut report = Report::new(format!("{} protocol model", app.version));
    let mut timings = ModelTimings::default();
    let mut bounded_layers: Vec<BoundedLayer> = Vec::new();

    // --- Structural layer: certificates that do not depend on any
    // state budget. Runs first so the bounded layers below can skip
    // (report as closed) the properties it already proved.
    let phase = Instant::now();
    let st = crate::structural::analyze_structural(app);
    report.merge(crate::structural::structural_findings(app, &st));
    timings.structural = phase.elapsed();
    let structurally_deadlock_free = st.deadlock == DeadlockVerdict::Free;
    let has_certificates = st.conservation.is_some() && st.queue_bound.is_some();

    let phase = Instant::now();
    // --- Flow model: deadlock, window collapse, credit conservation.
    let flow = FlowModel::from_protocol(
        u32::from(app.servants),
        app.window,
        app.bundle_size,
        app.pixel_queue_capacity,
        app.write_chunk,
        app.eager_writeback,
    );
    let fv = flow.explore(budget.flow_states);
    if fv.bounded {
        let mut partial = vec!["completion reachability".to_owned()];
        let mut closed = Vec::new();
        if structurally_deadlock_free {
            closed.push("deadlock freedom (AN-STRUCT-002)".to_owned());
        } else {
            partial.insert(0, "deadlock freedom".to_owned());
        }
        if has_certificates {
            closed.push("credit conservation and the queue bound (AN-STRUCT-001)".to_owned());
            closed.push("peak concurrency / window collapse (AN-STRUCT-004)".to_owned());
        } else {
            partial.push("credit conservation".to_owned());
            partial.push("peak concurrency".to_owned());
        }
        bounded_layers.push(BoundedLayer {
            summary: format!(
                "flow model stopped at {} states (budget {})",
                fv.states, budget.flow_states
            ),
            partial,
            closed,
        });
    }

    if let Some(path) = &fv.deadlock {
        report.push(
            Diagnostic::error(
                "AN-MODEL-001",
                "a reachable protocol state deadlocks: the master can neither send, \
                 receive, nor write",
            )
            .note(format!(
                "found by exhaustive exploration of {} reachable states (bundle-granular \
                 flow model)",
                fv.states
            ))
            .with_path("counterexample (one transition per line)", path.clone()),
        );
    } else if !fv.bounded {
        report.push(
            Diagnostic::info(
                "AN-MODEL-001",
                format!(
                    "deadlock-free: exhaustive exploration of {} reachable protocol states \
                     found no state where the master is stuck",
                    fv.states
                ),
            )
            .locate(Location::Model { path: Vec::new() }),
        );
    } else if structurally_deadlock_free {
        report.push(
            Diagnostic::info(
                "AN-MODEL-001",
                format!(
                    "deadlock-free: proven structurally for any shape size (siphon/trap \
                     analysis, AN-STRUCT-002); the bounded exploration of {} states found \
                     no counterexample either",
                    fv.states
                ),
            )
            .locate(Location::Model { path: Vec::new() }),
        );
    }

    // Window collapse: provable structurally (the queue bound caps
    // concurrency below the window total); the exploration supplies the
    // witness path to the observed peak.
    let intended = u64::from(app.servants) * u64::from(app.window);
    if u64::from(flow.capacity_b) < intended {
        report.push(
            Diagnostic::error(
                "AN-MODEL-002",
                format!(
                    "window collapse: flow control intends {intended} concurrent jobs but \
                     no reachable state holds more than {} — the pixel queue bound caps \
                     concurrency",
                    fv.max_outstanding
                ),
            )
            .at_config("app.pixel_queue_capacity", app.pixel_queue_capacity)
            .note(format!(
                "peak of {} outstanding jobs over {} explored states{}",
                fv.max_outstanding,
                fv.states,
                if fv.bounded { " (bounded)" } else { "" }
            ))
            .with_path(
                "witness path to the concurrency ceiling",
                fv.peak_witness.clone(),
            ),
        );
    } else if !fv.bounded {
        report.push(Diagnostic::info(
            "AN-MODEL-002",
            format!(
                "full window concurrency is reachable: {} of {intended} intended jobs \
                 outstanding in some state, over {} explored states",
                fv.max_outstanding, fv.states
            ),
        ));
    } else if has_certificates {
        report.push(Diagnostic::info(
            "AN-MODEL-002",
            format!(
                "full window concurrency is reachable: proven structurally — the queue \
                 invariant bounds concurrency at min(credits, capacity) = {intended} and \
                 the monotone send sequence attains it (AN-STRUCT-004); the bounded \
                 exploration reached {} of {intended}",
                fv.max_outstanding
            ),
        ));
    }

    // Credit conservation, checked mechanically in every state.
    if !fv.credits_conserved || !fv.capacity_respected {
        report.push(
            Diagnostic::error(
                "AN-MODEL-003",
                if fv.credits_conserved {
                    "the pixel-queue bound is overrun in a reachable state"
                } else {
                    "credit conservation violated: a reachable state holds more \
                     outstanding jobs than window credits"
                },
            )
            .note(format!("over {} explored states", fv.states)),
        );
    } else if !fv.bounded {
        report.push(Diagnostic::info(
            "AN-MODEL-003",
            format!(
                "credit conservation proven: outstanding jobs never exceed {} credits and \
                 in-flight pixels never exceed the queue bound, in all {} reachable states",
                flow.credits, fv.states
            ),
        ));
    } else if has_certificates {
        report.push(Diagnostic::info(
            "AN-MODEL-003",
            format!(
                "credit conservation proven: the P-invariant certificate (AN-STRUCT-001) \
                 bounds outstanding jobs at {} credits in every reachable state, for any \
                 budget; the bounded exploration of {} states agreed",
                flow.credits, fv.states
            ),
        ));
    }

    // --- Exact model, for configurations small enough to close.
    if budget.exact_states > 0 && app.total_pixels() <= EXACT_MAX_PIXELS {
        let exact = ExactModel {
            total: app.total_pixels(),
            capacity: app.pixel_queue_capacity,
            bundle: app.bundle_size,
            chunk: app.write_chunk,
            credits: u32::from(app.servants) * app.window,
            eager: app.eager_writeback,
        };
        let ev = exact.explore(budget.exact_states);
        if ev.bounded {
            let mut partial = vec!["the possible-vs-inevitable deadlock classification".to_owned()];
            let mut closed = Vec::new();
            if structurally_deadlock_free {
                closed.push("deadlock freedom (AN-STRUCT-002)".to_owned());
            } else {
                partial.insert(0, "deadlock freedom".to_owned());
            }
            bounded_layers.push(BoundedLayer {
                summary: format!(
                    "exact model stopped at {} states (budget {})",
                    ev.states, budget.exact_states
                ),
                partial,
                closed,
            });
        } else if ev.deadlock_inevitable {
            let path = ev.deadlock_possible.clone().unwrap_or_default();
            report.push(
                Diagnostic::error(
                    "AN-MODEL-001",
                    "every scheduling deadlocks: no completion order of the outstanding \
                     jobs lets the master finish writing the image",
                )
                .note(format!(
                    "pixel-exact exploration of {} states found no completed terminal",
                    ev.states
                ))
                .with_path("one deadlocking schedule", path),
            );
        } else if let Some(path) = &ev.deadlock_possible {
            report.push(
                Diagnostic::warning(
                    "AN-MODEL-001",
                    "some schedulings deadlock: an unlucky completion order leaves a \
                     contiguous tail shorter than the write chunk",
                )
                .note(format!(
                    "pixel-exact exploration of {} states; completion is also reachable, \
                     so the outcome depends on the schedule",
                    ev.states
                ))
                .with_path("one deadlocking schedule", path.clone()),
            );
        } else {
            report.push(Diagnostic::info(
                "AN-MODEL-001",
                format!(
                    "pixel-exact check: no scheduling deadlocks ({} reachable states)",
                    ev.states
                ),
            ));
        }
    }

    // --- Scheduler model: the effective-synchrony theorem.
    let sv = check_sched(
        SchedModel {
            master_agents: app.version.master_agents(),
            servant_agents: app.version.servant_agents(),
            preemptive: false,
        },
        budget.sched_states,
    );
    if sv.bounded {
        bounded_layers.push(BoundedLayer {
            summary: format!(
                "scheduler model stopped at {} states (budget {})",
                sv.states, budget.sched_states
            ),
            partial: vec!["effective synchrony (SYNC-1/SYNC-2)".to_owned()],
            closed: Vec::new(),
        });
    }
    if let Some(path) = sv.sync1_violation.clone().or(sv.sync2_violation.clone()) {
        report.push(
            Diagnostic::error(
                "AN-MODEL-004",
                "effective synchrony violated: a mailbox send can complete while a user \
                 process still holds its CPU",
            )
            .with_path("counterexample interleaving", path),
        );
    } else if !sv.bounded {
        report.push(Diagnostic::info(
            "AN-MODEL-004",
            format!(
                "effective synchrony proven for this version's communication shape: in \
                 all {} reachable interleavings ({} mailbox accepts checked), the sender \
                 is blocked at accept time and no user process on the accepting node is \
                 mid-compute",
                sv.states, sv.accepts_checked
            ),
        ));
    }

    timings.model = phase.elapsed();

    // --- Race explorer: schedule-dependent message orderings. Under
    // the machine's non-preemptive round-robin the stock shapes are
    // proven race-free (info findings); the preemptive variant is the
    // `analyze --races --preemptive` section and stays out of the
    // default report.
    let phase = Instant::now();
    report.merge(crate::race::check_races(app, budget, false));
    timings.race = phase.elapsed();

    if !bounded_layers.is_empty() {
        let mut d = Diagnostic::info(
            "AN-MODEL-005",
            "exploration bounded by the state budget; universal claims that no other \
             layer closes are partial",
        );
        for l in bounded_layers {
            d = d.note(format!(
                "{} — still partial: {}",
                l.summary,
                l.partial.join(", ")
            ));
            if !l.closed.is_empty() {
                d = d.note(format!("  closed structurally: {}", l.closed.join("; ")));
            }
        }
        report.push(d);
    }

    (report, timings)
}

/// Model-checks the preemptive-scheduler variant of a configuration,
/// returning the effective-synchrony verdict (with its counterexample
/// path) directly.
pub fn check_preemptive_variant(app: &AppConfig, budget: &ModelBudget) -> SchedVerdict {
    check_sched(
        SchedModel {
            master_agents: app.version.master_agents(),
            servant_agents: app.version.servant_agents(),
            preemptive: true,
        },
        budget.sched_states,
    )
}

/// Shared assertions over model-checker witness paths, used by the
/// scheduler-model and module-level tests alike.
#[cfg(test)]
pub(crate) mod testutil {
    /// Asserts a witness/counterexample path is well-formed: non-empty,
    /// no blank steps, and every step readable on one line.
    pub(crate) fn assert_witness_well_formed(path: &[String]) {
        assert!(!path.is_empty(), "witness path must not be empty");
        for (i, step) in path.iter().enumerate() {
            assert!(!step.trim().is_empty(), "blank witness step at index {i}");
            assert!(
                !step.contains('\n'),
                "multi-line witness step at index {i}: {step:?}"
            );
        }
    }

    /// Asserts a SYNC-2 counterexample is well-formed *and* tells the
    /// SYNC-2 story: a preemption occurs along the way and the final
    /// transition names the violated property.
    pub(crate) fn assert_sync2_witness(path: &[String]) {
        assert_witness_well_formed(path);
        assert!(
            path.iter().any(|l| l.contains("preempts")),
            "a SYNC-2 witness must contain a preemption: {path:?}"
        );
        assert!(
            path.last().unwrap().contains("SYNC-2"),
            "the final step must name the violation: {path:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raysim::config::Version;

    #[test]
    fn v3_is_flagged_statically_with_a_counterexample() {
        let report = check_app(&AppConfig::version(Version::V3), &ModelBudget::full());
        assert!(report.has_errors());
        let collapse = report
            .findings
            .iter()
            .find(|f| f.code == "AN-MODEL-002")
            .expect("V3 must collapse");
        assert!(collapse.notes.iter().any(|n| n.contains("15 outstanding")));
        assert!(matches!(collapse.location, Location::Model { .. }));
        // The witness path is a reproducible counterexample.
        assert!(collapse
            .notes
            .iter()
            .any(|n| n.contains("witness path to the concurrency ceiling:")));
    }

    #[test]
    fn v4_is_proven_deadlock_free_and_credit_conserving() {
        let report = check_app(&AppConfig::version(Version::V4), &ModelBudget::full());
        assert!(!report.has_errors(), "{}", report.render());
        assert_eq!(report.warnings(), 0);
        let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.starts_with("deadlock-free")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("credit conservation proven")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("effective synchrony proven")));
    }

    #[test]
    fn all_stock_versions_prove_effective_synchrony() {
        for v in Version::ALL {
            let report = check_app(&AppConfig::version(v), &ModelBudget::full());
            assert!(
                report.findings.iter().any(|f| f.code == "AN-MODEL-004"
                    && f.message.contains("effective synchrony proven")),
                "{v}: {}",
                report.render()
            );
        }
    }

    #[test]
    fn preemptive_variant_yields_a_counterexample() {
        let verdict =
            check_preemptive_variant(&AppConfig::version(Version::V4), &ModelBudget::full());
        let path = verdict.sync2_violation.expect("preemption breaks SYNC-2");
        testutil::assert_sync2_witness(&path);
    }

    #[test]
    fn verdict_cache_survives_mutex_poisoning() {
        // A panic while holding the lock must not cascade into every
        // later analysis sharing the process-wide cache.
        let m = std::sync::Mutex::new(vec![1, 2, 3]);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison the lock");
        }));
        assert!(caught.is_err());
        assert!(m.is_poisoned());
        assert_eq!(*lock_unpoisoned(&m), vec![1, 2, 3]);
        lock_unpoisoned(&m).push(4);
        assert_eq!(lock_unpoisoned(&m).len(), 4);
    }

    #[test]
    fn stock_versions_add_no_warnings_under_the_preflight_budget() {
        // The pre-flight hook folds these findings into existing
        // warn/deny policies: they must stay info-only for V1/V2/V4 and
        // error-only for V3.
        for v in Version::ALL {
            let report = check_app(&AppConfig::version(v), &ModelBudget::preflight());
            assert_eq!(report.warnings(), 0, "{v}: {}", report.render());
            assert_eq!(report.has_errors(), v == Version::V3, "{v}");
        }
    }

    #[test]
    fn proven_orders_follow_instrumentation() {
        let v1 = proven_orders(&AppConfig::version(Version::V1));
        assert_eq!(v1.len(), 2);
        let v4 = proven_orders(&AppConfig::version(Version::V4));
        assert_eq!(v4.len(), 4);
        assert!(v4.iter().any(|o| o.name == "result-sent-before-received"));
    }
}
