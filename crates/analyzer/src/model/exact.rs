//! The pixel-exact protocol model for small configurations.
//!
//! Where [`super::flow`] abstracts the pixel queue into bundle
//! counters, this model tracks it exactly: the in-flight region is a
//! sequence of segments (one per assigned job, in assignment order from
//! the write head) with per-segment completion flags, plus the global
//! credit count and the unassigned remainder. That is precisely the
//! state [`raysim::pixels::PixelLedger`] projects onto once symmetric
//! servant identities are folded into one credit counter, so for small
//! images the exploration is *exact*: a state is reachable in the model
//! iff some scheduling of the simulator reaches it.
//!
//! Exactness buys two verdicts the abstraction cannot give:
//!
//! * **deadlock possible** — some completion order wedges the run
//!   (strict write-back can leave a short tail after an overshooting
//!   write, because the master writes *all* contiguous pixels, not
//!   chunk multiples);
//! * **deadlock inevitable** — no completion order finishes. Every
//!   transition strictly increases assigned + completed + written
//!   pixels, so the state graph is a finite DAG and every maximal path
//!   ends in a terminal; if no completed terminal is reachable, every
//!   schedule deadlocks — in particular the simulator's.
//!
//! The two are genuinely different: with `total = 8`, `chunk = 4`,
//! completion order 4,0,1,2,3 writes 5 pixels leaving a 3-pixel tail
//! (< chunk → wedged), while order 0,1,2,3,… writes 4+4 and completes.
//! The differential test against the simulator
//! (`tests/model_vs_sim.rs`) checks exactly the three sound
//! implications this split supports.

use std::collections::HashMap;

/// Exact model parameters, in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactModel {
    /// Total pixels in the image.
    pub total: u32,
    /// Pixel-queue capacity (max in-flight pixels).
    pub capacity: u32,
    /// Pixels per job bundle (a trailing bundle may be shorter).
    pub bundle: u32,
    /// Write-back chunk in pixels.
    pub chunk: u32,
    /// Total window credits (servants × window).
    pub credits: u32,
    /// Eager write-back (the implemented master's fallback flush).
    pub eager: bool,
}

/// One in-flight segment: `len` pixels, completed or not. Segments are
/// ordered from the write head.
type Seg = (u32, bool);

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    segs: Vec<Seg>,
    /// Pixels assigned so far (monotone; `remaining = total - assigned`).
    assigned: u32,
}

/// What exploring the exact model concluded.
#[derive(Debug, Clone)]
pub struct ExactVerdict {
    /// Reachable states explored.
    pub states: usize,
    /// `true` when the state budget cut the exploration short; all
    /// universal claims are then partial and `deadlock_inevitable` is
    /// forced to `false`.
    pub bounded: bool,
    /// A counterexample path to a deadlocked terminal, if one is
    /// reachable under *some* scheduling.
    pub deadlock_possible: Option<Vec<String>>,
    /// `true` when *no* completed terminal is reachable: every
    /// scheduling — including the simulator's — wedges.
    pub deadlock_inevitable: bool,
    /// `true` when some scheduling completes the run.
    pub completion_reachable: bool,
    /// Most jobs concurrently outstanding over all explored states.
    pub max_outstanding: u32,
    /// `true` when outstanding jobs never exceeded the credit total and
    /// in-flight pixels never exceeded the queue capacity.
    pub invariants_ok: bool,
}

impl ExactModel {
    fn in_flight(s: &State) -> u32 {
        s.segs.iter().map(|&(len, _)| len).sum()
    }

    fn outstanding(s: &State) -> u32 {
        s.segs.iter().filter(|&&(_, done)| !done).count() as u32
    }

    fn assignable(&self, s: &State) -> u32 {
        (self.capacity.saturating_sub(Self::in_flight(s))).min(self.total - s.assigned)
    }

    fn contiguous(s: &State) -> u32 {
        s.segs
            .iter()
            .take_while(|&&(_, done)| done)
            .map(|&(len, _)| len)
            .sum()
    }

    /// Mirrors `Master::write_ready` + `PixelLedger::take_writable`:
    /// writes drain the *entire* contiguous prefix whenever the chunk
    /// threshold (or the eager fallback condition) is met.
    fn normalize(&self, s: &mut State) {
        loop {
            let contig = Self::contiguous(s);
            let ready = contig >= self.chunk
                || (self.eager
                    && contig > 0
                    && Self::outstanding(s) == 0
                    && self.assignable(s) == 0);
            if !ready {
                return;
            }
            while s.segs.first().is_some_and(|&(_, done)| done) {
                s.segs.remove(0);
            }
        }
    }

    fn is_complete(&self, s: &State) -> bool {
        s.assigned == self.total && s.segs.is_empty()
    }

    /// All successors: one send (the master is deterministic about
    /// sizes) and one completion per outstanding segment.
    fn successors(&self, s: &State) -> Vec<(State, String)> {
        let mut next = Vec::new();

        let assignable = self.assignable(s);
        if Self::outstanding(s) < self.credits && assignable > 0 {
            let n = self.bundle.min(assignable);
            let mut t = s.clone();
            t.segs.push((n, false));
            t.assigned += n;
            self.normalize(&mut t);
            next.push((t, format!("master sends a {n}-pixel job")));
        }

        for (i, &(len, done)) in s.segs.iter().enumerate() {
            if done {
                continue;
            }
            let mut t = s.clone();
            t.segs[i].1 = true;
            self.normalize(&mut t);
            next.push((
                t,
                format!("servant completes the {len}-pixel job at queue position {i}"),
            ));
        }

        next
    }

    /// Explores the reachable state space exhaustively (BFS), up to
    /// `max_states` states.
    pub fn explore(&self, max_states: usize) -> ExactVerdict {
        let mut initial = State {
            segs: Vec::new(),
            assigned: 0,
        };
        self.normalize(&mut initial);

        let mut seen: HashMap<State, usize> = HashMap::new();
        seen.insert(initial.clone(), 0);
        let mut nodes: Vec<(State, usize, String)> = vec![(initial, usize::MAX, String::new())];

        let mut verdict = ExactVerdict {
            states: 0,
            bounded: false,
            deadlock_possible: None,
            deadlock_inevitable: false,
            completion_reachable: false,
            max_outstanding: 0,
            invariants_ok: true,
        };

        let mut head = 0usize;
        while head < nodes.len() {
            let s = nodes[head].0.clone();

            let out = Self::outstanding(&s);
            if out > self.credits || Self::in_flight(&s) > self.capacity {
                verdict.invariants_ok = false;
            }
            verdict.max_outstanding = verdict.max_outstanding.max(out);

            if self.is_complete(&s) {
                verdict.completion_reachable = true;
                head += 1;
                continue;
            }

            let succs = self.successors(&s);
            if succs.is_empty() {
                if verdict.deadlock_possible.is_none() {
                    verdict.deadlock_possible = Some(path_to(&nodes, head));
                }
                head += 1;
                continue;
            }
            for (t, label) in succs {
                if seen.len() >= max_states {
                    verdict.bounded = true;
                    break;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(t.clone()) {
                    e.insert(nodes.len());
                    nodes.push((t, head, label));
                }
            }
            head += 1;
        }

        verdict.states = nodes.len();
        // Sound only on full closure: the transition relation
        // over-approximates the simulator's schedules and the graph is
        // a DAG, so "no completed terminal anywhere" means every
        // schedule wedges.
        verdict.deadlock_inevitable = !verdict.bounded && !verdict.completion_reachable;
        verdict
    }
}

fn path_to(nodes: &[(State, usize, String)], target: usize) -> Vec<String> {
    let mut labels = Vec::new();
    let mut i = target;
    while i != 0 {
        let (_, parent, ref label) = nodes[i];
        labels.push(label.clone());
        i = parent;
    }
    labels.reverse();
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(total: u32, capacity: u32, bundle: u32, chunk: u32, credits: u32) -> ExactModel {
        ExactModel {
            total,
            capacity,
            bundle,
            chunk,
            credits,
            eager: true,
        }
    }

    #[test]
    fn eager_small_configs_complete_without_deadlock() {
        for m in [
            model(16, 8, 2, 4, 3),
            model(9, 4, 3, 2, 2),
            model(25, 25, 5, 7, 4),
        ] {
            let v = m.explore(500_000);
            assert!(!v.bounded);
            assert!(
                v.deadlock_possible.is_none(),
                "{m:?}: {:?}",
                v.deadlock_possible
            );
            assert!(v.completion_reachable);
            assert!(!v.deadlock_inevitable);
            assert!(v.invariants_ok);
        }
    }

    #[test]
    fn strict_tail_deadlock_is_possible_but_not_inevitable() {
        // total 8, chunk 4, bundle 1: completing jobs 1..4 before job 0
        // makes the first write drain 5 pixels, leaving a 3-pixel tail
        // that can never reach the 4-pixel chunk. Completing in order
        // writes 4 + 4 and finishes.
        let m = ExactModel {
            total: 8,
            capacity: 8,
            bundle: 1,
            chunk: 4,
            credits: 5,
            eager: false,
        };
        let v = m.explore(500_000);
        assert!(!v.bounded);
        let path = v.deadlock_possible.expect("tail deadlock reachable");
        assert!(!path.is_empty());
        assert!(v.completion_reachable, "in-order completion finishes");
        assert!(!v.deadlock_inevitable);
    }

    #[test]
    fn strict_misaligned_tail_is_inevitable() {
        // total 6, chunk 4, window 1: completion is forced in-order, so
        // every schedule writes 4 pixels the moment they are contiguous
        // and strands the 2-pixel tail below the chunk. (A wider window
        // could rescue the run by holding back the prefix until all 6
        // pixels are contiguous.)
        let m = ExactModel {
            total: 6,
            capacity: 6,
            bundle: 2,
            chunk: 4,
            credits: 1,
            eager: false,
        };
        let v = m.explore(500_000);
        assert!(!v.bounded);
        assert!(v.deadlock_possible.is_some());
        assert!(!v.completion_reachable);
        assert!(v.deadlock_inevitable);
    }

    #[test]
    fn eager_fallback_rescues_the_tail() {
        // Same shape as the inevitable case but with the implemented
        // master's eager flush: always completes.
        let m = ExactModel {
            total: 6,
            capacity: 6,
            bundle: 2,
            chunk: 4,
            credits: 3,
            eager: true,
        };
        let v = m.explore(500_000);
        assert!(!v.bounded);
        assert!(v.deadlock_possible.is_none());
        assert!(v.completion_reachable);
    }

    #[test]
    fn window_collapse_shows_in_max_outstanding() {
        // 6 credits but only room for 2 concurrent 2-pixel jobs.
        let m = model(20, 4, 2, 2, 6);
        let v = m.explore(500_000);
        assert!(!v.bounded);
        assert_eq!(v.max_outstanding, 2);
    }
}
