//! Pre-flight static analysis of the paper's measurement setups.
//!
//! ```text
//! analyze [v1|v2|v3|v4 ...] [--strict]
//! ```
//!
//! With no version arguments, analyzes all four. `--strict` exits
//! nonzero when any analyzed configuration has errors (for CI gates).

use std::process::ExitCode;

use analyzer::analyze_version;
use raysim::config::Version;

fn parse_version(arg: &str) -> Option<Version> {
    match arg.to_ascii_lowercase().as_str() {
        "v1" | "1" => Some(Version::V1),
        "v2" | "2" => Some(Version::V2),
        "v3" | "3" => Some(Version::V3),
        "v4" | "4" => Some(Version::V4),
        _ => None,
    }
}

fn main() -> ExitCode {
    let mut versions: Vec<Version> = Vec::new();
    let mut strict = false;
    for arg in std::env::args().skip(1) {
        if arg == "--strict" {
            strict = true;
        } else if let Some(v) = parse_version(&arg) {
            versions.push(v);
        } else {
            eprintln!("unknown argument `{arg}`; expected v1..v4 or --strict");
            return ExitCode::from(2);
        }
    }
    if versions.is_empty() {
        versions = Version::ALL.to_vec();
    }

    let mut errors = 0usize;
    for version in versions {
        let report = analyze_version(version);
        println!("== {version} ==");
        print!("{}", report.render());
        println!();
        errors += report.errors();
    }
    if strict && errors > 0 {
        eprintln!("analysis failed: {errors} error(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
