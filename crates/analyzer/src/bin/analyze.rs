//! Pre-flight static analysis of the paper's measurement setups.
//!
//! ```text
//! analyze [v1|v2|v3|v4 ...] [options]
//!
//! options:
//!   --deep             close the model state spaces (full budget)
//!                      instead of the cheap pre-flight bound
//!   --fail-on LEVEL    exit nonzero when any diagnostic is at or
//!                      above LEVEL (info|warning|error)
//!   --strict           shorthand for --fail-on error
//!   --json PATH        write all reports as JSON ("-" for stdout)
//!   --sarif PATH       write all reports as SARIF 2.1.0 ("-" for
//!                      stdout)
//!   --preemptive       also model-check the preemptive-scheduler
//!                      variant and print its counterexample
//!   --races            run the DPOR message-race explorer and append
//!                      a race report per version (uses the scheduler
//!                      selected by --preemptive; round-robin by
//!                      default). Race warnings stay warnings unless
//!                      --strict, which denies them (escalates
//!                      AN-RACE-* warnings to errors)
//!   --structural       run the place/transition-net layer on its own
//!                      and append a structural report per version:
//!                      P-invariant certificates, siphon/trap deadlock
//!                      analysis, and the synthesized minimal safe
//!                      pixel-queue capacity (AN-STRUCT-*). These
//!                      proofs are polynomial-time and hold for any
//!                      shape size — no state budget involved
//! ```
//!
//! `--json` reports also carry a `timings` array with per-layer wall
//! time (token/protocol/rate/structural/model/race, milliseconds) for
//! each analyzed version, so regressions in analysis cost are visible
//! in CI artifacts.
//!
//! With no version arguments, analyzes all four.

use std::process::ExitCode;

use analyzer::{
    check_preemptive_variant, reports_json_with_timings, sarif, ModelBudget, Report, Severity,
    SubjectTimings,
};
use raysim::config::{AppConfig, Version};

fn parse_version(arg: &str) -> Option<Version> {
    match arg.to_ascii_lowercase().as_str() {
        "v1" | "1" => Some(Version::V1),
        "v2" | "2" => Some(Version::V2),
        "v3" | "3" => Some(Version::V3),
        "v4" | "4" => Some(Version::V4),
        _ => None,
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("{problem}");
    eprintln!(
        "usage: analyze [v1|v2|v3|v4 ...] [--deep] [--fail-on info|warning|error] \
         [--strict] [--json PATH] [--sarif PATH] [--preemptive] [--races] [--structural]"
    );
    ExitCode::from(2)
}

fn write_out(path: &str, contents: &str) -> std::io::Result<()> {
    if path == "-" {
        print!("{contents}");
        Ok(())
    } else {
        std::fs::write(path, contents)
    }
}

fn main() -> ExitCode {
    let mut versions: Vec<Version> = Vec::new();
    let mut fail_on: Option<Severity> = None;
    let mut deep = false;
    let mut strict = false;
    let mut preemptive = false;
    let mut races = false;
    let mut structural = false;
    let mut json_path: Option<String> = None;
    let mut sarif_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--strict" => {
                strict = true;
                fail_on = Some(Severity::Error);
            }
            "--deep" => deep = true,
            "--preemptive" => preemptive = true,
            "--races" => races = true,
            "--structural" => structural = true,
            "--fail-on" => match args.next().as_deref().map(Severity::parse) {
                Some(Some(level)) => fail_on = Some(level),
                _ => return usage("--fail-on needs a level: info|warning|error"),
            },
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => return usage("--json needs a path (or `-`)"),
            },
            "--sarif" => match args.next() {
                Some(path) => sarif_path = Some(path),
                None => return usage("--sarif needs a path (or `-`)"),
            },
            other => match parse_version(other) {
                Some(v) => versions.push(v),
                None => return usage(&format!("unknown argument `{other}`")),
            },
        }
    }
    if versions.is_empty() {
        versions = Version::ALL.to_vec();
    }

    let budget = if deep {
        ModelBudget::full()
    } else {
        ModelBudget::preflight()
    };

    let mut reports: Vec<Report> = Vec::new();
    let mut timings: Vec<SubjectTimings> = Vec::new();
    let mut worst: Option<Severity> = None;
    for &version in &versions {
        let (report, layers) = analyzer::analyze_version_timed(version, &budget);
        println!("== {version} ==");
        print!("{}", report.render());
        println!();
        worst = worst.max(report.max_severity());
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        timings.push((
            report.subject.clone(),
            vec![
                ("token_ms", ms(layers.token)),
                ("protocol_ms", ms(layers.protocol)),
                ("rate_ms", ms(layers.rate)),
                ("structural_ms", ms(layers.structural)),
                ("model_ms", ms(layers.model)),
                ("race_ms", ms(layers.race)),
            ],
        ));
        reports.push(report);
    }

    if preemptive {
        for &version in &versions {
            let app = AppConfig::version(version);
            let verdict = check_preemptive_variant(&app, &budget);
            println!("== {version}, preemptive scheduler variant ==");
            match verdict.sync2_violation.or(verdict.sync1_violation) {
                Some(path) => {
                    println!(
                        "effective synchrony BREAKS under preemption; counterexample \
                         interleaving:"
                    );
                    for (i, step) in path.iter().enumerate() {
                        println!("  {:>3}. {step}", i + 1);
                    }
                }
                None => println!(
                    "no violation found ({} states explored{})",
                    verdict.states,
                    if verdict.bounded { ", bounded" } else { "" }
                ),
            }
            println!();
        }
    }

    if races {
        for &version in &versions {
            let app = AppConfig::version(version);
            let mut report = analyzer::check_races(&app, &budget, preemptive);
            if strict {
                let raised = report.escalate_warnings("AN-RACE-");
                if raised > 0 {
                    eprintln!("strict mode: {raised} race warning(s) denied for {version}");
                }
            }
            println!("== {} ==", report.subject);
            print!("{}", report.render());
            println!();
            worst = worst.max(report.max_severity());
            reports.push(report);
        }
    }

    if structural {
        for &version in &versions {
            let report = analyzer::check_structural(&AppConfig::version(version));
            println!("== {} ==", report.subject);
            print!("{}", report.render());
            println!();
            worst = worst.max(report.max_severity());
            reports.push(report);
        }
    }

    if let Some(path) = &json_path {
        if let Err(e) = write_out(path, &reports_json_with_timings(&reports, &timings)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(3);
        }
    }
    if let Some(path) = &sarif_path {
        if let Err(e) = write_out(path, &sarif(&reports)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(3);
        }
    }

    if let (Some(threshold), Some(worst)) = (fail_on, worst) {
        if worst >= threshold {
            let total: usize = reports.iter().map(|r| r.count_at_least(threshold)).sum();
            eprintln!("analysis failed: {total} diagnostic(s) at or above {threshold}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
