//! Protocol analysis: wait-for graphs and credit conservation.
//!
//! From an [`AppConfig`] alone — without running the simulation — this
//! module builds the version's wait-for/message-flow graph between the
//! master, the servants and their communication agents, enumerates its
//! cycles, and checks that the window-flow-control credits are conserved
//! by the pixel-queue bookkeeping:
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | `AN-PROTO-001` | error | all-blocking wait-for cycle: deadlock |
//! | `AN-PROTO-002` | error | pixel-queue capacity below peak window demand (the V3 bug) |
//! | `AN-PROTO-003` | warning/info | cycle through a pseudo-synchronous mailbox send / buffered cycle |
//! | `AN-PROTO-004` | error | window credits are not conserved (never returned) |

use raysim::config::AppConfig;

use crate::diag::{Finding, Report};

/// What kind of dependency a wait-for edge expresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Unbounded wait for the target's application-level progress.
    Blocking,
    /// Wait for the target node's kernel to schedule its mailbox LWP —
    /// the paper's pseudo-synchrony: a mailbox send does not return
    /// until the receiver's kernel has accepted the message.
    Scheduling,
    /// Wait bounded by buffer space or window credits; cannot stall
    /// indefinitely while credits are conserved.
    Bounded,
}

impl std::fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeKind::Blocking => f.write_str("blocking"),
            EdgeKind::Scheduling => f.write_str("scheduling"),
            EdgeKind::Bounded => f.write_str("bounded"),
        }
    }
}

/// One wait-for edge: `from` can wait on `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Index of the waiting role in [`ProtocolGraph::roles`].
    pub from: usize,
    /// Index of the role being waited on.
    pub to: usize,
    /// The dependency kind.
    pub kind: EdgeKind,
    /// What the wait is, e.g. `mailbox job send`.
    pub label: String,
}

/// The wait-for/message-flow graph of one program version.
#[derive(Debug, Clone, Default)]
pub struct ProtocolGraph {
    /// Role names (Master, Servant, Master Agent, Servant Agent).
    pub roles: Vec<String>,
    /// The wait-for edges.
    pub edges: Vec<Edge>,
}

impl ProtocolGraph {
    /// An empty graph.
    pub fn new() -> Self {
        ProtocolGraph::default()
    }

    /// Adds a role, returning its index.
    pub fn add_role(&mut self, name: impl Into<String>) -> usize {
        self.roles.push(name.into());
        self.roles.len() - 1
    }

    /// Adds a wait-for edge.
    pub fn add_edge(&mut self, from: usize, to: usize, kind: EdgeKind, label: impl Into<String>) {
        self.edges.push(Edge {
            from,
            to,
            kind,
            label: label.into(),
        });
    }

    /// Builds the wait-for graph the paper's §4.3 version ladder implies.
    ///
    /// Servant roles are collapsed to one node: all servants have
    /// identical wait-for structure, so any cycle through one servant
    /// exists through every servant.
    pub fn from_app(app: &AppConfig) -> Self {
        let mut g = ProtocolGraph::new();
        let master = g.add_role("Master");
        let servant = g.add_role("Servant");

        // Job path, master -> servant.
        if app.version.master_agents() {
            let agent = g.add_role("Master Agent");
            g.add_edge(
                master,
                agent,
                EdgeKind::Bounded,
                "job handoff to communication agent (bounded by window credits)",
            );
            g.add_edge(
                agent,
                servant,
                EdgeKind::Scheduling,
                "agent's mailbox job send",
            );
        } else {
            g.add_edge(master, servant, EdgeKind::Scheduling, "mailbox job send");
        }

        // Result path, servant -> master.
        if app.version.servant_agents() {
            let agent = g.add_role("Servant Agent");
            g.add_edge(
                servant,
                agent,
                EdgeKind::Bounded,
                "result handoff to communication agent (bounded buffer)",
            );
            g.add_edge(
                agent,
                master,
                EdgeKind::Scheduling,
                "agent's mailbox result send",
            );
        } else {
            g.add_edge(servant, master, EdgeKind::Scheduling, "mailbox result send");
        }

        // Receive waits. The master's wait for results is unbounded: no
        // credit guarantees a servant finishes a bundle. The servant's
        // wait for jobs is bounded by the window — the master pushes up
        // to `window` jobs per servant without being asked — unless the
        // window is zero, in which case nothing is ever in flight.
        g.add_edge(master, servant, EdgeKind::Blocking, "Wait for Results");
        let wait_job_kind = if app.window == 0 {
            EdgeKind::Blocking
        } else {
            EdgeKind::Bounded
        };
        g.add_edge(
            servant,
            master,
            wait_job_kind,
            if app.window == 0 {
                "Wait for Job (zero window credits: nothing is ever in flight)"
            } else {
                "Wait for Job (window keeps jobs in flight)"
            },
        );
        g
    }

    /// Enumerates the simple cycles of the multigraph as edge sequences.
    ///
    /// Each cycle is reported once, starting from its smallest role
    /// index. The role count is tiny (≤ 4), so a plain DFS suffices.
    pub fn cycles(&self) -> Vec<Vec<&Edge>> {
        let mut found: Vec<Vec<&Edge>> = Vec::new();
        for start in 0..self.roles.len() {
            let mut path: Vec<&Edge> = Vec::new();
            let mut on_path = vec![false; self.roles.len()];
            self.dfs(start, start, &mut path, &mut on_path, &mut found);
        }
        found
    }

    fn dfs<'a>(
        &'a self,
        start: usize,
        here: usize,
        path: &mut Vec<&'a Edge>,
        on_path: &mut Vec<bool>,
        found: &mut Vec<Vec<&'a Edge>>,
    ) {
        on_path[here] = true;
        for edge in self.edges.iter().filter(|e| e.from == here) {
            if edge.to == start {
                let mut cycle = path.clone();
                cycle.push(edge);
                found.push(cycle);
            } else if edge.to > start && !on_path[edge.to] {
                path.push(edge);
                self.dfs(start, edge.to, path, on_path, found);
                path.pop();
            }
        }
        on_path[here] = false;
    }

    /// Classifies every cycle (`AN-PROTO-001` / `AN-PROTO-003`).
    pub fn lint(&self) -> Report {
        let mut report = Report::new("wait-for graph");
        let mut bounded_cycles = 0usize;
        for cycle in self.cycles() {
            let all_blocking = cycle.iter().all(|e| e.kind == EdgeKind::Blocking);
            let has_bounded = cycle.iter().any(|e| e.kind == EdgeKind::Bounded);
            let has_scheduling = cycle.iter().any(|e| e.kind == EdgeKind::Scheduling);
            let describe = |cycle: &[&Edge]| {
                cycle
                    .iter()
                    .map(|e| {
                        format!(
                            "{} -[{}: {}]-> {}",
                            self.roles[e.from], e.kind, e.label, self.roles[e.to]
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("; ")
            };
            if all_blocking {
                report.push(
                    Finding::error(
                        "AN-PROTO-001",
                        "wait-for cycle with only unbounded blocking edges: deadlock",
                    )
                    .at(describe(&cycle))
                    .note(
                        "every role in the cycle waits for another's progress with no \
                         bound; once all enter their waits, none can leave",
                    ),
                );
            } else if has_bounded {
                // A bounded edge in the cycle means a buffer or the
                // credit window decouples the coupling; summarized below.
                bounded_cycles += 1;
            } else if has_scheduling {
                report.push(
                    Finding::warning(
                        "AN-PROTO-003",
                        "wait-for cycle through a pseudo-synchronous mailbox send",
                    )
                    .at(describe(&cycle))
                    .note(
                        "a mailbox send does not return until the receiver's kernel \
                         schedules its mailbox process; coupled with the receive wait \
                         this serializes the two roles (the paper's Figure 7/8 finding)",
                    )
                    .help(
                        "decouple the send with a communication agent so the sender \
                         continues immediately",
                    ),
                );
            }
        }
        if bounded_cycles > 0 {
            report.push(
                Finding::info(
                    "AN-PROTO-003",
                    format!(
                        "{bounded_cycles} feedback cycle(s) are decoupled by bounded \
                         buffers or window credits"
                    ),
                )
                .at("wait-for graph")
                .note("benign while credits are conserved (see AN-PROTO-004)"),
            );
        }
        report
    }
}

/// The window-flow-control credit bookkeeping, statically checkable.
///
/// Every servant holds `window` credits; a credit carries one
/// `bundle_size`-pixel job out and is returned when the job's pixels
/// retire from the pixel queue, which happens only when `write_chunk`
/// contiguous completed pixels are written to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditLedger {
    /// Number of servants.
    pub servants: u32,
    /// Credits per servant.
    pub window: u32,
    /// Pixels per credit (bundle size).
    pub bundle_size: u32,
    /// Pixel-queue capacity (pixels in flight or completed-unwritten).
    pub capacity: u32,
    /// Contiguous completed pixels needed before a disk write retires
    /// them from the queue.
    pub write_chunk: u32,
}

impl CreditLedger {
    /// The ledger implied by an application configuration.
    pub fn from_app(app: &AppConfig) -> Self {
        CreditLedger {
            servants: app.servants as u32,
            window: app.window,
            bundle_size: app.bundle_size,
            capacity: app.pixel_queue_capacity,
            write_chunk: app.write_chunk,
        }
    }

    /// Peak pixels the window scheme can put in flight.
    pub fn peak_demand(&self) -> u32 {
        self.servants * self.window * self.bundle_size
    }

    /// In-flight jobs the queue constant actually admits.
    pub fn effective_jobs(&self) -> u32 {
        self.capacity.checked_div(self.bundle_size).unwrap_or(0)
    }

    /// Checks capacity against demand and credit conservation.
    pub fn lint(&self) -> Report {
        let mut report = Report::new("credit ledger");
        if self.write_chunk > self.capacity {
            report.push(
                Finding::error(
                    "AN-PROTO-004",
                    format!(
                        "window credits are never returned: write_chunk = {} exceeds \
                         pixel_queue_capacity = {}",
                        self.write_chunk, self.capacity
                    ),
                )
                .at(format!("app.write_chunk = {}", self.write_chunk))
                .note(
                    "completed pixels leave the queue only when a full write chunk is \
                     contiguous; a chunk larger than the queue can never assemble, so \
                     completed pixels accumulate until every credit is stuck",
                )
                .help("keep write_chunk <= pixel_queue_capacity"),
            );
        }
        let demand = self.peak_demand();
        if self.capacity < demand && self.window > 0 {
            let intended = self.servants * self.window;
            report.push(
                Finding::error(
                    "AN-PROTO-002",
                    format!(
                        "pixel-queue capacity {} is below the window scheme's peak \
                         demand of {demand} pixels",
                        self.capacity
                    ),
                )
                .at(format!("app.pixel_queue_capacity = {}", self.capacity)),
            );
            // Attach the arithmetic the paper's E2 evaluation had to
            // discover dynamically.
            let f = report.findings.last_mut().expect("just pushed");
            f.notes.push(format!(
                "{} servants x {} credits x {}-pixel bundles = {demand} pixels could \
                 be in flight, but the queue admits only {} jobs of the intended \
                 {intended}",
                self.servants,
                self.window,
                self.bundle_size,
                self.effective_jobs(),
            ));
            f.helps.push(format!(
                "raise pixel_queue_capacity to at least {demand} (version 4 uses 16384)"
            ));
        }
        report
    }
}

/// Runs the full protocol analysis for one application configuration.
pub fn analyze_protocol(app: &AppConfig) -> Report {
    let mut report = Report::new(format!("{} protocol", app.version));
    report.merge(ProtocolGraph::from_app(app).lint());
    report.merge(CreditLedger::from_app(app).lint());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use raysim::config::Version;

    #[test]
    fn v1_is_pseudo_synchronous_in_both_directions() {
        let report = analyze_protocol(&AppConfig::version(Version::V1));
        assert!(!report.has_errors());
        // Job send + result send each close a scheduling cycle with the
        // opposite receive wait.
        assert_eq!(report.warnings(), 2, "{}", report.render());
        assert!(report.contains("AN-PROTO-003"));
    }

    #[test]
    fn v2_warns_only_on_the_result_path() {
        let report = analyze_protocol(&AppConfig::version(Version::V2));
        assert!(!report.has_errors());
        assert_eq!(report.warnings(), 1, "{}", report.render());
        let warning = report
            .findings
            .iter()
            .find(|f| f.severity == crate::diag::Severity::Warning)
            .unwrap();
        assert!(
            warning.span.contains("result send"),
            "span: {}",
            warning.span
        );
    }

    #[test]
    fn v3_capacity_bug_is_detected_statically() {
        let report = analyze_protocol(&AppConfig::version(Version::V3));
        assert!(report.has_errors());
        assert!(report.contains("AN-PROTO-002"));
        let f = report.with_code("AN-PROTO-002").next().unwrap();
        assert!(f.span.contains("768"), "span: {}", f.span);
        assert!(
            f.notes.iter().any(|n| n.contains("2250")),
            "notes: {:?}",
            f.notes
        );
        // With agents in both directions there is no pseudo-synchrony
        // warning left.
        assert_eq!(report.warnings(), 0, "{}", report.render());
    }

    #[test]
    fn v4_is_clean_of_errors_and_warnings() {
        let report = analyze_protocol(&AppConfig::version(Version::V4));
        assert!(!report.has_errors(), "{}", report.render());
        assert_eq!(report.warnings(), 0);
    }

    #[test]
    fn zero_window_deadlocks() {
        let mut app = AppConfig::version(Version::V4);
        app.window = 0;
        let report = analyze_protocol(&app);
        assert!(report.contains("AN-PROTO-001"), "{}", report.render());
        assert!(report.has_errors());
    }

    #[test]
    fn unreturnable_credits_are_an_error() {
        let mut app = AppConfig::version(Version::V4);
        app.write_chunk = app.pixel_queue_capacity + 1;
        let report = analyze_protocol(&app);
        assert!(report.contains("AN-PROTO-004"));
        assert!(report.has_errors());
    }

    #[test]
    fn ledger_arithmetic() {
        let ledger = CreditLedger::from_app(&AppConfig::version(Version::V3));
        assert_eq!(ledger.peak_demand(), 2250);
        assert_eq!(ledger.effective_jobs(), 15);
        let v4 = CreditLedger::from_app(&AppConfig::version(Version::V4));
        assert_eq!(v4.peak_demand(), 4500);
        assert!(v4.capacity >= v4.peak_demand());
    }

    #[test]
    fn cycle_enumeration_finds_two_node_multigraph_cycles() {
        let mut g = ProtocolGraph::new();
        let a = g.add_role("A");
        let b = g.add_role("B");
        g.add_edge(a, b, EdgeKind::Blocking, "x");
        g.add_edge(a, b, EdgeKind::Scheduling, "y");
        g.add_edge(b, a, EdgeKind::Blocking, "z");
        // Two distinct cycles: (x, z) and (y, z).
        assert_eq!(g.cycles().len(), 2);
        // (x, z) is all-blocking -> deadlock.
        assert!(g.lint().contains("AN-PROTO-001"));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = ProtocolGraph::new();
        let a = g.add_role("A");
        g.add_edge(a, a, EdgeKind::Blocking, "waits on itself");
        assert_eq!(g.cycles().len(), 1);
        assert!(g.lint().contains("AN-PROTO-001"));
    }
}
