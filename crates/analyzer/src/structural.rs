//! Structural protocol analysis: place/transition-net invariants and
//! capacity synthesis that scale past the model checkers' state
//! budgets.
//!
//! The exhaustive layers ([`crate::model::flow`], [`crate::model::exact`],
//! [`crate::model::sched`]) prove the paper's protocol properties by
//! enumerating states, so every universal claim degrades to a partial
//! one (AN-MODEL-005) once a shape outgrows the state budget — exactly
//! where the scaling ladder is heading. This module proves the same
//! properties *algebraically*, in polynomial time, from the protocol
//! structure alone:
//!
//! 1. The window protocol (the same constants [`FlowModel::from_protocol`]
//!    consumes) is compiled into a **place/transition net**: window
//!    credits, jobs outstanding, free queue slots and completed-but-
//!    unwritten bundles are places; sending a job, completing a job and
//!    writing a chunk are transitions with weighted arcs.
//! 2. **P-invariants** are computed by Farkas' variant of Gaussian
//!    elimination over the incidence matrix. Each semi-positive
//!    solution of `yᵀ·C = 0` is a conservation law that holds in every
//!    reachable marking of *any* shape size — credit conservation and
//!    the queue bound fall out as machine-checkable certificates
//!    (AN-STRUCT-001).
//! 3. **Siphon/trap analysis** enumerates the minimal siphons and
//!    checks each is invariantly marked (a P-invariant with support
//!    inside the siphon keeps tokens in it forever). A marked-siphon
//!    net cannot wedge by token drainage; the only residual hazard is a
//!    *dead transition* whose weighted input arc exceeds a place bound
//!    — precisely the strict write-back whose chunk threshold the
//!    bounded queue can never accumulate (AN-STRUCT-002/003).
//! 4. The invariant structure is inverted into **capacity synthesis**:
//!    the minimal `pixel_queue_capacity` that keeps every siphon marked
//!    at full window concurrency and the write threshold reachable —
//!    turning AN-PROTO-002's "768 < 2250" detector into a prescription
//!    (AN-STRUCT-004).
//!
//! [`FlowModel::from_protocol`]: crate::model::flow::FlowModel::from_protocol

use raysim::config::AppConfig;

use crate::diag::{Finding, Report};

/// A place in the net: a named token counter with an initial marking.
#[derive(Debug, Clone)]
pub struct Place {
    /// Human-readable name, used in certificates and siphon reports.
    pub name: &'static str,
    /// Initial marking `M₀(p)`.
    pub initial: u64,
}

/// A transition with weighted consume/produce arcs (place index, weight).
#[derive(Debug, Clone)]
pub struct Transition {
    /// Human-readable name, used in counterexample prose.
    pub name: &'static str,
    /// Input arcs: `(place, weight)` consumed when the transition fires.
    pub consume: Vec<(usize, u64)>,
    /// Output arcs: `(place, weight)` produced when the transition fires.
    pub produce: Vec<(usize, u64)>,
}

/// A weighted place/transition net.
#[derive(Debug, Clone, Default)]
pub struct PetriNet {
    /// The places, indexed by the handles [`PetriNet::place`] returns.
    pub places: Vec<Place>,
    /// The transitions.
    pub transitions: Vec<Transition>,
}

/// A P-semiflow `y ≥ 0`, `y ≠ 0`, with `yᵀ·C = 0`: the weighted token
/// sum `Σ y(p)·M(p)` is invariant under every transition, so it equals
/// `yᵀ·M₀` in **every** reachable marking of every shape — a
/// machine-checkable conservation certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PInvariant {
    /// One non-negative weight per place.
    pub weights: Vec<u64>,
    /// The conserved constant `yᵀ·M₀`.
    pub constant: u64,
}

impl PInvariant {
    /// Mechanically re-checks the certificate against `net`: the
    /// weighted effect of every transition must be zero and the
    /// constant must equal the weighted initial marking.
    pub fn certifies(&self, net: &PetriNet) -> bool {
        if self.weights.len() != net.places.len() || self.weights.iter().all(|&w| w == 0) {
            return false;
        }
        let balanced = net.transitions.iter().all(|t| {
            let consumed: u64 = t.consume.iter().map(|&(p, w)| self.weights[p] * w).sum();
            let produced: u64 = t.produce.iter().map(|&(p, w)| self.weights[p] * w).sum();
            consumed == produced
        });
        let m0: u64 = net
            .places
            .iter()
            .zip(&self.weights)
            .map(|(p, &w)| p.initial * w)
            .sum();
        balanced && m0 == self.constant
    }

    /// The support: places with a non-zero weight.
    pub fn support(&self) -> Vec<usize> {
        (0..self.weights.len())
            .filter(|&p| self.weights[p] > 0)
            .collect()
    }

    /// Renders the certificate as `1·a + 2·b = c` prose over `net`'s
    /// place names.
    pub fn render(&self, net: &PetriNet) -> String {
        let terms: Vec<String> = self
            .support()
            .into_iter()
            .map(|p| format!("{}·{}", self.weights[p], net.places[p].name))
            .collect();
        format!("{} = {}", terms.join(" + "), self.constant)
    }
}

/// A minimal siphon and what the invariants say about it.
#[derive(Debug, Clone)]
pub struct SiphonSummary {
    /// Names of the places in the siphon.
    pub places: Vec<&'static str>,
    /// `true` when the siphon is also a trap (tokens can't leave).
    pub is_trap: bool,
    /// `true` when a P-invariant with support inside the siphon and a
    /// positive constant keeps it marked in every reachable state.
    pub invariantly_marked: bool,
}

const MAX_STRUCTURAL_PLACES: usize = 16;

impl PetriNet {
    /// Adds a place; returns its index.
    pub fn place(&mut self, name: &'static str, initial: u64) -> usize {
        self.places.push(Place { name, initial });
        self.places.len() - 1
    }

    /// Adds a transition with weighted consume/produce arcs.
    pub fn transition(
        &mut self,
        name: &'static str,
        consume: Vec<(usize, u64)>,
        produce: Vec<(usize, u64)>,
    ) {
        self.transitions.push(Transition {
            name,
            consume,
            produce,
        });
    }

    /// The incidence matrix `C` (places × transitions):
    /// `C[p][t] = produce(t, p) − consume(t, p)`.
    pub fn incidence(&self) -> Vec<Vec<i64>> {
        let mut c = vec![vec![0i64; self.transitions.len()]; self.places.len()];
        for (t, tr) in self.transitions.iter().enumerate() {
            for &(p, w) in &tr.consume {
                c[p][t] -= w as i64;
            }
            for &(p, w) in &tr.produce {
                c[p][t] += w as i64;
            }
        }
        c
    }

    /// Computes a generating set of minimal-support P-semiflows by
    /// Farkas' algorithm: Gaussian elimination over the rows of
    /// `[C | I]`, restricted to non-negative combinations, one
    /// transition column at a time. The protocol nets here have a
    /// handful of places, so the worst-case blowup never materializes;
    /// a row cap guards pathological inputs.
    pub fn p_semiflows(&self) -> Vec<PInvariant> {
        const ROW_CAP: usize = 4096;
        let np = self.places.len();
        let c = self.incidence();
        // Each row is (remaining incidence part, accumulated y-part).
        let mut rows: Vec<(Vec<i64>, Vec<u64>)> = (0..np)
            .map(|p| {
                let mut y = vec![0u64; np];
                y[p] = 1;
                (c[p].clone(), y)
            })
            .collect();
        for t in 0..self.transitions.len() {
            let mut next: Vec<(Vec<i64>, Vec<u64>)> = Vec::new();
            for row in rows.iter().filter(|r| r.0[t] == 0) {
                next.push(row.clone());
            }
            let pos: Vec<&(Vec<i64>, Vec<u64>)> = rows.iter().filter(|r| r.0[t] > 0).collect();
            let neg: Vec<&(Vec<i64>, Vec<u64>)> = rows.iter().filter(|r| r.0[t] < 0).collect();
            for p in &pos {
                for n in &neg {
                    if next.len() >= ROW_CAP {
                        break;
                    }
                    let (a, b) = (p.0[t] as u64, n.0[t].unsigned_abs());
                    let l = lcm(a, b);
                    let (fp, fneg) = (l / a, l / b);
                    let mut cpart: Vec<i64> =
                        p.0.iter()
                            .zip(&n.0)
                            .map(|(&x, &y)| x * fp as i64 + y * fneg as i64)
                            .collect();
                    let mut ypart: Vec<u64> =
                        p.1.iter()
                            .zip(&n.1)
                            .map(|(&x, &y)| x * fp + y * fneg)
                            .collect();
                    let g = cpart
                        .iter()
                        .map(|v| v.unsigned_abs())
                        .chain(ypart.iter().copied())
                        .fold(0u64, gcd);
                    if g > 1 {
                        for v in &mut cpart {
                            *v /= g as i64;
                        }
                        for v in &mut ypart {
                            *v /= g;
                        }
                    }
                    if !next.iter().any(|r| r.1 == ypart) {
                        next.push((cpart, ypart));
                    }
                }
            }
            rows = next;
        }
        // Every surviving row annihilates C; keep minimal supports.
        let mut flows: Vec<PInvariant> = Vec::new();
        for (_, y) in rows {
            if y.iter().all(|&w| w == 0) {
                continue;
            }
            let constant = self
                .places
                .iter()
                .zip(&y)
                .map(|(p, &w)| p.initial * w)
                .sum();
            let inv = PInvariant {
                weights: y,
                constant,
            };
            if !flows.iter().any(|f| f == &inv) {
                flows.push(inv);
            }
        }
        // Minimal support: drop any semiflow whose support strictly
        // contains another's.
        let supports: Vec<Vec<usize>> = flows.iter().map(|f| f.support()).collect();
        (0..flows.len())
            .filter(|&i| {
                !(0..flows.len()).any(|j| {
                    j != i
                        && supports[j].len() < supports[i].len()
                        && supports[j].iter().all(|p| supports[i].contains(p))
                })
            })
            .map(|i| flows[i].clone())
            .collect()
    }

    /// The structural bound on place `p`: the tightest
    /// `yᵀ·M₀ / y(p)` over invariants covering `p`, or `None` when no
    /// invariant bounds it.
    pub fn place_bound(&self, p: usize, invariants: &[PInvariant]) -> Option<u64> {
        invariants
            .iter()
            .filter(|inv| inv.weights[p] > 0)
            .map(|inv| inv.constant / inv.weights[p])
            .min()
    }

    /// Enumerates the minimal siphons: non-empty place sets `S` with
    /// `•S ⊆ S•` (every transition producing into `S` also consumes
    /// from it), minimal under inclusion. Exponential in places, so
    /// guarded by a 16-place cap; protocol nets stay tiny.
    pub fn minimal_siphons(&self) -> Vec<Vec<usize>> {
        self.minimal_sets(|s, t| {
            let produces = t.produce.iter().any(|&(p, _)| s & (1 << p) != 0);
            let consumes = t.consume.iter().any(|&(p, _)| s & (1 << p) != 0);
            !produces || consumes
        })
    }

    /// `true` when `set` is a trap: `S• ⊆ •S` (every transition
    /// consuming from `S` also produces into it), so a marked trap
    /// stays marked.
    pub fn is_trap(&self, set: &[usize]) -> bool {
        let mask: u64 = set.iter().map(|&p| 1u64 << p).sum();
        self.transitions.iter().all(|t| {
            let consumes = t.consume.iter().any(|&(p, _)| mask & (1 << p) != 0);
            let produces = t.produce.iter().any(|&(p, _)| mask & (1 << p) != 0);
            !consumes || produces
        })
    }

    fn minimal_sets(&self, ok: impl Fn(u64, &Transition) -> bool) -> Vec<Vec<usize>> {
        let np = self.places.len().min(MAX_STRUCTURAL_PLACES);
        let mut sets: Vec<u64> = Vec::new();
        for s in 1u64..(1 << np) {
            if self.transitions.iter().all(|t| ok(s, t)) {
                sets.push(s);
            }
        }
        sets.sort_by_key(|s| s.count_ones());
        let mut minimal: Vec<u64> = Vec::new();
        for s in sets {
            if !minimal.iter().any(|m| m & s == *m) {
                minimal.push(s);
            }
        }
        minimal
            .into_iter()
            .map(|m| (0..np).filter(|&p| m & (1 << p) != 0).collect())
            .collect()
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// How the siphon/trap layer classified the shape's deadlock risk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadlockVerdict {
    /// Deadlock freedom proven: every minimal siphon is invariantly
    /// marked and no transition is structurally dead.
    Free,
    /// Structural deadlock: the write transition is dead — its weighted
    /// input arc exceeds the named siphon's token bound, so once the
    /// remainder drains below a chunk the net wedges (strict mode).
    Starved {
        /// Place names of the starved siphon.
        siphon: Vec<&'static str>,
        /// The siphon's structural token bound (bundles).
        bound: u64,
        /// The write threshold the bound can never reach (bundles).
        threshold: u64,
    },
    /// Strict write-back with a live write transition: every siphon is
    /// invariantly marked, but a final partial chunk can still wedge
    /// the tail — not structurally excluded either way. The exact
    /// model distinguishes (it proves V-shape tails wedge or don't).
    Unknown,
}

/// The window protocol compiled to a place/transition net, in the same
/// bundle units as [`crate::model::flow::FlowModel`].
#[derive(Debug, Clone)]
pub struct ProtocolNet {
    /// The compiled net.
    pub net: PetriNet,
    /// Total window credits (`servants × window`).
    pub credits: u64,
    /// Queue capacity in bundles.
    pub capacity_b: u64,
    /// Write chunk in bundles.
    pub chunk_b: u64,
    /// Bundle size in pixels (≥ 1).
    pub bundle: u64,
    /// Eager write-back fallback enabled.
    pub eager: bool,
    p_credits: usize,
    p_out: usize,
    p_free: usize,
    p_done: usize,
}

impl ProtocolNet {
    /// Compiles the protocol constants (**pixel** units, the same
    /// signature as [`crate::model::flow::FlowModel::from_protocol`])
    /// into a net:
    ///
    /// * places — `window-credits` (M₀ = servants×window), `jobs-outstanding`
    ///   (0), `queue-free` (M₀ = ⌊capacity/bundle⌋), `queue-done` (0);
    /// * transitions — `send` (credit + free slot → outstanding),
    ///   `complete` (outstanding → credit back + done bundle),
    ///   `write-chunk` (chunk_b done bundles → chunk_b free slots).
    pub fn from_protocol(
        servants: u32,
        window: u32,
        bundle: u32,
        capacity: u32,
        chunk: u32,
        eager: bool,
    ) -> ProtocolNet {
        let bundle = bundle.max(1);
        let credits = u64::from(servants) * u64::from(window);
        let capacity_b = u64::from((capacity / bundle).max(1));
        let chunk_b = u64::from(chunk.div_ceil(bundle).max(1));
        let mut net = PetriNet::default();
        let p_credits = net.place("window-credits", credits);
        let p_out = net.place("jobs-outstanding", 0);
        let p_free = net.place("queue-free", capacity_b);
        let p_done = net.place("queue-done", 0);
        net.transition("send", vec![(p_credits, 1), (p_free, 1)], vec![(p_out, 1)]);
        net.transition(
            "complete",
            vec![(p_out, 1)],
            vec![(p_credits, 1), (p_done, 1)],
        );
        net.transition(
            "write-chunk",
            vec![(p_done, chunk_b)],
            vec![(p_free, chunk_b)],
        );
        ProtocolNet {
            net,
            credits,
            capacity_b,
            chunk_b,
            bundle: u64::from(bundle),
            eager,
            p_credits,
            p_out,
            p_free,
            p_done,
        }
    }

    /// Compiles an application configuration.
    pub fn from_app(app: &AppConfig) -> ProtocolNet {
        ProtocolNet::from_protocol(
            u32::from(app.servants),
            app.window,
            app.bundle_size,
            app.pixel_queue_capacity,
            app.write_chunk,
            app.eager_writeback,
        )
    }
}

/// Everything the structural layer proves about one protocol shape.
#[derive(Debug, Clone)]
pub struct StructuralVerdict {
    /// The compiled net the certificates refer to.
    pub net: ProtocolNet,
    /// All minimal-support P-invariants, each re-checked against the
    /// incidence matrix before being reported.
    pub invariants: Vec<PInvariant>,
    /// The credit-conservation certificate (`window-credits +
    /// jobs-outstanding = credits`), when found.
    pub conservation: Option<PInvariant>,
    /// The queue-bound certificate (`jobs-outstanding + queue-free +
    /// queue-done = capacity_b`), when found.
    pub queue_bound: Option<PInvariant>,
    /// The minimal siphons with trap/marking classification.
    pub siphons: Vec<SiphonSummary>,
    /// The deadlock classification.
    pub deadlock: DeadlockVerdict,
    /// Structural peak concurrency, in bundle jobs: `min(credits,
    /// capacity_b)`. The bound follows from the queue invariant; its
    /// reachability from the monotone send sequence (sends never
    /// trigger writes while nothing has completed).
    pub peak_concurrency: u64,
    /// The intended concurrency: every credit in flight at once.
    pub intended_concurrency: u64,
    /// `true` when the queue invariant caps concurrency below the
    /// window scheme's intent — V3's collapse, proven for any budget.
    pub window_collapse: bool,
    /// Synthesized minimal `pixel_queue_capacity` (pixels) that keeps
    /// every siphon markable at full window concurrency and the write
    /// threshold reachable: `bundle × max(credits, chunk_b)`.
    pub min_capacity: u64,
}

/// Runs the full structural analysis on one application shape.
pub fn analyze_structural(app: &AppConfig) -> StructuralVerdict {
    analyze_protocol_net(ProtocolNet::from_app(app))
}

/// Runs the full structural analysis on an already-compiled net (the
/// raw-shape entry point the differential tests use).
pub fn analyze_protocol_net(pn: ProtocolNet) -> StructuralVerdict {
    let invariants: Vec<PInvariant> = pn
        .net
        .p_semiflows()
        .into_iter()
        .filter(|inv| inv.certifies(&pn.net))
        .collect();
    let covers = |inv: &PInvariant, places: &[usize]| {
        let sup = inv.support();
        sup.len() == places.len() && places.iter().all(|p| sup.contains(p))
    };
    let conservation = invariants
        .iter()
        .find(|inv| covers(inv, &[pn.p_credits, pn.p_out]))
        .cloned();
    let queue_bound = invariants
        .iter()
        .find(|inv| covers(inv, &[pn.p_out, pn.p_free, pn.p_done]))
        .cloned();
    let siphons: Vec<SiphonSummary> = pn
        .net
        .minimal_siphons()
        .into_iter()
        .map(|s| SiphonSummary {
            places: s.iter().map(|&p| pn.net.places[p].name).collect(),
            is_trap: pn.net.is_trap(&s),
            invariantly_marked: invariants
                .iter()
                .any(|inv| inv.constant > 0 && inv.support().iter().all(|p| s.contains(p))),
        })
        .collect();
    // The only transition a place bound can starve is the weighted
    // write: `queue-done` is bounded by the queue invariant at
    // `capacity_b`, so a chunk threshold above it is structurally dead.
    let done_bound = pn
        .net
        .place_bound(pn.p_done, &invariants)
        .unwrap_or(u64::MAX);
    let write_live = done_bound >= pn.chunk_b;
    let all_marked = siphons.iter().all(|s| s.invariantly_marked);
    let deadlock = if pn.eager {
        // The eager fallback flushes any partial chunk once nothing is
        // outstanding or assignable, so a dead write threshold cannot
        // wedge the net; marked siphons rule out drainage deadlock.
        if all_marked {
            DeadlockVerdict::Free
        } else {
            DeadlockVerdict::Unknown
        }
    } else if !write_live {
        DeadlockVerdict::Starved {
            siphon: vec![
                pn.net.places[pn.p_out].name,
                pn.net.places[pn.p_free].name,
                pn.net.places[pn.p_done].name,
            ],
            bound: done_bound,
            threshold: pn.chunk_b,
        }
    } else {
        DeadlockVerdict::Unknown
    };
    let peak_concurrency = pn.credits.min(pn.capacity_b);
    let window_collapse = peak_concurrency < pn.credits;
    let min_capacity = pn.bundle * pn.credits.max(pn.chunk_b);
    StructuralVerdict {
        intended_concurrency: pn.credits,
        invariants,
        conservation,
        queue_bound,
        siphons,
        deadlock,
        peak_concurrency,
        window_collapse,
        min_capacity,
        net: pn,
    }
}

/// Renders a verdict into AN-STRUCT-001..004 findings (no subject; the
/// caller owns the report).
pub fn structural_findings(app: &AppConfig, v: &StructuralVerdict) -> Report {
    let mut report = Report::new(String::new());
    let pn = &v.net;

    // AN-STRUCT-001 — conservation certificates.
    match (&v.conservation, &v.queue_bound) {
        (Some(cons), Some(queue)) => {
            let mut f = Finding::info(
                "AN-STRUCT-001",
                format!(
                    "credit conservation proven algebraically: P-invariant {} holds in every \
                     reachable state, for any image size and any state budget",
                    cons.render(&pn.net)
                ),
            )
            .note(format!(
                "certificate: y·C = 0 verified over {} transitions; y·M0 = {} window credits",
                pn.net.transitions.len(),
                cons.constant
            ))
            .note(format!(
                "queue certificate: {} — outstanding and completed bundles can never \
                 overfill the {}-bundle pixel queue",
                queue.render(&pn.net),
                queue.constant
            ));
            for inv in &v.invariants {
                if Some(inv) != v.conservation.as_ref() && Some(inv) != v.queue_bound.as_ref() {
                    f = f.note(format!("additional invariant: {}", inv.render(&pn.net)));
                }
            }
            report.push(f);
        }
        _ => {
            report.push(Finding::warning(
                "AN-STRUCT-001",
                "no conservation invariant covers the credit/queue places — the net shape \
                 changed and the structural certificates need re-deriving",
            ));
        }
    }

    // AN-STRUCT-002 / AN-STRUCT-003 — siphon/trap deadlock analysis.
    match &v.deadlock {
        DeadlockVerdict::Free => {
            let mut f = Finding::info(
                "AN-STRUCT-002",
                format!(
                    "deadlock freedom proven structurally: all {} minimal siphons are \
                     invariantly marked and the write-back path stays live",
                    v.siphons.len()
                ),
            );
            for s in &v.siphons {
                f = f.note(format!(
                    "siphon {{{}}}: {}invariantly marked — a P-invariant pins its tokens",
                    s.places.join(", "),
                    if s.is_trap { "also a trap, " } else { "" },
                ));
            }
            if v.net.chunk_b > v.net.capacity_b {
                f = f.note(format!(
                    "the {}-bundle write threshold exceeds the {}-bundle queue bound, but \
                     eager write-back flushes partial chunks, so the dead threshold cannot \
                     wedge the net",
                    v.net.chunk_b, v.net.capacity_b
                ));
            }
            report.push(f);
        }
        DeadlockVerdict::Starved {
            siphon,
            bound,
            threshold,
        } => {
            report.push(
                Finding::error(
                    "AN-STRUCT-003",
                    format!(
                        "structural deadlock: the write-chunk transition is dead — siphon \
                         {{{}}} is bounded at {} bundle(s), below the {}-bundle write \
                         threshold, so strict write-back wedges once the tail drains",
                        siphon.join(", "),
                        bound,
                        threshold
                    ),
                )
                .at_config("app.write_chunk", u64::from(app.write_chunk))
                .help(format!(
                    "raise pixel_queue_capacity to at least {} pixels, lower write_chunk to \
                     at most {} pixels, or enable eager write-back",
                    threshold * pn.bundle,
                    bound * pn.bundle
                )),
            );
        }
        DeadlockVerdict::Unknown => {
            report.push(
                Finding::warning(
                    "AN-STRUCT-003",
                    "deadlock not structurally excluded: every siphon is invariantly marked, \
                     but strict write-back can still wedge on a final partial chunk",
                )
                .note(
                    "the structural layer cannot see the tail; the exact pixel model \
                     (AN-MODEL-001) classifies whether the wedge is reachable",
                ),
            );
        }
    }

    // AN-STRUCT-004 — capacity synthesis.
    if v.window_collapse {
        report.push(
            Finding::error(
                "AN-STRUCT-004",
                format!(
                    "window collapse proven structurally: the queue invariant caps concurrency \
                     at {} bundle job(s) of the intended {} — true for every state budget",
                    v.peak_concurrency, v.intended_concurrency
                ),
            )
            .at_config(
                "app.pixel_queue_capacity",
                u64::from(app.pixel_queue_capacity),
            )
            .note(format!(
                "synthesis inverts the invariant: capacity must cover servants × window × \
                 bundle = {} pixels before every credit can be in flight",
                v.min_capacity
            ))
            .help(format!(
                "minimum safe pixel_queue_capacity is {} ({} is unsafe)",
                v.min_capacity, app.pixel_queue_capacity
            )),
        );
    } else {
        report.push(
            Finding::info(
                "AN-STRUCT-004",
                format!(
                    "pixel queue capacity is structurally sufficient: {} pixels covers the \
                     synthesized minimum {} — full window concurrency ({} bundle jobs) stays \
                     reachable",
                    app.pixel_queue_capacity, v.min_capacity, v.peak_concurrency
                ),
            )
            .note(
                "reachability is the monotone send sequence: sends consume credits and free \
                 slots only, so nothing forces a write before the peak",
            ),
        );
    }
    report
}

/// The structural analysis of one application version as a standalone
/// report, the `analyze --structural` entry point.
pub fn check_structural(app: &AppConfig) -> Report {
    let verdict = analyze_structural(app);
    let mut report = structural_findings(app, &verdict);
    report.subject = format!("{} structural protocol net", app.version);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use raysim::config::Version;

    #[test]
    fn farkas_finds_both_protocol_invariants() {
        let v = analyze_structural(&AppConfig::version(Version::V4));
        let cons = v.conservation.expect("credit conservation invariant");
        assert_eq!(cons.constant, 45, "15 servants × window 3");
        assert!(cons.certifies(&v.net.net));
        let queue = v.queue_bound.expect("queue-bound invariant");
        assert_eq!(queue.constant, 163, "16384 pixels / 100-pixel bundles");
        assert!(queue.certifies(&v.net.net));
    }

    #[test]
    fn invariant_certificates_reject_tampering() {
        let v = analyze_structural(&AppConfig::version(Version::V1));
        let mut forged = v.conservation.clone().expect("certificate");
        forged.constant += 1;
        assert!(!forged.certifies(&v.net.net));
        let mut zeroed = v.conservation.clone().expect("certificate");
        zeroed.weights.iter_mut().for_each(|w| *w = 0);
        assert!(!zeroed.certifies(&v.net.net));
    }

    #[test]
    fn both_minimal_siphons_are_marked_traps() {
        let v = analyze_structural(&AppConfig::version(Version::V2));
        assert_eq!(v.siphons.len(), 2);
        for s in &v.siphons {
            assert!(s.is_trap, "{:?}", s.places);
            assert!(s.invariantly_marked, "{:?}", s.places);
        }
        assert_eq!(v.deadlock, DeadlockVerdict::Free);
    }

    #[test]
    fn v3_collapse_is_proven_and_the_minimum_is_the_peak_demand() {
        let v = analyze_structural(&AppConfig::version(Version::V3));
        assert!(v.window_collapse);
        assert_eq!(v.peak_concurrency, 15, "768 / 50-pixel bundles");
        assert_eq!(v.intended_concurrency, 45);
        assert_eq!(v.min_capacity, 2_250, "the window scheme's peak demand");
        let report = check_structural(&AppConfig::version(Version::V3));
        assert!(report.contains("AN-STRUCT-004"));
        assert!(report.has_errors());
        assert!(report
            .render()
            .contains("minimum safe pixel_queue_capacity is 2250"));
    }

    #[test]
    fn strict_overshooting_chunk_is_a_structural_deadlock() {
        // capacity 2 bundles, chunk 3 bundles, strict: the write
        // transition is dead, the wedge is certain.
        let v = analyze_protocol_net(ProtocolNet::from_protocol(2, 1, 1, 2, 3, false));
        match &v.deadlock {
            DeadlockVerdict::Starved {
                bound, threshold, ..
            } => {
                assert_eq!((*bound, *threshold), (2, 3));
            }
            other => panic!("expected starvation, got {other:?}"),
        }
        // The same shape with eager write-back is fine.
        let eager = analyze_protocol_net(ProtocolNet::from_protocol(2, 1, 1, 2, 3, true));
        assert_eq!(eager.deadlock, DeadlockVerdict::Free);
    }

    #[test]
    fn healthy_versions_report_only_info_findings() {
        for version in [Version::V1, Version::V2, Version::V4] {
            let report = check_structural(&AppConfig::version(version));
            assert!(!report.has_errors(), "{version:?}");
            assert_eq!(report.warnings(), 0, "{version:?}");
            assert!(report.contains("AN-STRUCT-001"));
            assert!(report.contains("AN-STRUCT-002"));
            assert!(report.contains("AN-STRUCT-004"));
        }
    }
}
