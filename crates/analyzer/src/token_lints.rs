//! Lints over declared instrumentation point maps.
//!
//! A *point map* is the raw, uncollapsed list of `(token id, activity
//! name, group)` declarations a program registers with the monitor —
//! [`raysim::tokens::point_map`] for the application and
//! [`suprenum::os_tokens::point_map`] for the kernel. The lints catch
//! the mistakes that silently corrupt a measurement long before any
//! event is emitted:
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | `AN-TOKEN-001` | error | `… End` name with no matching begin declaration |
//! | `AN-TOKEN-002` | error | duplicate token id inside one map |
//! | `AN-TOKEN-003` | error/warning | reserved-range violation (kernel base `0xF000`, zero token) |
//! | `AN-TOKEN-004` | error/info | application/kernel id collision; shared-display interleaving |
//! | `AN-TOKEN-005` | warning | duplicate activity name within one group |
//! | `AN-TOKEN-006` | warning | kernel events requested under a monitoring mode that drops them (emitted by the pre-flight workload hook) |

use std::collections::BTreeMap;

use suprenum::os_tokens::KERNEL_TOKEN_BASE;

use crate::diag::{Finding, Report};

/// One declared instrumentation point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenDecl {
    /// The 16-bit token id.
    pub token: u16,
    /// The activity name shown on Gantt tracks; names ending in
    /// `" End"` close the activity of the same base name.
    pub name: String,
    /// The role that owns the point (Master, Servant, Agent, Kernel).
    pub group: String,
}

impl TokenDecl {
    /// Creates a declaration.
    pub fn new(token: u16, name: impl Into<String>, group: impl Into<String>) -> Self {
        TokenDecl {
            token,
            name: name.into(),
            group: group.into(),
        }
    }

    /// If the name is a closer (`"X End"`), the base name `"X"` it closes.
    pub fn end_base(&self) -> Option<&str> {
        self.name.strip_suffix(" End")
    }
}

/// Whose activity state machine a map drives — decides which side of
/// the `0xF000` kernel reservation its ids must live on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapKind {
    /// Application-level instrumentation (below the kernel base).
    Application,
    /// Kernel instrumentation (at or above the kernel base).
    Kernel,
}

/// A complete declared point map, ready to lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenMap {
    /// Display label used in finding spans, e.g. `raysim::tokens`.
    pub label: String,
    /// Which reservation side the map belongs to.
    pub kind: MapKind,
    /// The declarations, in declaration order.
    pub decls: Vec<TokenDecl>,
}

impl TokenMap {
    /// An empty map.
    pub fn new(label: impl Into<String>, kind: MapKind) -> Self {
        TokenMap {
            label: label.into(),
            kind,
            decls: Vec::new(),
        }
    }

    /// Builds a map from `(token, name, group)` tuples as produced by
    /// the `point_map()` declarations in the instrumented crates.
    pub fn from_points(
        label: impl Into<String>,
        kind: MapKind,
        points: &[(u16, &str, &str)],
    ) -> Self {
        TokenMap {
            label: label.into(),
            kind,
            decls: points
                .iter()
                .map(|&(t, n, g)| TokenDecl::new(t, n, g))
                .collect(),
        }
    }

    /// Builds a map from any workload's declared instrumentation
    /// points — the bridge that makes the `AN-TOKEN-*` lints
    /// workload-agnostic (see [`crate::preflight::workload_hook`]).
    pub fn from_workload<W: pipeline::Workload>(workload: &W) -> Self {
        TokenMap {
            label: format!("{}::tokens", workload.id()),
            kind: MapKind::Application,
            decls: workload
                .token_map()
                .iter()
                .map(|d| TokenDecl::new(d.token, d.name, d.group))
                .collect(),
        }
    }

    /// The ray tracer's declared application point map.
    pub fn raysim_application() -> Self {
        TokenMap::from_points(
            "raysim::tokens",
            MapKind::Application,
            &raysim::tokens::point_map(),
        )
    }

    /// SUPRENUM's declared kernel point map.
    pub fn suprenum_kernel() -> Self {
        TokenMap::from_points(
            "suprenum::os_tokens",
            MapKind::Kernel,
            &suprenum::os_tokens::point_map(),
        )
    }

    fn span(&self, decl: &TokenDecl) -> String {
        format!(
            "{}: 0x{:04X} \"{}\" ({})",
            self.label, decl.token, decl.name, decl.group
        )
    }

    /// Runs every single-map lint and returns the findings.
    pub fn lint(&self) -> Report {
        let mut report = Report::new(self.label.clone());
        self.lint_end_pairs(&mut report);
        self.lint_duplicate_ids(&mut report);
        self.lint_reserved_ranges(&mut report);
        self.lint_duplicate_names(&mut report);
        report
    }

    /// `AN-TOKEN-001`: a `"X End"` declaration needs a `"X"` begin
    /// declaration in the same group, or the activity derivation sees an
    /// end with nothing to close and the Gantt track goes negative.
    fn lint_end_pairs(&self, report: &mut Report) {
        for decl in &self.decls {
            let Some(base) = decl.end_base() else {
                continue;
            };
            let has_begin = self
                .decls
                .iter()
                .any(|d| d.group == decl.group && d.name == base);
            if !has_begin {
                report.push(
                    Finding::error(
                        "AN-TOKEN-001",
                        format!(
                            "unmatched end token: \"{}\" has no \"{}\" begin declaration \
                             in group {}",
                            decl.name, base, decl.group
                        ),
                    )
                    .at(self.span(decl))
                    .note(
                        "an \"… End\" name closes the activity of the same base name; \
                         without the begin the activity derivation cannot attribute \
                         the interval",
                    )
                    .help(format!(
                        "declare a \"{base}\" point in group {} or remove the end token",
                        decl.group
                    )),
                );
            }
        }
    }

    /// `AN-TOKEN-002`: two declarations with the same id. The token
    /// registry silently overwrites on collision, so the first
    /// declaration's events get reattributed to the second's activity.
    fn lint_duplicate_ids(&self, report: &mut Report) {
        let mut by_id: BTreeMap<u16, Vec<&TokenDecl>> = BTreeMap::new();
        for decl in &self.decls {
            by_id.entry(decl.token).or_default().push(decl);
        }
        for (token, decls) in by_id {
            if decls.len() < 2 {
                continue;
            }
            let names: Vec<String> = decls
                .iter()
                .map(|d| format!("\"{}\" ({})", d.name, d.group))
                .collect();
            report.push(
                Finding::error(
                    "AN-TOKEN-002",
                    format!(
                        "token id 0x{token:04X} declared {} times: {}",
                        decls.len(),
                        names.join(", ")
                    ),
                )
                .at(self.span(decls[0]))
                .note(
                    "TokenRegistry::register keeps only the last registration, so \
                     earlier points are silently reattributed",
                )
                .help("give each instrumentation point a unique id"),
            );
        }
    }

    /// `AN-TOKEN-003`: reserved-range violations. Application ids must
    /// stay below [`KERNEL_TOKEN_BASE`] (the decoder attributes a token
    /// to kernel or application by range alone when both share a node's
    /// display channel); kernel ids must stay at or above it; token
    /// `0x0000` is ambiguous with an all-zero idle event.
    fn lint_reserved_ranges(&self, report: &mut Report) {
        for decl in &self.decls {
            match self.kind {
                MapKind::Application if decl.token >= KERNEL_TOKEN_BASE => {
                    report.push(
                        Finding::error(
                            "AN-TOKEN-003",
                            format!(
                                "application token 0x{:04X} lies in the kernel-reserved \
                                 range (>= 0x{KERNEL_TOKEN_BASE:04X})",
                                decl.token
                            ),
                        )
                        .at(self.span(decl))
                        .note(
                            "the decoder attributes tokens to the kernel or the \
                             application by id range; an application token in the \
                             kernel range is decoded as a kernel event",
                        )
                        .help(format!("move the id below 0x{KERNEL_TOKEN_BASE:04X}")),
                    );
                }
                MapKind::Kernel if decl.token < KERNEL_TOKEN_BASE => {
                    report.push(
                        Finding::warning(
                            "AN-TOKEN-003",
                            format!(
                                "kernel token 0x{:04X} lies below the kernel base \
                                 0x{KERNEL_TOKEN_BASE:04X}",
                                decl.token
                            ),
                        )
                        .at(self.span(decl))
                        .note(
                            "kernel events outside the reserved range are \
                             indistinguishable from application events",
                        ),
                    );
                }
                _ => {}
            }
            if decl.token == 0 {
                report.push(
                    Finding::warning(
                        "AN-TOKEN-003",
                        "token 0x0000 is ambiguous with an all-zero event".to_string(),
                    )
                    .at(self.span(decl))
                    .note(
                        "a zero token with a zero parameter encodes as sixteen zero \
                         data groups — valid on the wire, but unattributable when a \
                         trace is truncated",
                    ),
                );
            }
        }
    }

    /// `AN-TOKEN-005`: two different ids carrying the same activity name
    /// inside one group — legal, but the Gantt derivation merges them
    /// into one track segment, which is rarely intended.
    fn lint_duplicate_names(&self, report: &mut Report) {
        let mut by_name: BTreeMap<(&str, &str), Vec<&TokenDecl>> = BTreeMap::new();
        for decl in &self.decls {
            by_name
                .entry((decl.group.as_str(), decl.name.as_str()))
                .or_default()
                .push(decl);
        }
        for ((group, name), decls) in by_name {
            let distinct_ids: std::collections::BTreeSet<u16> =
                decls.iter().map(|d| d.token).collect();
            if distinct_ids.len() < 2 {
                continue;
            }
            report.push(
                Finding::warning(
                    "AN-TOKEN-005",
                    format!(
                        "activity \"{name}\" in group {group} is declared under {} \
                         different ids",
                        distinct_ids.len()
                    ),
                )
                .at(self.span(decls[0]))
                .note("the activity derivation merges same-named points into one state"),
            );
        }
    }
}

/// Cross-map lints for an application and a kernel map that share a
/// node's display channel (`AN-TOKEN-004`).
pub fn lint_pair(app: &TokenMap, kernel: &TokenMap) -> Report {
    let mut report = Report::new(format!("{} + {}", app.label, kernel.label));
    let kernel_ids: BTreeMap<u16, &TokenDecl> = kernel.decls.iter().map(|d| (d.token, d)).collect();
    for decl in &app.decls {
        if let Some(kdecl) = kernel_ids.get(&decl.token) {
            report.push(
                Finding::error(
                    "AN-TOKEN-004",
                    format!(
                        "token id 0x{:04X} is declared by both the application \
                         (\"{}\") and the kernel (\"{}\")",
                        decl.token, decl.name, kdecl.name
                    ),
                )
                .at(app.span(decl))
                .note(
                    "both maps drive the same display channel per node; a shared id \
                     makes every such event unattributable",
                ),
            );
        }
    }
    if !app.decls.is_empty() && !kernel.decls.is_empty() {
        report.push(
            Finding::info(
                "AN-TOKEN-004",
                "application and kernel instrumentation interleave on each node's \
                 display channel"
                    .to_string(),
            )
            .at(format!("{} / {}", app.label, kernel.label))
            .note(
                "the decoder tolerates interleaving only between (T, m) pairs; the \
                 kernel must emit solely in windows where it owns the CPU so no \
                 application event is split mid-pair",
            ),
        );
    }
    report
}

/// Lints both stock point maps and their interaction; the map-level half
/// of [`crate::preflight::analyze_app`].
pub fn lint_stock_maps() -> Report {
    let app = TokenMap::raysim_application();
    let kernel = TokenMap::suprenum_kernel();
    let mut report = Report::new("stock point maps");
    report.merge(app.lint());
    report.merge(kernel.lint());
    report.merge(lint_pair(&app, &kernel));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app_map(points: &[(u16, &str, &str)]) -> TokenMap {
        TokenMap::from_points("test", MapKind::Application, points)
    }

    #[test]
    fn stock_maps_have_no_errors() {
        let report = lint_stock_maps();
        assert!(
            !report.has_errors(),
            "stock maps must lint clean:\n{}",
            report.render()
        );
        assert_eq!(report.warnings(), 0);
        // The interleaving reminder is the only finding.
        assert!(report.contains("AN-TOKEN-004"));
        assert_eq!(report.findings.len(), 1);
    }

    #[test]
    fn unmatched_end_is_an_error() {
        let map = app_map(&[
            (0x0101, "Send Jobs End", "Master"),
            (0x0102, "Wait for Results", "Master"),
        ]);
        let report = map.lint();
        assert!(report.contains("AN-TOKEN-001"));
        assert!(report.has_errors());
    }

    #[test]
    fn matched_end_is_clean() {
        let map = app_map(&[
            (0x0101, "Send Jobs", "Master"),
            (0x0102, "Send Jobs End", "Master"),
        ]);
        assert!(map.lint().is_clean());
    }

    #[test]
    fn end_pair_must_share_group() {
        let map = app_map(&[
            (0x0101, "Send Jobs", "Servant"),
            (0x0102, "Send Jobs End", "Master"),
        ]);
        assert!(map.lint().contains("AN-TOKEN-001"));
    }

    #[test]
    fn duplicate_id_is_an_error() {
        let map = app_map(&[(0x0101, "Send Jobs", "Master"), (0x0101, "Work", "Servant")]);
        let report = map.lint();
        assert!(report.contains("AN-TOKEN-002"));
        assert!(report.has_errors());
    }

    #[test]
    fn app_token_in_kernel_range_is_an_error() {
        let map = app_map(&[(0xF001, "Work", "Servant")]);
        let report = map.lint();
        let f = report.with_code("AN-TOKEN-003").next().unwrap();
        assert_eq!(f.severity, crate::diag::Severity::Error);
    }

    #[test]
    fn kernel_token_below_base_is_a_warning() {
        let map = TokenMap::from_points("test", MapKind::Kernel, &[(0x0101, "Dispatch", "Kernel")]);
        let report = map.lint();
        let f = report.with_code("AN-TOKEN-003").next().unwrap();
        assert_eq!(f.severity, crate::diag::Severity::Warning);
    }

    #[test]
    fn zero_token_is_a_warning() {
        let map = app_map(&[(0x0000, "Work", "Servant")]);
        assert!(map.lint().contains("AN-TOKEN-003"));
        assert!(!map.lint().has_errors());
    }

    #[test]
    fn duplicate_name_is_a_warning() {
        let map = app_map(&[(0x0101, "Work", "Servant"), (0x0102, "Work", "Servant")]);
        let report = map.lint();
        assert!(report.contains("AN-TOKEN-005"));
        assert!(!report.has_errors());
    }

    #[test]
    fn cross_map_collision_is_an_error() {
        let app = app_map(&[(0x0101, "Work", "Servant")]);
        let kernel = TokenMap::from_points("k", MapKind::Kernel, &[(0x0101, "Dispatch", "Kernel")]);
        let report = lint_pair(&app, &kernel);
        assert!(report.has_errors());
        assert!(report.contains("AN-TOKEN-004"));
    }
}
