//! One-call entry points and the [`raysim::run()`] pre-flight hook.
//!
//! The analyzer plugs into the simulator through the fn-pointer seam
//! [`raysim::run::PreflightPolicy`]: [`warn_policy`] prints findings and
//! lets the run proceed (how the paper's experiments must run — version
//! 3's queue bug has to execute to be measured), [`deny_policy`] refuses
//! to start a run whose analysis reports errors, and
//! [`policy_from_env`] lets `ANALYZER_POLICY=off|warn|deny` override a
//! harness's default without recompiling.
//!
//! Analysis comes in two depths: the default entry points use
//! [`ModelBudget::preflight`] (cheap enough to run before every sweep
//! run; bounded explorations report `AN-MODEL-005` instead of universal
//! claims), while the `*_with` variants accept an explicit budget —
//! the `analyze` CLI and the CI gate pass [`ModelBudget::full`], which
//! closes every stock V1–V4 state space.

use std::time::{Duration, Instant};

use pipeline::{PipelineConfig, Preflight, Workload};
use raysim::config::{AppConfig, Version};
use raysim::run::{PreflightPolicy, PreflightSummary, RunConfig};

use crate::diag::{Report, Severity};
use crate::model::{check_app_timed, ModelBudget};
use crate::protocol::analyze_protocol;
use crate::rate::analyze_rate;
use crate::token_lints::{lint_pair, lint_stock_maps, TokenMap};

/// Wall time spent in each analysis layer, published by `analyze
/// --json` so analyzer cost regressions show up in CI artifacts.
#[derive(Debug, Clone, Copy, Default)]
pub struct LayerTimings {
    /// Token-map lints (`AN-TOKEN-*`).
    pub token: Duration,
    /// Protocol graph analysis (`AN-PROTO-*`).
    pub protocol: Duration,
    /// Event-rate prediction (`AN-RATE-*`).
    pub rate: Duration,
    /// Structural place/transition-net layer (`AN-STRUCT-*`).
    pub structural: Duration,
    /// Exhaustive flow/exact/sched explorations (`AN-MODEL-*`).
    pub model: Duration,
    /// DPOR race explorer (`AN-RACE-*`).
    pub race: Duration,
}

/// Analyzes everything knowable from the application configuration
/// alone — the stock point maps, the version's protocol, and the
/// protocol model checker — under an explicit model-checking budget,
/// returning the per-layer wall-time breakdown alongside the report.
pub fn analyze_app_timed(app: &AppConfig, budget: &ModelBudget) -> (Report, LayerTimings) {
    let mut timings = LayerTimings::default();
    let mut report = Report::new(format!("{}", app.version));
    let phase = Instant::now();
    report.merge(lint_stock_maps());
    timings.token = phase.elapsed();
    let phase = Instant::now();
    report.merge(analyze_protocol(app));
    timings.protocol = phase.elapsed();
    let (model_report, model_timings) = check_app_timed(app, budget);
    report.merge(model_report);
    timings.structural = model_timings.structural;
    timings.model = model_timings.model;
    timings.race = model_timings.race;
    (report, timings)
}

/// [`analyze_app_timed`] without the cost breakdown.
pub fn analyze_app_with(app: &AppConfig, budget: &ModelBudget) -> Report {
    analyze_app_timed(app, budget).0
}

/// [`analyze_app_with`] under the cheap pre-flight budget.
pub fn analyze_app(app: &AppConfig) -> Report {
    analyze_app_with(app, &ModelBudget::preflight())
}

/// Analyzes a full run configuration: application checks plus the
/// event-rate prediction against the configured machine and monitor,
/// with the per-layer cost breakdown.
pub fn analyze_run_timed(cfg: &RunConfig, budget: &ModelBudget) -> (Report, LayerTimings) {
    let (mut report, mut timings) = analyze_app_timed(&cfg.app, budget);
    let phase = Instant::now();
    report.merge(analyze_rate(&cfg.app, &cfg.machine, &cfg.zm4));
    timings.rate = phase.elapsed();
    (report, timings)
}

/// Analyzes a full run configuration: application checks plus the
/// event-rate prediction against the configured machine and monitor.
pub fn analyze_run_with(cfg: &RunConfig, budget: &ModelBudget) -> Report {
    analyze_run_timed(cfg, budget).0
}

/// [`analyze_run_with`] under the cheap pre-flight budget.
pub fn analyze_run(cfg: &RunConfig) -> Report {
    analyze_run_with(cfg, &ModelBudget::preflight())
}

/// Analyzes a stock program version under its stock run configuration,
/// with the per-layer cost breakdown.
pub fn analyze_version_timed(version: Version, budget: &ModelBudget) -> (Report, LayerTimings) {
    analyze_run_timed(&RunConfig::new(AppConfig::version(version)), budget)
}

/// Analyzes a stock program version under its stock run configuration.
pub fn analyze_version_with(version: Version, budget: &ModelBudget) -> Report {
    analyze_version_timed(version, budget).0
}

/// [`analyze_version_with`] under the cheap pre-flight budget.
pub fn analyze_version(version: Version) -> Report {
    analyze_version_with(version, &ModelBudget::preflight())
}

/// Analyzes all four stock versions, in evolution order.
pub fn analyze_all_versions() -> Vec<Report> {
    Version::ALL.iter().map(|&v| analyze_version(v)).collect()
}

/// Analyzes all four stock versions under an explicit budget.
pub fn analyze_all_versions_with(budget: &ModelBudget) -> Vec<Report> {
    Version::ALL
        .iter()
        .map(|&v| analyze_version_with(v, budget))
        .collect()
}

/// Flattens a report into the pipeline's summary shape.
fn summarize(report: &Report) -> PreflightSummary {
    PreflightSummary {
        errors: report.errors(),
        warnings: report.warnings(),
        infos: report.count(Severity::Info),
        rendered: report.render(),
    }
}

/// The hook [`raysim::run::preflight`] calls: full analysis, flattened
/// into counts plus rendered text.
pub fn preflight_hook(cfg: &RunConfig) -> PreflightSummary {
    summarize(&analyze_run(cfg))
}

/// The pipeline-shaped twin of [`preflight_hook`], for ray-tracer runs
/// configured as [`PipelineConfig`]s: the full ray-tracer analysis
/// (point maps, protocol, models, event rate) under the cheap
/// pre-flight budget.
pub fn pipeline_hook(cfg: &PipelineConfig<AppConfig>) -> PreflightSummary {
    let mut report = analyze_app(&cfg.workload);
    report.merge(analyze_rate(&cfg.workload, &cfg.machine, &cfg.zm4));
    summarize(&report)
}

/// A pipeline pre-flight that analyzes the ray tracer, reports, and
/// runs anyway.
pub fn pipeline_warn() -> Preflight<AppConfig> {
    Preflight::warn(pipeline_hook)
}

/// A pipeline pre-flight that refuses to run ray-tracer configurations
/// with errors.
pub fn pipeline_deny() -> Preflight<AppConfig> {
    Preflight::deny(pipeline_hook)
}

/// The workload-agnostic hook: lints any workload's declared token map
/// (`AN-TOKEN-*`) — against itself and against the kernel map it will
/// share every node's display channel with. Protocol and rate analyses
/// are ray-tracer-shaped and do not run here; a workload wanting them
/// supplies its own hook.
pub fn workload_hook<W: Workload>(cfg: &PipelineConfig<W>) -> PreflightSummary {
    let app = TokenMap::from_workload(&cfg.workload);
    let kernel = TokenMap::suprenum_kernel();
    let mut report = Report::new(format!("{} instrumentation", cfg.workload.id()));
    report.merge(app.lint());
    report.merge(kernel.lint());
    report.merge(lint_pair(&app, &kernel));
    if cfg.workload.wants_kernel_events()
        && cfg.machine.monitoring != hybridmon::MonitoringMode::Hybrid
    {
        report.push(
            crate::diag::Finding::warning(
                "AN-TOKEN-006",
                format!(
                    "workload '{}' requests kernel instrumentation, but monitoring mode {:?} \
                     drops kernel events silently — switch the machine to hybrid monitoring",
                    cfg.workload.id(),
                    cfg.machine.monitoring
                ),
            )
            .at("machine.monitoring"),
        );
    }
    summarize(&report)
}

/// A pre-flight for any workload that runs the token-map lints, warns,
/// and proceeds.
pub fn workload_warn<W: Workload>() -> Preflight<W> {
    Preflight::warn(workload_hook::<W>)
}

/// A pre-flight for any workload that refuses to run on token-map
/// errors.
pub fn workload_deny<W: Workload>() -> Preflight<W> {
    Preflight::deny(workload_hook::<W>)
}

/// A policy that analyzes, reports, and runs anyway.
pub fn warn_policy() -> PreflightPolicy {
    PreflightPolicy::Warn(preflight_hook)
}

/// A policy that refuses to run configurations with errors.
pub fn deny_policy() -> PreflightPolicy {
    PreflightPolicy::Deny(preflight_hook)
}

/// Resolves the pre-flight policy from the `ANALYZER_POLICY`
/// environment variable (`off` | `warn` | `deny`, case-insensitive),
/// falling back to `default` when unset. An unrecognized value is
/// reported on stderr and treated as the fallback — a sweep should not
/// silently lose its analysis because of a typo.
pub fn policy_from_env(default: PreflightPolicy) -> PreflightPolicy {
    match std::env::var("ANALYZER_POLICY") {
        Err(_) => default,
        Ok(value) => match value.to_ascii_lowercase().as_str() {
            "off" => PreflightPolicy::Off,
            "warn" => warn_policy(),
            "deny" => deny_policy(),
            other => {
                eprintln!(
                    "ANALYZER_POLICY={other:?} not recognized (expected off|warn|deny); \
                     keeping the default policy"
                );
                default
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_version_reports_match_the_paper_story() {
        let reports = analyze_all_versions();
        assert_eq!(reports.len(), 4);
        // V1: pseudo-synchronous in both directions, no errors.
        assert!(!reports[0].has_errors());
        assert!(reports[0].warnings() >= 2);
        // V2: the result path still warns.
        assert!(!reports[1].has_errors());
        assert_eq!(reports[1].warnings(), 1);
        // V3: the queue bug, found statically — by the linear lint and
        // by the model checker's reachability verdict.
        assert!(reports[2].has_errors());
        assert!(reports[2].contains("AN-PROTO-002"));
        assert!(reports[2].contains("AN-MODEL-002"));
        // V4: no errors, no warnings.
        assert!(!reports[3].has_errors());
        assert_eq!(reports[3].warnings(), 0);
    }

    #[test]
    fn hook_flattens_counts() {
        let cfg = RunConfig::new(AppConfig::version(Version::V3));
        let summary = preflight_hook(&cfg);
        assert!(summary.errors >= 1);
        assert!(summary.rendered.contains("AN-PROTO-002"));
        assert!(summary.rendered.contains("error["));
    }

    #[test]
    fn warn_policy_lets_v3_run_to_the_preflight_stage() {
        let mut cfg = RunConfig::new(AppConfig::version(Version::V3));
        cfg.preflight = warn_policy();
        // The analysis itself must not panic; raysim::run::preflight
        // returns the summary under Warn even with errors present.
        let summary = raysim::run::preflight(&cfg).expect("policy is on");
        assert!(summary.errors >= 1);
    }

    #[test]
    #[should_panic(expected = "refusing to run")]
    fn deny_policy_stops_v3() {
        let mut cfg = RunConfig::new(AppConfig::version(Version::V3));
        cfg.preflight = deny_policy();
        raysim::run::preflight(&cfg);
    }

    #[test]
    fn deny_policy_passes_v4() {
        let mut cfg = RunConfig::new(AppConfig::version(Version::V4));
        cfg.preflight = deny_policy();
        let summary = raysim::run::preflight(&cfg).expect("policy is on");
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn pipeline_deny_stops_v3_without_running_it() {
        let mut cfg = PipelineConfig::new(AppConfig::version(Version::V3));
        cfg.preflight = pipeline_deny();
        let denied = pipeline::try_preflight(&cfg).unwrap_err();
        assert!(denied.summary.errors >= 1);
        assert!(denied.summary.rendered.contains("AN-PROTO-002"));
    }

    #[test]
    fn pipeline_warn_matches_legacy_hook_on_v3() {
        let legacy = preflight_hook(&RunConfig::new(AppConfig::version(Version::V3)));
        let piped = pipeline_hook(&PipelineConfig::new(AppConfig::version(Version::V3)));
        assert_eq!(legacy.errors, piped.errors);
        assert_eq!(legacy.warnings, piped.warnings);
    }

    #[test]
    fn generic_workload_hook_lints_jacobi_cleanly() {
        let cfg = PipelineConfig::new(pipeline::jacobi::JacobiConfig::default());
        let summary = workload_hook(&cfg);
        assert_eq!(summary.errors, 0, "{}", summary.rendered);
        assert_eq!(summary.warnings, 0, "{}", summary.rendered);
        // And the deny pre-flight lets a clean map through.
        let mut cfg = cfg;
        cfg.preflight = workload_deny();
        assert!(pipeline::try_preflight(&cfg).is_ok());
    }

    #[test]
    fn workload_hook_warns_when_kernel_events_would_be_dropped() {
        // A ray-tracer app that wants kernel events under software-only
        // monitoring: the pipeline would silently drop every kernel
        // token, so the hook must say so (AN-TOKEN-006).
        let mut app = AppConfig::version(Version::V1);
        app.kernel_events = true;
        let mut cfg = PipelineConfig::new(app);
        cfg.machine.monitoring = hybridmon::MonitoringMode::Software;
        let summary = workload_hook(&cfg);
        assert_eq!(summary.errors, 0, "{}", summary.rendered);
        assert!(summary.warnings >= 1, "{}", summary.rendered);
        assert!(
            summary.rendered.contains("AN-TOKEN-006"),
            "{}",
            summary.rendered
        );
        // Under hybrid monitoring the same request is fine.
        cfg.machine.monitoring = hybridmon::MonitoringMode::Hybrid;
        let summary = workload_hook(&cfg);
        assert!(
            !summary.rendered.contains("AN-TOKEN-006"),
            "{}",
            summary.rendered
        );
    }

    #[test]
    fn env_override_selects_policies() {
        // Set/unset ANALYZER_POLICY around each probe. Serialized by
        // being a single test; the variable is restored at the end.
        let probe = |value: Option<&str>| {
            match value {
                Some(v) => std::env::set_var("ANALYZER_POLICY", v),
                None => std::env::remove_var("ANALYZER_POLICY"),
            }
            policy_from_env(PreflightPolicy::Off)
        };
        assert!(matches!(probe(Some("off")), PreflightPolicy::Off));
        assert!(matches!(probe(Some("WARN")), PreflightPolicy::Warn(_)));
        assert!(matches!(probe(Some("deny")), PreflightPolicy::Deny(_)));
        // Unknown values keep the fallback.
        assert!(matches!(probe(Some("strict")), PreflightPolicy::Off));
        assert!(matches!(probe(None), PreflightPolicy::Off));
    }
}
