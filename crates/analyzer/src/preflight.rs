//! One-call entry points and the [`raysim::run`] pre-flight hook.
//!
//! The analyzer plugs into the simulator through the fn-pointer seam
//! [`raysim::run::PreflightPolicy`]: [`warn_policy`] prints findings and
//! lets the run proceed (how the paper's experiments must run — version
//! 3's queue bug has to execute to be measured), [`deny_policy`] refuses
//! to start a run whose analysis reports errors.

use raysim::config::{AppConfig, Version};
use raysim::run::{PreflightPolicy, PreflightSummary, RunConfig};

use crate::diag::Report;
use crate::protocol::analyze_protocol;
use crate::rate::analyze_rate;
use crate::token_lints::lint_stock_maps;

/// Analyzes everything knowable from the application configuration
/// alone: the stock point maps and the version's protocol.
pub fn analyze_app(app: &AppConfig) -> Report {
    let mut report = Report::new(format!("{}", app.version));
    report.merge(lint_stock_maps());
    report.merge(analyze_protocol(app));
    report
}

/// Analyzes a full run configuration: application checks plus the
/// event-rate prediction against the configured machine and monitor.
pub fn analyze_run(cfg: &RunConfig) -> Report {
    let mut report = analyze_app(&cfg.app);
    report.merge(analyze_rate(&cfg.app, &cfg.machine, &cfg.zm4));
    report
}

/// Analyzes a stock program version under its stock run configuration.
pub fn analyze_version(version: Version) -> Report {
    analyze_run(&RunConfig::new(AppConfig::version(version)))
}

/// Analyzes all four stock versions, in evolution order.
pub fn analyze_all_versions() -> Vec<Report> {
    Version::ALL.iter().map(|&v| analyze_version(v)).collect()
}

/// The hook [`raysim::run::preflight`] calls: full analysis, flattened
/// into counts plus rendered text.
pub fn preflight_hook(cfg: &RunConfig) -> PreflightSummary {
    let report = analyze_run(cfg);
    PreflightSummary {
        errors: report.errors(),
        warnings: report.warnings(),
        rendered: report.render(),
    }
}

/// A policy that analyzes, reports, and runs anyway.
pub fn warn_policy() -> PreflightPolicy {
    PreflightPolicy::Warn(preflight_hook)
}

/// A policy that refuses to run configurations with errors.
pub fn deny_policy() -> PreflightPolicy {
    PreflightPolicy::Deny(preflight_hook)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_version_reports_match_the_paper_story() {
        let reports = analyze_all_versions();
        assert_eq!(reports.len(), 4);
        // V1: pseudo-synchronous in both directions, no errors.
        assert!(!reports[0].has_errors());
        assert!(reports[0].warnings() >= 2);
        // V2: the result path still warns.
        assert!(!reports[1].has_errors());
        assert_eq!(reports[1].warnings(), 1);
        // V3: the queue bug, found statically.
        assert!(reports[2].has_errors());
        assert!(reports[2].contains("AN-PROTO-002"));
        // V4: no errors, no warnings.
        assert!(!reports[3].has_errors());
        assert_eq!(reports[3].warnings(), 0);
    }

    #[test]
    fn hook_flattens_counts() {
        let cfg = RunConfig::new(AppConfig::version(Version::V3));
        let summary = preflight_hook(&cfg);
        assert!(summary.errors >= 1);
        assert!(summary.rendered.contains("AN-PROTO-002"));
        assert!(summary.rendered.contains("error["));
    }

    #[test]
    fn warn_policy_lets_v3_run_to_the_preflight_stage() {
        let mut cfg = RunConfig::new(AppConfig::version(Version::V3));
        cfg.preflight = warn_policy();
        // The analysis itself must not panic; raysim::run::preflight
        // returns the summary under Warn even with errors present.
        let summary = raysim::run::preflight(&cfg).expect("policy is on");
        assert!(summary.errors >= 1);
    }

    #[test]
    #[should_panic(expected = "refusing to run")]
    fn deny_policy_stops_v3() {
        let mut cfg = RunConfig::new(AppConfig::version(Version::V3));
        cfg.preflight = deny_policy();
        raysim::run::preflight(&cfg);
    }

    #[test]
    fn deny_policy_passes_v4() {
        let mut cfg = RunConfig::new(AppConfig::version(Version::V4));
        cfg.preflight = deny_policy();
        let summary = raysim::run::preflight(&cfg).expect("policy is on");
        assert_eq!(summary.errors, 0);
    }
}
