//! Cross-validation of the happens-before engine against real runs —
//! and against a seeded fault.
//!
//! Every ordering the model checker proves must hold in every trace the
//! monitor records: small V1 and V4 measurements are executed and
//! validated (zero violations expected). Then a violation is *injected*
//! — one `WORK_BEGIN` event is retimed to precede the `SEND_JOBS_BEGIN`
//! of its own job — and the engine must catch exactly that class of
//! corruption with `AN-HB-001`.

use analyzer::{proven_orders, validate_orders};
use des::time::SimTime;
use raysim::config::{AppConfig, SceneKind, Version};
use raysim::run::{run, RunConfig};
use raysim::tokens;
use simple::{Event, Trace};

fn measured_trace(version: Version) -> (Trace, AppConfig) {
    let mut app = AppConfig::version(version);
    app.servants = 3;
    app.scene = SceneKind::Quickstart;
    app.width = 8;
    app.height = 8;
    let mut cfg = RunConfig::new(app.clone());
    cfg.horizon = SimTime::from_secs(3_600);
    let result = run(cfg);
    assert!(result.completed(), "fixture run must complete");
    (result.trace, app)
}

#[test]
fn recorded_traces_respect_every_proven_order() {
    for version in [Version::V1, Version::V4] {
        let (trace, app) = measured_trace(version);
        let report = validate_orders(&trace, &proven_orders(&app));
        assert!(!report.has_errors(), "{version}: {}", report.render());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.message.contains("all proven orderings hold")),
            "{version}: {}",
            report.render()
        );
    }
}

#[test]
fn injected_ordering_inversion_is_caught() {
    let (trace, app) = measured_trace(Version::V4);
    let orders = proven_orders(&app);

    // Find one (SEND_JOBS_BEGIN, WORK_BEGIN) pair of the same job and
    // retime the work start to precede the send — the corruption a
    // recorder with a miscalibrated clock would produce.
    let events: Vec<Event> = trace.events().to_vec();
    let send = events
        .iter()
        .find(|e| e.token.value() == tokens::SEND_JOBS_BEGIN)
        .copied()
        .expect("trace has job sends");
    let victim = events
        .iter()
        .position(|e| e.token.value() == tokens::WORK_BEGIN && e.param == send.param)
        .expect("the sent job starts work");

    let mut corrupted = events;
    let e = corrupted[victim];
    corrupted[victim] = Event::new(
        send.ts_ns.saturating_sub(1_000),
        e.channel,
        e.token.value(),
        e.param.value(),
    );

    let report = validate_orders(&Trace::from_unsorted(corrupted), &orders);
    assert!(report.has_errors(), "{}", report.render());
    let finding = report
        .findings
        .iter()
        .find(|f| f.code == "AN-HB-001")
        .expect("ordering violation diagnosed");
    assert!(
        finding.message.contains("job-sent-before-work"),
        "{}",
        finding.message
    );
}
