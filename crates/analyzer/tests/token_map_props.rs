//! Property tests for the token-map lints.
//!
//! Well-formed maps lint clean; targeted mutations — dropping the begin
//! of an explicitly-ended activity, duplicating a token id — always
//! produce the matching `AN-TOKEN-*` finding.

use analyzer::token_lints::{MapKind, TokenDecl, TokenMap};
use proptest::prelude::*;

/// A pool of distinct activity base names spread over three groups.
const ACTIVITIES: [(&str, &str); 9] = [
    ("Distribute Jobs", "Master"),
    ("Send Jobs", "Master"),
    ("Write Pixels", "Master"),
    ("Work", "Servant"),
    ("Send Results", "Servant"),
    ("Wait for Job", "Servant"),
    ("Wake Up", "Agent"),
    ("Forward Message", "Agent"),
    ("Sleep", "Agent"),
];

/// Builds a well-formed map: `picked` selects activities from the pool,
/// `ended` marks which of them also declare an explicit `… End` token.
/// Token ids are assigned sequentially, so they are unique and inside
/// the application range by construction.
fn well_formed(picked: &[usize], ended: &[bool]) -> TokenMap {
    let mut map = TokenMap::new("generated", MapKind::Application);
    let mut next_id = 0x0100u16;
    for (slot, &idx) in picked.iter().enumerate() {
        let (name, group) = ACTIVITIES[idx];
        map.decls.push(TokenDecl::new(next_id, name, group));
        next_id += 1;
        if ended.get(slot).copied().unwrap_or(false) {
            map.decls
                .push(TokenDecl::new(next_id, format!("{name} End"), group));
            next_id += 1;
        }
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Well-formed maps produce zero findings.
    #[test]
    fn well_formed_maps_lint_clean(
        picked in proptest::sample::subsequence((0..ACTIVITIES.len()).collect::<Vec<_>>(), 5),
        ended in proptest::collection::vec(proptest::arbitrary::any::<bool>(), 5),
    ) {
        let map = well_formed(&picked, &ended);
        let report = map.lint();
        prop_assert!(report.is_clean(), "unexpected findings:\n{}", report.render());
    }

    /// Dropping the begin declaration of an explicitly-ended activity
    /// always yields AN-TOKEN-001, and nothing harsher.
    #[test]
    fn dropped_begin_yields_unmatched_end(
        picked in proptest::sample::subsequence((0..ACTIVITIES.len()).collect::<Vec<_>>(), 4),
        victim in 0usize..4,
    ) {
        // Every picked activity gets an end pair; then one begin is
        // deleted, orphaning its end token.
        let mut map = well_formed(&picked, &[true, true, true, true]);
        let (victim_name, _) = ACTIVITIES[picked[victim]];
        map.decls.retain(|d| d.name != victim_name);
        let report = map.lint();
        prop_assert!(
            report.contains("AN-TOKEN-001"),
            "expected AN-TOKEN-001 after dropping \"{victim_name}\":\n{}",
            report.render()
        );
        prop_assert_eq!(report.errors(), 1);
    }

    /// Re-declaring any existing id under a fresh name always yields
    /// AN-TOKEN-002.
    #[test]
    fn duplicated_id_yields_collision(
        picked in proptest::sample::subsequence((0..ACTIVITIES.len()).collect::<Vec<_>>(), 5),
        ended in proptest::collection::vec(proptest::arbitrary::any::<bool>(), 5),
        victim in 0usize..5,
    ) {
        let mut map = well_formed(&picked, &ended);
        let stolen = map.decls[victim % map.decls.len()].token;
        map.decls.push(TokenDecl::new(stolen, "Imposter", "Master"));
        let report = map.lint();
        prop_assert!(
            report.contains("AN-TOKEN-002"),
            "expected AN-TOKEN-002 for id 0x{stolen:04X}:\n{}",
            report.render()
        );
        prop_assert!(report.has_errors());
    }

    /// Lints never panic on arbitrary declarations, and an error-free
    /// report stays error-free under permutation of declarations.
    #[test]
    fn lint_is_total_and_order_insensitive(
        tokens in proptest::collection::vec(proptest::arbitrary::any::<u16>(), 1..8),
    ) {
        let decls: Vec<TokenDecl> = tokens
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let (name, group) = ACTIVITIES[i % ACTIVITIES.len()];
                TokenDecl::new(t, name, group)
            })
            .collect();
        let mut map = TokenMap::new("fuzzed", MapKind::Application);
        map.decls = decls;
        let forward = map.lint();
        map.decls.reverse();
        let backward = map.lint();
        prop_assert_eq!(forward.errors(), backward.errors());
        prop_assert_eq!(forward.warnings(), backward.warnings());
    }
}
