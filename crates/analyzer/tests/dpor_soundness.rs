//! Differential soundness tests for the partial-order reductions.
//!
//! Every reduced explorer in the analyzer ships with an unreduced
//! twin (`explore_full`) that expands every enabled transition from
//! every state. These tests pin the contract that makes the reductions
//! trustworthy: on any configuration small enough to close both ways,
//! the reduced exploration must reach exactly the same verdict as the
//! full one — same deadlock reachability, same peak concurrency, same
//! invariant results, same effective-synchrony outcome, same set of
//! race classes — while visiting no more states.

use analyzer::model::flow::FlowModel;
use analyzer::model::sched::SchedModel;
use analyzer::race::RaceModel;
use analyzer::OrderScope;
use proptest::prelude::*;

/// A witness/counterexample path must be renderable: non-empty steps,
/// one line each.
fn assert_path_well_formed(path: &[String]) {
    for (i, step) in path.iter().enumerate() {
        assert!(!step.trim().is_empty(), "blank step at index {i}");
        assert!(!step.contains('\n'), "multi-line step at index {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The flow model's send-priority reduction agrees with full
    /// exploration on every randomized small configuration.
    #[test]
    fn flow_reduction_agrees_with_full_exploration(
        servants in 1u32..=3,
        window in 1u32..=3,
        bundle in 1u32..=5,
        capacity in 1u32..=24,
        chunk in 1u32..=8,
        eager in any::<bool>(),
    ) {
        let model = FlowModel::from_protocol(servants, window, bundle, capacity, chunk, eager);
        let reduced = model.explore(3_000_000);
        let full = model.explore_full(3_000_000);
        prop_assert!(!reduced.bounded, "reduced exploration must close: {} states", reduced.states);
        prop_assert!(!full.bounded, "full exploration must close: {} states", full.states);
        prop_assert_eq!(reduced.deadlock.is_some(), full.deadlock.is_some());
        prop_assert_eq!(reduced.max_outstanding, full.max_outstanding);
        prop_assert_eq!(reduced.credits_conserved, full.credits_conserved);
        prop_assert_eq!(reduced.capacity_respected, full.capacity_respected);
        prop_assert_eq!(reduced.completion_reachable, full.completion_reachable);
        prop_assert!(reduced.states <= full.states,
            "reduction grew the space: {} > {}", reduced.states, full.states);
        if let Some(path) = &reduced.deadlock {
            assert_path_well_formed(path);
        }
        assert_path_well_formed(&reduced.peak_witness);
    }
}

/// The scheduler model's singleton-ample reduction agrees with full
/// exploration on every version shape, both scheduler variants.
#[test]
fn sched_reduction_agrees_with_full_exploration() {
    for (ma, sa) in [(false, false), (true, false), (true, true)] {
        for preemptive in [false, true] {
            let model = SchedModel {
                master_agents: ma,
                servant_agents: sa,
                preemptive,
            };
            let reduced = model.explore(4_000_000);
            let full = model.explore_full(4_000_000);
            let ctx = format!("shape ({ma},{sa}) preemptive={preemptive}");
            assert!(!reduced.bounded && !full.bounded, "{ctx}");
            assert_eq!(
                reduced.effectively_synchronous(),
                full.effectively_synchronous(),
                "{ctx}"
            );
            assert_eq!(
                reduced.sync1_violation.is_some(),
                full.sync1_violation.is_some(),
                "{ctx}"
            );
            assert_eq!(
                reduced.sync2_violation.is_some(),
                full.sync2_violation.is_some(),
                "{ctx}"
            );
            assert_eq!(
                reduced.completion_reachable, full.completion_reachable,
                "{ctx}"
            );
            assert_eq!(reduced.no_stuck_states, full.no_stuck_states, "{ctx}");
            assert!(reduced.states <= full.states, "{ctx}");
            if let Some(path) = &reduced.sync2_violation {
                assert_path_well_formed(path);
            }
        }
    }
}

/// The race explorer's sleep sets + ample reduction finds exactly the
/// same race classes as full exploration on every shape the analyzer
/// ships, and never more states.
#[test]
fn race_reduction_agrees_with_full_exploration() {
    let mut models: Vec<(String, RaceModel)> = Vec::new();
    for (ma, sa) in [(false, false), (true, false), (true, true)] {
        for preemptive in [false, true] {
            models.push((
                format!("version ({ma},{sa}) preemptive={preemptive}"),
                RaceModel::version_shape(ma, sa, preemptive),
            ));
        }
    }
    for preemptive in [false, true] {
        models.push((
            format!("spmd preemptive={preemptive}"),
            RaceModel::spmd_shape(preemptive, OrderScope::Global),
        ));
    }
    for (ctx, model) in models {
        let reduced = model.explore(10_000_000);
        let full = model.explore_full(10_000_000);
        assert!(!reduced.bounded && !full.bounded, "{ctx}");
        let codes = |v: &analyzer::RaceVerdict| {
            let mut c: Vec<&str> = v.witnesses.iter().map(|w| w.code).collect();
            c.sort_unstable();
            c
        };
        assert_eq!(codes(&reduced), codes(&full), "{ctx}");
        assert_eq!(
            reduced.completion_reachable, full.completion_reachable,
            "{ctx}"
        );
        assert!(reduced.states <= full.states, "{ctx}");
        // Every reduced witness is a real interleaving: its schedule
        // replays and refires the same race class.
        for w in &reduced.witnesses {
            assert_path_well_formed(&w.steps);
            let fired = model
                .replay(&w.schedule)
                .unwrap_or_else(|| panic!("{ctx}: {} witness must replay", w.code));
            assert!(
                fired.contains(&w.code),
                "{ctx}: {} replay fired {fired:?}",
                w.code
            );
        }
    }
}

/// Seeded regression for the V3 witness path: the reduced flow
/// exploration of the paper's version-3 configuration must keep
/// producing the same deterministic, well-formed path to the collapsed
/// concurrency ceiling of 15 jobs.
#[test]
fn v3_peak_witness_path_is_stable() {
    let app = raysim::config::AppConfig::version(raysim::config::Version::V3);
    let model = FlowModel::from_protocol(
        u32::from(app.servants),
        app.window,
        app.bundle_size,
        app.pixel_queue_capacity,
        app.write_chunk,
        app.eager_writeback,
    );
    let first = model.explore(2_000_000);
    let second = model.explore(2_000_000);
    assert!(!first.bounded);
    assert_eq!(first.max_outstanding, 15, "the V3 collapse ceiling");
    assert!(!first.peak_witness.is_empty());
    assert_path_well_formed(&first.peak_witness);
    // BFS over a deterministic successor order: the witness is
    // reproducible run to run.
    assert_eq!(first.peak_witness, second.peak_witness);
    assert_eq!(first.states, second.states);
    // The urgent-send closure leaves its fingerprint: the path reaches
    // the peak through at least one folded send burst.
    assert!(
        first
            .peak_witness
            .iter()
            .any(|l| l.contains("without yielding")),
        "{:?}",
        first.peak_witness
    );
}
