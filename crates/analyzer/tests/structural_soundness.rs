//! Differential soundness tests for the structural (Petri-net) layer.
//!
//! The structural layer's claims are algebraic — P-invariants,
//! siphon/trap marking, synthesized capacities — and hold for *any*
//! shape size. These tests pin them against the exhaustive layers on
//! configurations small enough to close both ways: whatever the flow
//! and exact explorers observe by enumeration, the structural
//! certificates must predict. And on a shape too large for the flow
//! explorer's pre-flight budget, the structural layer must still
//! deliver full proofs — that scaling gap is the layer's reason to
//! exist.

use analyzer::model::exact::ExactModel;
use analyzer::model::flow::FlowModel;
use analyzer::structural::{analyze_protocol_net, DeadlockVerdict, ProtocolNet};
use analyzer::{analyze_structural, check_app, ModelBudget};
use proptest::prelude::*;
use raysim::config::{AppConfig, Version};

/// Flow-model state budget comfortably above every stock shape's
/// closure point (the pre-flight bound closes all four versions).
const FLOW_BUDGET: usize = 2_000_000;

/// Structural analysis of the protocol constants, same pixel-unit
/// signature as [`FlowModel::from_protocol`].
fn structural(
    servants: u32,
    window: u32,
    bundle: u32,
    capacity: u32,
    chunk: u32,
    eager: bool,
) -> analyzer::StructuralVerdict {
    analyze_protocol_net(ProtocolNet::from_protocol(
        servants, window, bundle, capacity, chunk, eager,
    ))
}

#[test]
fn structural_agrees_with_flow_on_every_stock_shape() {
    for version in Version::ALL {
        let app = AppConfig::version(version);
        let st = analyze_structural(&app);
        let flow = FlowModel::from_protocol(
            u32::from(app.servants),
            app.window,
            app.bundle_size,
            app.pixel_queue_capacity,
            app.write_chunk,
            app.eager_writeback,
        )
        .explore(FLOW_BUDGET);
        assert!(!flow.bounded, "{version}: raise FLOW_BUDGET");

        // The enumerated invariants match the certificates.
        assert!(flow.credits_conserved, "{version}");
        assert!(flow.capacity_respected, "{version}");
        let conservation = st.conservation.as_ref().expect("conservation certificate");
        assert_eq!(conservation.constant, st.net.credits, "{version}");
        assert!(st.queue_bound.is_some(), "{version}");

        // The enumerated peak is exactly the structural bound.
        assert_eq!(
            u64::from(flow.max_outstanding),
            st.peak_concurrency,
            "{version}: flow peak vs structural min(credits, capacity_b)"
        );
        assert_eq!(
            st.window_collapse,
            st.peak_concurrency < st.intended_concurrency,
            "{version}"
        );
        assert_eq!(st.window_collapse, version == Version::V3, "{version}");

        // Stock shapes are eager: both layers agree on deadlock freedom.
        assert_eq!(st.deadlock, DeadlockVerdict::Free, "{version}");
        assert!(flow.deadlock.is_none(), "{version}");
        assert!(flow.completion_reachable, "{version}");
    }
}

#[test]
fn v3_synthesized_minimum_is_2250_and_restores_full_concurrency() {
    let app = AppConfig::version(Version::V3);
    let st = analyze_structural(&app);
    assert!(st.window_collapse);
    assert_eq!(st.min_capacity, 2_250, "15 servants × 3 credits × 50 rays");

    // One pixel short of the synthesized minimum still collapses…
    let short = structural(15, 3, 50, 2_249, 64, true);
    assert!(short.window_collapse, "2249 must still be unsafe");

    // …while the minimum itself restores the full window, confirmed by
    // enumeration: the flow explorer reaches all 45 credits in flight.
    let fixed = structural(15, 3, 50, 2_250, 64, true);
    assert!(!fixed.window_collapse);
    assert_eq!(fixed.peak_concurrency, 45);
    let flow = FlowModel::from_protocol(15, 3, 50, 2_250, 64, true).explore(FLOW_BUDGET);
    assert!(!flow.bounded);
    assert_eq!(flow.max_outstanding, 45);
}

#[test]
fn ladder_shape_past_the_flow_budget_is_fully_proven_structurally() {
    // The scaling sweep's 64-node rung at paper scale: 63 servants ×
    // window 3 = 189 credits, 32-ray bundles, the stock 16 384-pixel
    // queue (512 bundles). The flow explorer cannot close this under
    // the pre-flight budget — its state count grows with
    // credits × capacity — but every structural proof still lands.
    let mut app = AppConfig::version(Version::V4);
    app.servants = 63;
    app.bundle_size = 32;
    app.write_chunk = 64;

    let budget = ModelBudget::preflight();
    let flow = FlowModel::from_protocol(
        u32::from(app.servants),
        app.window,
        app.bundle_size,
        app.pixel_queue_capacity,
        app.write_chunk,
        app.eager_writeback,
    )
    .explore(budget.flow_states);
    assert!(
        flow.bounded,
        "the ladder shape closed under the pre-flight budget ({} states) — \
         grow the shape or the point of this test is gone",
        flow.states
    );

    let st = analyze_structural(&app);
    assert_eq!(st.intended_concurrency, 189);
    assert!(st.conservation.is_some());
    assert!(st.queue_bound.is_some());
    assert_eq!(st.deadlock, DeadlockVerdict::Free);
    assert!(!st.window_collapse);
    assert_eq!(
        st.peak_concurrency, 189,
        "512 bundle slots cover 189 credits"
    );
    assert_eq!(st.min_capacity, 189 * 32);

    // And the layered report reflects the closure: the budget note
    // (AN-MODEL-005) names what stays partial and credits the
    // structural layer with what it closed, while deadlock freedom and
    // conservation are reported as proven rather than merely unrefuted.
    let report = check_app(&app, &budget);
    let budget_note = report
        .findings
        .iter()
        .find(|f| f.code == "AN-MODEL-005")
        .expect("bounded exploration must surface AN-MODEL-005");
    assert!(
        budget_note
            .notes
            .iter()
            .any(|n| n.contains("closed structurally")),
        "{}",
        report.render()
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code == "AN-MODEL-001" && f.message.contains("proven structurally")),
        "{}",
        report.render()
    );
    assert_eq!(report.errors(), 0, "{}", report.render());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On random small bundle-aligned shapes, the exact (pixel-level)
    /// explorer can never contradict a structural certificate: the
    /// enumerated invariants hold, the enumerated peak respects the
    /// algebraic bound, and the deadlock classification is sound in
    /// both directions the algebra claims.
    ///
    /// Shapes are bundle-aligned (capacity, chunk and image are whole
    /// bundles) because the exact model's short trailing jobs can pack
    /// the queue tighter than bundle-rounded arithmetic — the rounding
    /// is the flow abstraction's, which the structural layer
    /// deliberately mirrors.
    #[test]
    fn exact_exploration_never_contradicts_the_certificates(
        servants in 1u32..=3,
        window in 1u32..=2,
        bundle in 1u32..=4,
        capacity_b in 1u32..=4,
        chunk_b in 1u32..=3,
        total_b in 1u32..=6,
        eager in any::<bool>(),
    ) {
        let capacity = capacity_b * bundle;
        let chunk = chunk_b * bundle;
        let total = total_b * bundle;
        let st = structural(servants, window, bundle, capacity, chunk, eager);
        let exact = ExactModel {
            total,
            capacity,
            bundle,
            chunk,
            credits: servants * window,
            eager,
        }
        .explore(1_000_000);
        prop_assert!(!exact.bounded, "exact exploration must close");

        // Conservation: the certificate's constant is the credit total
        // and the enumeration never exceeds it.
        let conservation = st.conservation.as_ref().expect("conservation certificate");
        prop_assert_eq!(conservation.constant, st.net.credits);
        prop_assert!(exact.invariants_ok);
        prop_assert!(u64::from(exact.max_outstanding) <= st.net.credits);

        // Queue bound: outstanding bundles never exceed the structural
        // peak (bundle-aligned, so pixel packing cannot beat it).
        prop_assert!(u64::from(exact.max_outstanding) <= st.peak_concurrency);

        // Deadlock soundness. `Free` must mean no reachable wedge;
        // `Starved` (strict write-back whose chunk exceeds the queue)
        // must mean completion is unreachable.
        match st.deadlock {
            DeadlockVerdict::Free => {
                prop_assert!(exact.deadlock_possible.is_none(),
                    "structurally-proven freedom contradicted by {:?}",
                    exact.deadlock_possible);
                prop_assert!(exact.completion_reachable);
            }
            DeadlockVerdict::Starved { .. } => {
                prop_assert!(!exact.completion_reachable,
                    "structurally-proven starvation, yet the exact model completes");
            }
            DeadlockVerdict::Unknown => {}
        }

        // And the flow twin (same rounding) lands exactly on the
        // structural peak.
        let flow = FlowModel::from_protocol(servants, window, bundle, capacity, chunk, eager)
            .explore(1_000_000);
        prop_assert!(!flow.bounded);
        prop_assert_eq!(u64::from(flow.max_outstanding), st.peak_concurrency);
    }
}
