//! Acceptance tests: the three headline static detections.
//!
//! Each reproduces, without executing any simulation, a defect the
//! paper (or its reproduction) could only observe dynamically.

use analyzer::token_lints::{MapKind, TokenMap};
use analyzer::{analyze_run, analyze_version, Severity};
use raysim::config::{AppConfig, Version};
use raysim::run::RunConfig;

/// (a) The version-3 pixel-queue bug, in the stock configuration.
#[test]
fn v3_pixel_queue_bug_is_found_statically() {
    let report = analyze_version(Version::V3);
    let finding = report
        .with_code("AN-PROTO-002")
        .next()
        .unwrap_or_else(|| panic!("AN-PROTO-002 missing:\n{}", report.render()));
    assert_eq!(finding.severity, Severity::Error);
    assert!(finding.span.contains("pixel_queue_capacity = 768"));
    assert!(finding.notes.iter().any(|n| n.contains("2250")));
    // The fixed version 4 does not trigger it.
    assert!(!analyze_version(Version::V4).contains("AN-PROTO-002"));
}

/// (b) An unbalanced begin/end token map.
#[test]
fn unbalanced_token_map_is_found() {
    let mut map = TokenMap::raysim_application();
    // Delete the "Send Jobs" begin declaration, leaving its end token
    // orphaned — the registry itself accepts this silently.
    map.decls.retain(|d| d.name != "Send Jobs");
    let report = map.lint();
    let finding = report
        .with_code("AN-TOKEN-001")
        .next()
        .unwrap_or_else(|| panic!("AN-TOKEN-001 missing:\n{}", report.render()));
    assert_eq!(finding.severity, Severity::Error);
    assert!(finding.message.contains("Send Jobs End"));
    // The intact map is balanced.
    assert!(!TokenMap::raysim_application()
        .lint()
        .contains("AN-TOKEN-001"));
}

/// (c) Predicted FIFO overload for an over-instrumented configuration.
#[test]
fn over_instrumented_config_predicts_event_loss() {
    let mut app = AppConfig::version(Version::V1);
    app.instrument_send_results = true;
    app.oversample = 2;
    let mut cfg = RunConfig::new(app);
    // All sixteen display channels multiplexed onto one event recorder.
    cfg.zm4.streams_per_recorder = 16;
    let report = analyze_run(&cfg);
    let finding = report
        .with_code("AN-RATE-001")
        .next()
        .unwrap_or_else(|| panic!("AN-RATE-001 missing:\n{}", report.render()));
    assert_eq!(finding.severity, Severity::Error);
    assert!(finding.message.contains("loss"));
    // The stock recorder assignment absorbs the same application.
    let stock = analyze_run(&RunConfig::new(AppConfig::version(Version::V1)));
    assert!(!stock.contains("AN-RATE-001"), "{}", stock.render());
}

/// The report renders rustc-style and the CLI-facing summary counts add
/// up across all four stock versions.
#[test]
fn stock_version_reports_render() {
    for version in Version::ALL {
        let report = analyze_version(version);
        let rendered = report.render();
        assert!(rendered.contains("analysis of"), "{rendered}");
        for finding in &report.findings {
            assert!(rendered.contains(finding.code));
        }
        // Only V3 carries an error in stock form.
        assert_eq!(report.has_errors(), version == Version::V3, "{rendered}");
    }
}

/// A synthetic kernel map below the reserved base is caught next to an
/// application map that strays above it.
#[test]
fn reserved_range_violations_in_both_directions() {
    let app = TokenMap::from_points("app", MapKind::Application, &[(0xF123, "Work", "Servant")]);
    assert!(app.lint().has_errors());
    let kernel = TokenMap::from_points("k", MapKind::Kernel, &[(0x0042, "Dispatch", "Kernel")]);
    let report = kernel.lint();
    assert!(report.contains("AN-TOKEN-003"));
    assert!(!report.has_errors());
}
