//! Differential test: the pixel-exact model checker against the
//! simulator.
//!
//! For small randomized configurations the exact model's deadlock
//! verdicts must agree with actually executing the run:
//!
//! * no reachable deadlock (closed exploration) ⟹ the simulation
//!   completes;
//! * every schedule deadlocks (*inevitable*) ⟹ the simulation
//!   deadlocks;
//! * the simulation deadlocks ⟹ the model found a deadlock reachable.
//!
//! The middle ground — deadlock *possible* but not inevitable — is
//! schedule-dependent and either simulator outcome is consistent with
//! it. Bounded explorations make no universal claim, so those cases are
//! skipped (the budget is far above what these shapes need).

use analyzer::model::exact::ExactModel;
use des::time::SimTime;
use proptest::prelude::*;
use raysim::config::{AppConfig, SceneKind, Version};
use raysim::run::{run, RunConfig};
use suprenum::RunEnd;

fn small_app(
    side: u32,
    servants: u16,
    window: u32,
    bundle: u32,
    chunk: u32,
    capacity: u32,
    eager: bool,
) -> AppConfig {
    let mut app = AppConfig::version(Version::V4);
    app.servants = servants;
    app.window = window;
    app.bundle_size = bundle;
    app.write_chunk = chunk;
    // The queue must hold at least one bundle (config invariant).
    app.pixel_queue_capacity = capacity.max(bundle);
    app.eager_writeback = eager;
    app.scene = SceneKind::Quickstart;
    app.width = side;
    app.height = side;
    app.oversample = 1;
    app
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_model_deadlock_verdicts_agree_with_the_simulator(
        side in 2u32..=6,
        servants in 1u16..=2,
        window in 1u32..=2,
        bundle in 1u32..=6,
        chunk in 1u32..=10,
        capacity in 4u32..=40,
        eager in any::<bool>(),
    ) {
        let app = small_app(side, servants, window, bundle, chunk, capacity, eager);
        let model = ExactModel {
            total: app.total_pixels(),
            capacity: app.pixel_queue_capacity,
            bundle: app.bundle_size,
            chunk: app.write_chunk,
            credits: u32::from(app.servants) * app.window,
            eager: app.eager_writeback,
        };
        let verdict = model.explore(500_000);
        prop_assume!(!verdict.bounded);

        let mut cfg = RunConfig::new(app);
        cfg.horizon = SimTime::from_secs(3_600);
        let result = run(cfg);
        let reason = result.outcome.reason;
        prop_assert!(
            reason == RunEnd::Completed || reason == RunEnd::Deadlock,
            "unexpected outcome {reason:?} (horizon too small?)"
        );

        if verdict.deadlock_possible.is_none() {
            prop_assert!(
                reason == RunEnd::Completed,
                "model proved deadlock-free but the simulator ended with {reason:?}"
            );
        }
        if verdict.deadlock_inevitable {
            prop_assert!(
                reason == RunEnd::Deadlock,
                "model proved every schedule deadlocks but the simulator ended with \
                 {reason:?}"
            );
        }
        if reason == RunEnd::Deadlock {
            prop_assert!(
                verdict.deadlock_possible.is_some(),
                "the simulator deadlocked but the model found no reachable deadlock \
                 ({} states)",
                verdict.states
            );
        }
    }
}
