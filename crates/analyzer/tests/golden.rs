//! Golden snapshots of the V1–V4 analysis output, in both machine
//! formats.
//!
//! The JSON and SARIF renderings of each stock version's full analysis
//! (pre-flight model budget — deterministic, closed for V3/V4, bounded
//! at a fixed state count for V1/V2) are pinned under `tests/golden/`.
//! Any change to diagnostics — new findings, changed codes, reworded
//! messages, different state counts — shows up as a reviewable golden
//! diff instead of a silent output drift.
//!
//! Regenerate with `BLESS=1 cargo test -p analyzer --test golden`.

use std::path::PathBuf;

use analyzer::{analyze_version, check_races, check_structural, report_json, sarif, ModelBudget};
use raysim::config::{AppConfig, Version};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with BLESS=1", path.display()));
    assert_eq!(
        actual, expected,
        "analysis output for {name} drifted from its golden; if the change is \
         intentional, regenerate with BLESS=1"
    );
}

#[test]
fn stock_version_reports_match_their_goldens() {
    for (i, version) in Version::ALL.iter().enumerate() {
        let report = analyze_version(*version);
        check(&format!("v{}.json", i + 1), &report_json(&report));
        check(
            &format!("v{}.sarif", i + 1),
            &sarif(std::slice::from_ref(&report)),
        );
    }
}

#[test]
fn structural_reports_match_their_goldens() {
    // The `analyze --structural` section: P-invariants, siphons and the
    // synthesized minimal capacity are pure linear algebra over the
    // protocol net — no state budget, no exploration order, fully
    // deterministic.
    for (i, version) in Version::ALL.iter().enumerate() {
        let report = check_structural(&AppConfig::version(*version));
        check(
            &format!("v{}_structural.json", i + 1),
            &report_json(&report),
        );
        check(
            &format!("v{}_structural.sarif", i + 1),
            &sarif(std::slice::from_ref(&report)),
        );
    }
}

#[test]
fn preemptive_race_reports_match_their_goldens() {
    // The `analyze --races --preemptive` section: the DPOR explorer's
    // witnesses are produced by a DFS over a fixed successor order, so
    // the whole report — including every witness interleaving — is
    // deterministic and snapshot-worthy.
    let budget = ModelBudget::full();
    for (i, version) in Version::ALL.iter().enumerate() {
        let report = check_races(&AppConfig::version(*version), &budget, true);
        check(&format!("v{}_races.json", i + 1), &report_json(&report));
        check(
            &format!("v{}_races.sarif", i + 1),
            &sarif(std::slice::from_ref(&report)),
        );
    }
}
