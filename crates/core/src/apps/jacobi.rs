//! SPMD Jacobi relaxation — now a stock [`pipeline`] workload.
//!
//! The implementation lives in [`pipeline::jacobi`], where the solver
//! is the second workload of the workload-agnostic measurement
//! pipeline (the ray tracer being the first). This module re-exports
//! it so existing `suprenum_monitor::apps::jacobi` callers — the
//! `jacobi_spmd` example, the figure benchmarks — keep compiling
//! unchanged.

pub use pipeline::jacobi::*;
