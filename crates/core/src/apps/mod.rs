//! Additional instrumented applications demonstrating that the
//! monitoring toolkit is application-agnostic.

pub mod jacobi;
