//! One-call reproductions of every evaluation artifact in the paper.
//!
//! Each function runs the full pipeline — instrumented application on
//! the simulated SUPRENUM, probed by the simulated ZM4, evaluated
//! SIMPLE-style — and returns a structured result plus, where the paper
//! shows one, a rendered Gantt chart.
//!
//! Functions take a [`Scale`]: [`Scale::Paper`] uses the calibrated
//! image sizes the reported numbers were produced with; [`Scale::Quick`]
//! shrinks the workload for fast CI runs (the qualitative shape holds,
//! absolute percentages shift a little).

use des::time::{SimDuration, SimTime};
use hybridmon::MonitoringMode;
use raysim::analysis::{
    agent_tracks, master_track, servant_track, servant_utilization, servant_utilization_steady,
    work_phase,
};
use raysim::config::{AppConfig, SceneKind, Version};
use raysim::run::{run, RunConfig, RunResult};
use raysim::tokens;
use simple::{check_causality, state_durations, Gantt, GanttStyle, Trace};
use suprenum::{
    Action, Machine, MachineConfig, Message, NodeId, ProcCtx, Process, ProcessId, Resume, RunEnd,
};
use zm4::{ProbeSample, Zm4, Zm4Config};

pub use harness::sweeps::{self, Scale};
pub use harness::{default_workers, run_sweep, RunRecord, RunSpec, Sweep, SweepReport};

fn run_app(app: AppConfig, seed: u64) -> RunResult {
    let mut cfg = RunConfig::new(app);
    cfg.seed = seed;
    cfg.horizon = SimTime::from_secs(36_000);
    // Warn, never deny: the paper's measurements include configurations
    // the analyzer rightly flags (version 3's queue constant) — the bug
    // must execute to be measured.
    cfg.preflight = analyzer::warn_policy();
    let result = run(cfg);
    if let Err(e) = result.ensure_completed() {
        panic!("experiment run did not complete: {e}");
    }
    result
}

/// A measured-vs-paper utilization pair.
#[derive(Debug, Clone)]
pub struct UtilizationResult {
    /// Program version measured.
    pub version: Version,
    /// Mean servant utilization over the whole ray-tracing phase, in
    /// percent.
    pub measured_percent: f64,
    /// Mean servant utilization over the steady (pipeline-full) phase.
    pub steady_percent: f64,
    /// The paper's value.
    pub paper_percent: f64,
    /// Jobs processed.
    pub jobs: u64,
    /// Wall (simulated) end time of the run.
    pub end: SimTime,
}

fn utilization_of(result: &RunResult, app: &AppConfig) -> UtilizationResult {
    let servants = app.servants as u32;
    UtilizationResult {
        version: app.version,
        measured_percent: servant_utilization(&result.trace, servants).mean_percent(),
        steady_percent: servant_utilization_steady(&result.trace, servants).mean_percent(),
        paper_percent: app.version.paper_utilization_percent(),
        jobs: result.app_stats.jobs_sent,
        end: result.outcome.end,
    }
}

// ---------------------------------------------------------------------
// F7
// ---------------------------------------------------------------------

/// Result of the Figure 7 reproduction.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// ASCII Gantt chart of one steady-state window (master + servant).
    pub gantt_text: String,
    /// The same chart as SVG.
    pub gantt_svg: String,
    /// Servant utilization (the paper: "very good" on 2 processors).
    pub servant_utilization_percent: f64,
    /// Median gap between the master's Send Jobs→Wait transition and the
    /// servant's Work→Wait transition, in microseconds. Small values
    /// (communication latency, not work-scale) demonstrate the paper's
    /// finding that the two transitions are synchronized.
    pub median_coupling_gap_us: f64,
    /// Mean duration of the servant's Work activity, for comparison.
    pub mean_work_ms: f64,
    /// The merged trace.
    pub trace: Trace,
}

/// F7 — the behaviour of mailbox communication: version 1 on two
/// processors, Gantt chart of master and servant.
pub fn fig7_mailbox_gantt(seed: u64, scale: Scale) -> Fig7Result {
    let mut app = AppConfig::two_processor();
    app.width = scale.image(32, 12);
    app.height = app.width;
    let result = run_app(app.clone(), seed);
    let trace = &result.trace;
    let (from, to) = work_phase(trace).expect("run has a work phase");

    // A mid-run window of about eight master cycles, like the paper's
    // 80 ms excerpt.
    let mid = from + (to - from) / 2;
    let servant = servant_track(trace, 1, to);
    let mean_work_ns = state_durations(&servant, "Work").mean() * 1e9;
    let window = (mean_work_ns as u64 + 10_000_000) * 8;
    let (w0, w1) = (mid, (mid + window).min(to));
    let tracks = vec![master_track(trace, to), servant.clone()];
    let gantt = Gantt::new(tracks, w0, w1).with_style(GanttStyle {
        width: 100,
        ..GanttStyle::default()
    });

    // Coupling: the master leaves its blocked send (Send Jobs End) the
    // moment the servant relinquishes the CPU at the end of Work; the
    // servant's observable Work→Wait-for-Job transition follows after
    // its own (uninstrumented in V1) result send. For every *blocked*
    // send — duration on the scale of the servant's work — measure the
    // distance to the servant's next Work→Wait transition.
    let mut send_begin: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    let mut blocked_ends: Vec<u64> = Vec::new();
    let work_exits: Vec<u64> = trace
        .events()
        .iter()
        .filter(|e| e.channel == 1 && e.token.value() == tokens::WAIT_JOB_BEGIN)
        .map(|e| e.ts_ns)
        .collect();
    for e in trace.events() {
        match e.token.value() {
            t if t == tokens::SEND_JOBS_BEGIN => {
                send_begin.insert(e.param.value(), e.ts_ns);
            }
            t if t == tokens::SEND_JOBS_END => {
                if let Some(&b) = send_begin.get(&e.param.value()) {
                    if e.ts_ns - b > 5_000_000 {
                        blocked_ends.push(e.ts_ns);
                    }
                }
            }
            _ => {}
        }
    }
    let mut gaps: Vec<u64> = blocked_ends
        .iter()
        .filter_map(|&t| {
            let idx = work_exits.partition_point(|&w| w < t);
            work_exits.get(idx).map(|&w| w - t)
        })
        .collect();
    gaps.sort_unstable();
    let median_gap_ns = gaps.get(gaps.len() / 2).copied().unwrap_or(0);

    Fig7Result {
        gantt_text: gantt.render_text(),
        gantt_svg: gantt.render_svg(),
        servant_utilization_percent: servant_utilization(trace, 1).mean_percent(),
        median_coupling_gap_us: median_gap_ns as f64 / 1e3,
        mean_work_ms: mean_work_ns / 1e6,
        trace: result.trace,
    }
}

// ---------------------------------------------------------------------
// F8 / F10 / E1
// ---------------------------------------------------------------------

/// F8 — servant utilization under mailbox communication on 16
/// processors (paper: ≈15 %).
pub fn fig8_mailbox_utilization(seed: u64, scale: Scale) -> UtilizationResult {
    let mut app = AppConfig::version(Version::V1);
    app.width = scale.image(128, 32);
    app.height = app.width;
    let result = run_app(app.clone(), seed);
    utilization_of(&result, &app)
}

/// F10 — the whole version ladder (paper: 15 % / 29 % / 46 % / 60 %).
///
/// Runs through the sweep harness: the four versions execute across the
/// host's cores, and each record is checked for completion before its
/// statistics are surfaced.
///
/// # Panics
///
/// Panics if any run of the ladder is truncated — a truncated run's
/// utilization does not describe a complete execution.
pub fn fig10_versions(seed: u64, scale: Scale) -> Vec<UtilizationResult> {
    let sweep = sweeps::fig10(scale, seed);
    let report = run_sweep(&sweep, default_workers());
    report
        .records
        .iter()
        .map(|rec| {
            assert!(
                !rec.truncated,
                "experiment run '{}' did not complete: ended by {}",
                rec.label, rec.run_end
            );
            UtilizationResult {
                version: rec.version.expect("fig10 rows carry a version"),
                measured_percent: rec
                    .utilization_percent
                    .expect("a completed run has a work phase"),
                steady_percent: rec
                    .steady_percent
                    .expect("a completed run has a steady phase"),
                paper_percent: rec.paper_percent.expect("fig10 rows carry the paper value"),
                jobs: rec.work_units,
                end: SimTime::from_nanos(rec.sim_end_ns),
            }
        })
        .collect()
}

/// E1 — the complex scene (fractal pyramid, >250 primitives): servant
/// utilization reaches >99 % in the steady phase (paper: "over 99 %").
pub fn complex_scene(seed: u64, scale: Scale) -> UtilizationResult {
    let mut app = AppConfig::version(Version::V4);
    app.scene = SceneKind::FractalPyramid(3);
    app.width = scale.image(64, 32);
    app.height = app.width;
    app.bundle_size = match scale {
        Scale::Paper => 16,
        Scale::Quick => 4,
    };
    app.write_chunk = 32;
    let result = run_app(app.clone(), seed);
    utilization_of(&result, &app)
}

// ---------------------------------------------------------------------
// F9
// ---------------------------------------------------------------------

/// Result of the Figure 9 reproduction.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// Servant utilization with one-directional agents (paper ≈29 %).
    pub utilization: UtilizationResult,
    /// Agents created in the master's pool (paper: 5).
    pub agent_pool_size: u32,
    /// Mean duration of the agents' "Freed" state — "extremely short" in
    /// the paper.
    pub mean_freed_us: f64,
    /// Mean duration of the agents' "Forward Message" state (dominated
    /// by the blocked mailbox send the agent absorbs for the master).
    pub mean_forward_ms: f64,
    /// ASCII Gantt of a steady window: master, one servant, one agent.
    pub gantt_text: String,
    /// SVG version of the chart.
    pub gantt_svg: String,
}

/// F9 — communication agents (version 2): utilization, pool size, and
/// the agent state cycle Wake Up → Forward → Freed → Sleep.
pub fn fig9_agents(seed: u64, scale: Scale) -> Fig9Result {
    let mut app = AppConfig::version(Version::V2);
    app.width = scale.image(128, 32);
    app.height = app.width;
    let result = run_app(app.clone(), seed);
    let trace = &result.trace;
    let (from, to) = work_phase(trace).expect("run has a work phase");

    let agents = agent_tracks(trace, to);
    assert!(!agents.is_empty(), "version 2 must create agents");
    let freed = agents.iter().map(|t| state_durations(t, "Freed")).fold(
        des::stats::Accumulator::new(),
        |mut acc, a| {
            acc.merge(&a);
            acc
        },
    );
    let forward = agents
        .iter()
        .map(|t| state_durations(t, "Forward Message"))
        .fold(des::stats::Accumulator::new(), |mut acc, a| {
            acc.merge(&a);
            acc
        });

    // A window like the paper's detailed view (bottom of Fig. 9).
    let mid = from + (to - from) / 2;
    let window = 400_000_000u64.min(to - mid);
    let tracks = vec![
        master_track(trace, to),
        servant_track(trace, 1, to),
        agents[0].clone(),
    ];
    let gantt = Gantt::new(tracks, mid, mid + window.max(1));

    Fig9Result {
        utilization: utilization_of(&result, &app),
        agent_pool_size: result.app_stats.master_pool_peak,
        mean_freed_us: freed.mean() * 1e6,
        mean_forward_ms: forward.mean() * 1e3,
        gantt_text: gantt.render_text(),
        gantt_svg: gantt.render_svg(),
    }
}

// ---------------------------------------------------------------------
// E2 — intrusion comparison
// ---------------------------------------------------------------------

/// One row of the intrusion comparison.
#[derive(Debug, Clone)]
pub struct IntrusionRow {
    /// Monitoring technique.
    pub mode: MonitoringMode,
    /// Instrumentation events emitted.
    pub events: u64,
    /// Mean CPU cost per event.
    pub mean_per_event: SimDuration,
    /// Fraction of CPU time stolen by instrumentation.
    pub intrusion_ratio: f64,
    /// Run end time — the observable perturbation of the measured
    /// program.
    pub end: SimTime,
}

/// E2 — §3.2: the same program monitored with each technique. Confirms
/// the paper's anchors: one `hybrid_mon` call costs less than a
/// twentieth of the terminal interface's 2.4 ms, and hybrid perturbation
/// is small.
pub fn intrusion_comparison(seed: u64) -> Vec<IntrusionRow> {
    MonitoringMode::ALL
        .iter()
        .map(|&mode| {
            let mut app = AppConfig::version(Version::V4);
            app.servants = 3;
            app.scene = SceneKind::Quickstart;
            app.width = 16;
            app.height = 16;
            app.bundle_size = 8;
            app.pixel_queue_capacity = 256;
            app.write_chunk = 16;
            let mut cfg = RunConfig::new(app);
            cfg.seed = seed;
            cfg.preflight = analyzer::warn_policy();
            cfg.machine.monitoring = mode;
            cfg.horizon = SimTime::from_secs(36_000);
            let result = run(cfg);
            assert!(result.completed());
            IntrusionRow {
                mode,
                events: result.intrusion.events,
                mean_per_event: result.intrusion.mean_per_event(),
                intrusion_ratio: result.intrusion.intrusion_ratio(),
                end: result.outcome.end,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// E3 — FIFO stress
// ---------------------------------------------------------------------

/// One row of the event-recorder stress test.
#[derive(Debug, Clone)]
pub struct FifoRow {
    /// Scenario label.
    pub label: &'static str,
    /// Event rate offered, events per second.
    pub rate_per_sec: u64,
    /// Events offered.
    pub offered: u64,
    /// Events recorded.
    pub recorded: u64,
    /// Events lost to FIFO overflow.
    pub lost: u64,
    /// Peak FIFO occupancy.
    pub max_fifo: usize,
}

/// E3 — §3.1: the event recorder sustains ~10 000 events/s to disk and
/// absorbs bursts up to the 32 K FIFO capacity; beyond that it loses
/// events.
pub fn fifo_stress() -> Vec<FifoRow> {
    use hybridmon::{encode::encode, MonEvent};
    let mut rows = Vec::new();
    for &(label, rate, count) in &[
        ("sustained below drain", 9_000u64, 30_000u64),
        ("sustained above drain", 50_000, 30_000),
        ("burst within FIFO", 250_000, 30_000),
        ("burst beyond FIFO", 250_000, 60_000),
    ] {
        let period_ns = 1_000_000_000 / rate;
        let spacing = (period_ns / 40).max(1);
        let mut samples = Vec::new();
        for k in 0..count {
            let base = 1_000 + k * period_ns;
            for (i, p) in encode(MonEvent::new(k as u16, k as u32))
                .into_iter()
                .enumerate()
            {
                samples.push(ProbeSample {
                    time: SimTime::from_nanos(base + i as u64 * spacing),
                    channel: 0,
                    pattern: p,
                });
            }
        }
        let zm4 = Zm4::new(Zm4Config::default(), 1, 1);
        let m = zm4.observe(&samples);
        rows.push(FifoRow {
            label,
            rate_per_sec: rate,
            offered: count,
            recorded: m.total_recorded(),
            lost: m.total_lost(),
            max_fifo: m.recorder_stats[0].max_fifo_occupancy,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// E4 — clock synchronization ablation
// ---------------------------------------------------------------------

/// One arm of the clock ablation.
#[derive(Debug, Clone)]
pub struct ClockSyncRow {
    /// Whether the measure tick generator drove the recorder clocks.
    pub mtg_synchronized: bool,
    /// Events in the merged trace.
    pub events: usize,
    /// Merge-order violations against true time.
    pub merge_violations: u64,
    /// Happens-before violations (job sent after its work began, etc.).
    pub causality_violations: u64,
    /// Worst timestamp error versus true time, in nanoseconds.
    pub max_timestamp_error_ns: u64,
}

/// E4 — why the ZM4 has a global clock: the same program observed with
/// the MTG (globally valid timestamps, causal merge) and with
/// free-running recorder clocks (visible causality violations).
pub fn clock_sync_ablation(seed: u64) -> (ClockSyncRow, ClockSyncRow) {
    // A small 16-processor run; channels spread over recorders so that
    // skew between recorders matters (1 stream per recorder).
    let mut app = AppConfig::version(Version::V3);
    app.width = 24;
    app.height = 24;
    app.bundle_size = 8;
    app.pixel_queue_capacity = 128;
    app.write_chunk = 12;
    let mut cfg = RunConfig::new(app.clone());
    cfg.seed = seed;
    cfg.preflight = analyzer::warn_policy();
    cfg.zm4.streams_per_recorder = 1;
    cfg.horizon = SimTime::from_secs(36_000);
    let result = run(cfg);
    assert!(result.completed());

    let samples: Vec<ProbeSample> = result
        .machine
        .signals()
        .display_writes()
        .iter()
        .map(|w| ProbeSample {
            time: w.time,
            channel: w.node.index() as usize,
            pattern: w.pattern,
        })
        .collect();
    let channels = result.machine.topology().total_nodes() as usize;

    let observe = |synchronized: bool| -> ClockSyncRow {
        let zcfg = Zm4Config {
            streams_per_recorder: 1,
            mtg_synchronized: synchronized,
            // Free-running quartz oscillators drift tens of milliseconds
            // apart within minutes of operation — the realistic state of
            // affairs the MTG exists to prevent.
            skew_max_offset: des::time::SimDuration::from_millis(40),
            skew_max_drift_ppm: 100.0,
            ..Zm4Config::default()
        };
        let m = Zm4::new(zcfg, channels, seed).observe(&samples);
        let trace: Trace = m
            .trace
            .iter()
            .map(|r| {
                simple::Event::new(
                    r.ts_ns,
                    r.channel,
                    r.event.token.value(),
                    r.event.param.value(),
                )
            })
            .collect();
        let causality = check_causality(&trace, &raysim::analysis::causality_rules());
        ClockSyncRow {
            mtg_synchronized: synchronized,
            events: m.trace.len(),
            merge_violations: m.causality_violations(),
            causality_violations: causality.causality_violations,
            max_timestamp_error_ns: m.max_timestamp_error_ns(),
        }
    };
    (observe(true), observe(false))
}

// ---------------------------------------------------------------------
// E6 — operating-system instrumentation (the paper's future work)
// ---------------------------------------------------------------------

/// Result of the OS-instrumentation experiment.
#[derive(Debug, Clone)]
pub struct OsInstrumentationResult {
    /// Scheduler events the kernel emitted.
    pub kernel_events: u64,
    /// Per-node CPU busy fraction derived from the kernel trace
    /// (Running + Mailbox Service states), over the ray-tracing phase.
    pub node_cpu_busy: Vec<(String, f64)>,
    /// Mailbox-service CPU fraction of node 0 (the master's node) —
    /// internode communication cost made visible, as the paper wanted.
    pub master_node_mailbox_fraction: f64,
    /// ASCII Gantt chart of the node CPUs over a steady window.
    pub gantt_text: String,
}

/// E6 — the paper's future work, implemented: "instrumenting SUPRENUM's
/// operating system to find more detailed information about the
/// behaviour of the node scheduling algorithm and internode
/// communication". The kernel emits dispatch/block/mailbox-service/exit
/// events through the same display path; the trace yields per-node CPU
/// timelines.
pub fn os_instrumentation(seed: u64) -> OsInstrumentationResult {
    let mut app = AppConfig::version(Version::V2);
    app.servants = 4;
    app.scene = SceneKind::Quickstart;
    app.width = 16;
    app.height = 16;
    app.pixel_queue_capacity = 64;
    let mut cfg = RunConfig::new(app.clone());
    cfg.seed = seed;
    cfg.preflight = analyzer::warn_policy();
    cfg.machine.kernel_instrumentation = true;
    cfg.horizon = SimTime::from_secs(36_000);
    let result = run(cfg);
    assert!(result.completed());
    assert_eq!(
        result
            .measurement
            .detector_stats
            .iter()
            .map(|d| d.atomicity_violations)
            .sum::<u64>(),
        0,
        "kernel events must not corrupt the display protocol"
    );

    let (from, to) = work_phase(&result.trace).expect("work phase");
    let nodes = app.servants as u32 + 1;
    let tracks = raysim::analysis::kernel_tracks(&result.trace, nodes, to);
    let node_cpu_busy = tracks
        .iter()
        .map(|t| {
            let busy = t.time_in_state_within("Running", from, to)
                + t.time_in_state_within("Mailbox Service", from, to);
            (t.name().to_owned(), busy as f64 / (to - from) as f64)
        })
        .collect();
    let master_node_mailbox_fraction =
        tracks[0].time_in_state_within("Mailbox Service", from, to) as f64 / (to - from) as f64;

    let mid = from + (to - from) / 2;
    let window_end = (mid + 500_000_000).min(to);
    let gantt = Gantt::new(tracks, mid, window_end.max(mid + 1));

    OsInstrumentationResult {
        kernel_events: result.machine.stats().kernel_events,
        node_cpu_busy,
        master_node_mailbox_fraction,
        gantt_text: gantt.render_text(),
    }
}

// ---------------------------------------------------------------------
// E5 — mailbox anatomy
// ---------------------------------------------------------------------

/// Result of the mailbox microbenchmark.
#[derive(Debug, Clone, Copy)]
pub struct MailboxAnatomy {
    /// How long a mailbox send blocks when the receiver is mid-compute.
    pub busy_receiver_block: SimDuration,
    /// How long it blocks when the receiver is already waiting.
    pub idle_receiver_block: SimDuration,
    /// The receiver's compute phase, for reference.
    pub receiver_work: SimDuration,
}

/// E5 — §4.3's discovery in isolation: SUPRENUM's "asynchronous"
/// mailbox send behaves synchronously when the receiver is busy, because
/// the mailbox LWP is only scheduled once the receiver relinquishes the
/// CPU.
pub fn mailbox_anatomy(seed: u64) -> MailboxAnatomy {
    struct Receiver {
        work: SimDuration,
        step: u8,
    }
    impl Process for Receiver {
        fn resume(&mut self, _ctx: &ProcCtx, _why: Resume) -> Action {
            self.step += 1;
            match self.step {
                1 => Action::Compute(self.work),
                2 => Action::MailboxRecv,
                3 => Action::MailboxRecv,
                _ => Action::Exit,
            }
        }
        fn label(&self) -> String {
            "receiver".into()
        }
    }

    struct Sender {
        peer: Option<ProcessId>,
        work: SimDuration,
        step: u8,
        block_busy: std::sync::Arc<std::sync::Mutex<(u64, u64)>>,
        t0: u64,
    }
    impl Process for Sender {
        fn resume(&mut self, ctx: &ProcCtx, why: Resume) -> Action {
            if let Resume::Spawned(pid) = &why {
                self.peer = Some(*pid);
            }
            self.step += 1;
            match self.step {
                1 => Action::Spawn {
                    node: NodeId::new(1),
                    body: Box::new(Receiver {
                        work: self.work,
                        step: 0,
                    }),
                },
                // Send while the receiver is mid-compute.
                2 => Action::Sleep(SimDuration::from_millis(5)),
                3 => {
                    self.t0 = ctx.now.as_nanos();
                    Action::MailboxSend {
                        to: self.peer.unwrap(),
                        msg: Message::new(ctx.pid, 64, "busy"),
                    }
                }
                4 => {
                    let busy = ctx.now.as_nanos() - self.t0;
                    *self.block_busy.lock().unwrap() = (busy, 0);
                    // Now the receiver is blocked in MailboxRecv: an
                    // idle-receiver send for comparison.
                    Action::Sleep(SimDuration::from_millis(5))
                }
                5 => {
                    self.t0 = ctx.now.as_nanos();
                    Action::MailboxSend {
                        to: self.peer.unwrap(),
                        msg: Message::new(ctx.pid, 64, "idle"),
                    }
                }
                6 => {
                    let busy = self.block_busy.lock().unwrap().0;
                    *self.block_busy.lock().unwrap() = (busy, ctx.now.as_nanos() - self.t0);
                    Action::Sleep(SimDuration::from_millis(5))
                }
                _ => Action::Exit,
            }
        }
        fn label(&self) -> String {
            "sender".into()
        }
    }

    let work = SimDuration::from_millis(80);
    let cell = std::sync::Arc::new(std::sync::Mutex::new((0u64, 0u64)));
    let mut machine = Machine::new(MachineConfig::single_cluster(2), seed).unwrap();
    machine.add_process(
        NodeId::new(0),
        Box::new(Sender {
            peer: None,
            work,
            step: 0,
            block_busy: cell.clone(),
            t0: 0,
        }),
    );
    let outcome = machine.run(SimTime::from_secs(60));
    assert_eq!(
        outcome.reason,
        RunEnd::Completed,
        "microbenchmark must complete"
    );
    let (busy, idle) = *cell.lock().unwrap();
    MailboxAnatomy {
        busy_receiver_block: SimDuration::from_nanos(busy),
        idle_receiver_block: SimDuration::from_nanos(idle),
        receiver_work: work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_instrumentation_exposes_node_schedules() {
        let r = os_instrumentation(13);
        assert!(
            r.kernel_events > 100,
            "only {} kernel events",
            r.kernel_events
        );
        assert_eq!(r.node_cpu_busy.len(), 5);
        // Every servant node shows CPU activity; the master node shows
        // visible mailbox-service time (internode communication).
        for (name, busy) in &r.node_cpu_busy[1..] {
            assert!(*busy > 0.05, "{name} busy only {busy:.2}");
        }
        // The master's node is the communication hot-spot: busiest CPU.
        let master_busy = r.node_cpu_busy[0].1;
        assert!(
            r.node_cpu_busy[1..]
                .iter()
                .all(|(_, b)| *b <= master_busy + 0.05),
            "master node should be the hot-spot: {:?}",
            r.node_cpu_busy
        );
        assert!(r.master_node_mailbox_fraction > 0.001);
        assert!(r.gantt_text.contains("Node 0 CPU"));
        assert!(r.gantt_text.contains("Mailbox Service"));
    }

    #[test]
    fn mailbox_anatomy_shows_synchrony() {
        let r = mailbox_anatomy(3);
        // Sent at t≈5ms into an 80ms compute: blocked ~75ms.
        assert!(r.busy_receiver_block > SimDuration::from_millis(60));
        assert!(r.idle_receiver_block < SimDuration::from_millis(5));
        assert!(r.busy_receiver_block.as_nanos() > 10 * r.idle_receiver_block.as_nanos());
    }

    #[test]
    fn fifo_stress_rows_behave() {
        let rows = fifo_stress();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].lost, 0, "sustained sub-drain load loses nothing");
        // Above-drain sustained load of 30k events fits the 32K FIFO.
        assert_eq!(rows[1].lost, 0);
        assert!(rows[1].max_fifo > rows[0].max_fifo);
        assert_eq!(rows[2].lost, 0, "burst within FIFO capacity survives");
        assert!(rows[3].lost > 0, "burst beyond FIFO capacity loses events");
        for r in &rows {
            assert_eq!(r.recorded + r.lost, r.offered);
        }
    }

    #[test]
    fn intrusion_ranks_modes() {
        let rows = intrusion_comparison(11);
        let get = |m: MonitoringMode| rows.iter().find(|r| r.mode == m).unwrap().clone();
        let hybrid = get(MonitoringMode::Hybrid);
        let terminal = get(MonitoringMode::Terminal);
        let software = get(MonitoringMode::Software);
        let off = get(MonitoringMode::Off);
        // Paper §3.2 anchor: terminal is >20x hybrid.
        assert!(terminal.mean_per_event.as_nanos() >= 20 * hybrid.mean_per_event.as_nanos());
        assert!(hybrid.mean_per_event < SimDuration::from_micros(120));
        assert_eq!(off.mean_per_event, SimDuration::ZERO);
        // Perturbation ordering: off <= software <= hybrid <= terminal.
        assert!(off.end <= software.end);
        assert!(software.end <= hybrid.end);
        assert!(hybrid.end <= terminal.end);
        assert!(hybrid.events > 0);
    }

    #[test]
    fn clock_ablation_separates_cleanly() {
        let (sync, free) = clock_sync_ablation(5);
        assert!(sync.mtg_synchronized && !free.mtg_synchronized);
        assert_eq!(sync.events, free.events, "same signals observed");
        assert_eq!(sync.merge_violations, 0);
        assert_eq!(sync.causality_violations, 0);
        assert!(sync.max_timestamp_error_ns <= 100);
        assert!(
            free.merge_violations > 0,
            "free-running clocks mis-order the merge"
        );
        assert!(free.max_timestamp_error_ns > 100_000);
    }
}
