//! One-stop facade for the SUPRENUM monitoring reproduction.
//!
//! This crate re-exports every subsystem of the workspace and provides
//! [`experiments`] — one-call functions that regenerate each figure and
//! in-text result of *Monitoring Program Behaviour on SUPRENUM*
//! (Siegle & Hofmann, ISCA 1992):
//!
//! | id | paper artifact | function |
//! |----|----------------|----------|
//! | F7 | Fig. 7: mailbox Gantt chart, 2 processors | [`experiments::fig7_mailbox_gantt`] |
//! | F8 | Fig. 8: ≈15 % servant utilization, 16 processors | [`experiments::fig8_mailbox_utilization`] |
//! | F9 | Fig. 9: communication agents, ≈29 % | [`experiments::fig9_agents`] |
//! | F10 | Fig. 10: 15/29/46/60 % version ladder | [`experiments::fig10_versions`] |
//! | E1 | complex scene: >99 % utilization | [`experiments::complex_scene`] |
//! | E2 | §3.2 intrusion: hybrid vs terminal vs software | [`experiments::intrusion_comparison`] |
//! | E3 | §3.1 event-recorder FIFO behaviour | [`experiments::fifo_stress`] |
//! | E4 | global-clock ablation (MTG on/off) | [`experiments::clock_sync_ablation`] |
//! | E5 | mailbox send anatomy (de-facto synchrony) | [`experiments::mailbox_anatomy`] |
//!
//! # Examples
//!
//! ```
//! use suprenum_monitor::experiments;
//!
//! // The mailbox microbenchmark: sending to a busy receiver blocks the
//! // sender for (almost) the receiver's whole compute phase.
//! let result = experiments::mailbox_anatomy(7);
//! assert!(result.busy_receiver_block > result.idle_receiver_block * 10);
//! ```

pub use analyzer;
pub use des;
pub use harness;
pub use hybridmon;
pub use pipeline;
pub use raysim;
pub use raytracer;
pub use simple;
pub use suprenum;
pub use zm4;

pub mod apps;
pub mod experiments;
