//! Simulated time: instants and durations with nanosecond resolution.
//!
//! [`SimTime`] is an absolute instant measured from the start of the
//! simulation; [`SimDuration`] is a span between instants. Both wrap a
//! `u64` nanosecond count, giving a range of roughly 584 simulated years —
//! far beyond any experiment in this workspace.
//!
//! The two types are deliberately distinct ([C-NEWTYPE]): adding two
//! instants is meaningless and does not compile, while `instant + duration`
//! and `instant - instant` work as expected.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in nanoseconds since simulation
/// start.
///
/// # Examples
///
/// ```
/// use des::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(2);
/// assert_eq!(t.as_nanos(), 2_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use des::time::SimDuration;
///
/// let d = SimDuration::from_micros(120);
/// assert_eq!(d * 2, SimDuration::from_micros(240));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "unreachable" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from a microsecond count.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from a millisecond count.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from a second count.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Returns the nanosecond count since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked instant-plus-duration: `None` if the sum would exceed the
    /// `u64` nanosecond ceiling (~584 simulated years).
    pub const fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        match self.0.checked_add(d.0) {
            Some(ns) => Some(SimTime(ns)),
            None => None,
        }
    }

    /// Saturating instant-plus-duration: clamps at [`SimTime::MAX`]
    /// instead of wrapping.
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Quantizes the instant downwards to a multiple of `tick`.
    ///
    /// Used to model clocks with coarse resolution, e.g. the ZM4 event
    /// recorder's 100 ns counter.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero.
    pub fn quantize(self, tick: SimDuration) -> SimTime {
        assert!(tick.0 > 0, "quantization tick must be nonzero");
        SimTime(self.0 - self.0 % tick.0)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from a nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from a microsecond count.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from a millisecond count.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from a second count.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond and saturating at the representable range.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or NaN.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0, "duration seconds must be non-negative");
        SimDuration((secs * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Returns the nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Multiplies by a floating-point factor, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor >= 0.0, "duration scale factor must be non-negative");
        SimDuration((self.0 as f64 * factor).round().min(u64::MAX as f64) as u64)
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked duration addition: `None` on overflow.
    pub const fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        match self.0.checked_add(other.0) {
            Some(ns) => Some(SimDuration(ns)),
            None => None,
        }
    }

    /// Saturating duration addition: clamps at [`SimDuration::MAX`]
    /// instead of wrapping.
    pub const fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// The time needed to move `bytes` bytes over a link of
    /// `bytes_per_sec` bandwidth, rounded up to the next nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn for_transfer(bytes: u64, bytes_per_sec: u64) -> SimDuration {
        assert!(bytes_per_sec > 0, "bandwidth must be nonzero");
        // ceil(bytes * 1e9 / bw) using u128 to avoid overflow.
        let ns = ((bytes as u128) * 1_000_000_000).div_ceil(bytes_per_sec as u128);
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics instead of wrapping when the sum exceeds the `u64`
    /// nanosecond ceiling — a wrapped instant would land in the
    /// simulated past and silently corrupt causality.
    fn add(self, rhs: SimDuration) -> SimTime {
        self.checked_add(rhs).unwrap_or_else(|| {
            panic!("simulated-time overflow: {self} + {rhs} exceeds the u64 nanosecond ceiling")
        })
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics instead of wrapping on overflow.
    fn add(self, rhs: SimDuration) -> SimDuration {
        self.checked_add(rhs).unwrap_or_else(|| {
            panic!("duration overflow: {self} + {rhs} exceeds the u64 nanosecond ceiling")
        })
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics instead of wrapping on overflow.
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).unwrap_or_else(|| {
            panic!("duration overflow: {self} * {rhs} exceeds the u64 nanosecond ceiling")
        }))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl From<SimDuration> for std::time::Duration {
    fn from(d: SimDuration) -> Self {
        std::time::Duration::from_nanos(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(
            SimDuration::from_secs(2),
            SimDuration::from_nanos(2_000_000_000)
        );
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t0 = SimTime::from_micros(10);
        let d = SimDuration::from_micros(5);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(30);
        assert_eq!(late.saturating_since(early), SimDuration::from_nanos(20));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn quantize_rounds_down() {
        let t = SimTime::from_nanos(1234);
        assert_eq!(
            t.quantize(SimDuration::from_nanos(100)),
            SimTime::from_nanos(1200)
        );
        assert_eq!(t.quantize(SimDuration::from_nanos(1)), t);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn quantize_zero_tick_panics() {
        let _ = SimTime::from_nanos(5).quantize(SimDuration::ZERO);
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 1 byte at 1 GB/s is exactly 1 ns.
        assert_eq!(
            SimDuration::for_transfer(1, 1_000_000_000),
            SimDuration::from_nanos(1)
        );
        // 1 byte at 3 GB/s rounds up to 1 ns.
        assert_eq!(
            SimDuration::for_transfer(1, 3_000_000_000),
            SimDuration::from_nanos(1)
        );
        // 160 MB over the 160 MB/s cluster-bus rail takes 1 s.
        assert_eq!(
            SimDuration::for_transfer(160_000_000, 160_000_000),
            SimDuration::from_secs(1)
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(1.26), SimDuration::from_nanos(13));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }

    #[test]
    fn checked_add_detects_ceiling() {
        let near = SimTime::from_nanos(u64::MAX - 5);
        assert_eq!(
            near.checked_add(SimDuration::from_nanos(5)),
            Some(SimTime::MAX)
        );
        assert_eq!(near.checked_add(SimDuration::from_nanos(6)), None);
        assert_eq!(near.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_nanos(1)),
            SimDuration::MAX
        );
    }

    #[test]
    #[should_panic(expected = "simulated-time overflow")]
    fn instant_add_panics_instead_of_wrapping() {
        // Pre-fix this wrapped into the simulated past in release mode.
        let _ = SimTime::from_nanos(u64::MAX - 1) + SimDuration::from_secs(1);
    }

    #[test]
    #[should_panic(expected = "duration overflow")]
    fn duration_add_panics_instead_of_wrapping() {
        let _ = SimDuration::MAX + SimDuration::from_nanos(1);
    }

    #[test]
    #[should_panic(expected = "duration overflow")]
    fn duration_mul_panics_instead_of_wrapping() {
        let _ = SimDuration::from_secs(u64::MAX / 1_000_000_000) * 1_000;
    }

    #[test]
    fn from_secs_f64_roundtrip() {
        let d = SimDuration::from_secs_f64(0.5);
        assert_eq!(d, SimDuration::from_millis(500));
        assert!((d.as_secs_f64() - 0.5).abs() < 1e-12);
    }
}
