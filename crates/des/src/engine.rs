//! A minimal event-loop driver over [`EventQueue`].
//!
//! [`EventLoop`] owns the queue and the simulated clock. A handler closure
//! is invoked for each popped event and may schedule further events. The
//! loop terminates when the queue drains, when a step budget is exhausted,
//! or when a time horizon is reached — whichever comes first.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Why an [`EventLoop`] run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained completely.
    Drained,
    /// The configured time horizon was reached before the queue drained.
    Horizon,
    /// The step budget was exhausted (usually indicates a livelock bug).
    StepBudget,
}

/// An event loop with a simulated clock.
///
/// # Examples
///
/// ```
/// use des::engine::EventLoop;
/// use des::time::{SimDuration, SimTime};
///
/// let mut sim: EventLoop<u32> = EventLoop::new();
/// sim.schedule(SimTime::ZERO, 0);
/// let mut count = 0;
/// sim.run(|sim, _now, n| {
///     count += 1;
///     if n < 9 {
///         sim.schedule_in(SimDuration::from_nanos(1), n + 1);
///     }
/// });
/// assert_eq!(count, 10);
/// assert_eq!(sim.now(), SimTime::from_nanos(9));
/// ```
#[derive(Debug)]
pub struct EventLoop<E> {
    queue: EventQueue<E>,
    now: SimTime,
}

impl<E> EventLoop<E> {
    /// Creates an empty event loop with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventLoop {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
        }
    }

    /// Returns the current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the simulated past — such an event would
    /// silently corrupt causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past ({at} < {})",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Discards all pending events. The clock keeps its current value.
    ///
    /// Used to halt a simulation immediately, e.g. when the application's
    /// initial process exits and the whole run terminates.
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Runs until the queue drains, invoking `handler` for every event.
    pub fn run<F>(&mut self, handler: F) -> StopReason
    where
        F: FnMut(&mut Self, SimTime, E),
    {
        self.run_bounded(SimTime::MAX, u64::MAX, handler)
    }

    /// Runs until the queue drains, `horizon` is passed, or `max_steps`
    /// events have been handled.
    ///
    /// Events scheduled *after* `horizon` are left in the queue; the clock
    /// never advances beyond the last handled event.
    pub fn run_bounded<F>(&mut self, horizon: SimTime, max_steps: u64, mut handler: F) -> StopReason
    where
        F: FnMut(&mut Self, SimTime, E),
    {
        let mut steps = 0u64;
        loop {
            match self.queue.peek_time() {
                None => return StopReason::Drained,
                Some(t) if t > horizon => return StopReason::Horizon,
                Some(_) => {}
            }
            if steps >= max_steps {
                return StopReason::StepBudget;
            }
            let (t, ev) = self.queue.pop().expect("peeked nonempty queue");
            debug_assert!(t >= self.now, "event queue went backwards in time");
            self.now = t;
            handler(self, t, ev);
            steps += 1;
        }
    }
}

impl<E> Default for EventLoop<E> {
    fn default() -> Self {
        EventLoop::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_time_order() {
        let mut sim = EventLoop::new();
        sim.schedule(SimTime::from_nanos(10), "b");
        sim.schedule(SimTime::from_nanos(5), "a");
        let mut seen = Vec::new();
        let reason = sim.run(|_, now, ev| seen.push((now.as_nanos(), ev)));
        assert_eq!(reason, StopReason::Drained);
        assert_eq!(seen, vec![(5, "a"), (10, "b")]);
    }

    #[test]
    fn horizon_stops_early_and_preserves_future_events() {
        let mut sim = EventLoop::new();
        sim.schedule(SimTime::from_nanos(1), 1);
        sim.schedule(SimTime::from_nanos(100), 2);
        let reason = sim.run_bounded(SimTime::from_nanos(50), u64::MAX, |_, _, _| {});
        assert_eq!(reason, StopReason::Horizon);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.now(), SimTime::from_nanos(1));
    }

    #[test]
    fn step_budget_detects_livelock() {
        let mut sim = EventLoop::new();
        sim.schedule(SimTime::ZERO, ());
        // A handler that perpetually reschedules at the same instant.
        let reason = sim.run_bounded(SimTime::MAX, 1000, |sim, now, ()| {
            sim.schedule(now, ());
        });
        assert_eq!(reason, StopReason::StepBudget);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_past_panics() {
        let mut sim = EventLoop::new();
        sim.schedule(SimTime::from_nanos(10), ());
        sim.run(|sim, _, ()| {
            sim.schedule(SimTime::from_nanos(1), ());
        });
    }

    #[test]
    fn handler_can_cascade() {
        let mut sim = EventLoop::new();
        sim.schedule(SimTime::ZERO, 0u32);
        let mut total = 0u32;
        sim.run(|sim, _, n| {
            total += n;
            if n < 5 {
                sim.schedule_in(SimDuration::from_micros(1), n + 1);
            }
        });
        assert_eq!(total, 15);
        assert_eq!(sim.now(), SimTime::from_micros(5));
    }
}
