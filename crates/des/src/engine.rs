//! A minimal event-loop driver over [`EventQueue`].
//!
//! [`EventLoop`] owns the queue and the simulated clock. A handler closure
//! is invoked for each popped event and may schedule further events. The
//! loop terminates when the queue drains, when a step budget is exhausted,
//! or when a time horizon is reached — whichever comes first.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Why an [`EventLoop`] run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained completely.
    Drained,
    /// The configured time horizon was reached before the queue drained.
    Horizon,
    /// The step budget was exhausted (usually indicates a livelock bug).
    StepBudget,
}

/// An event loop with a simulated clock.
///
/// # Examples
///
/// ```
/// use des::engine::EventLoop;
/// use des::time::{SimDuration, SimTime};
///
/// let mut sim: EventLoop<u32> = EventLoop::new();
/// sim.schedule(SimTime::ZERO, 0);
/// let mut count = 0;
/// sim.run(|sim, _now, n| {
///     count += 1;
///     if n < 9 {
///         sim.schedule_in(SimDuration::from_nanos(1), n + 1);
///     }
/// });
/// assert_eq!(count, 10);
/// assert_eq!(sim.now(), SimTime::from_nanos(9));
/// ```
#[derive(Debug)]
pub struct EventLoop<E> {
    queue: EventQueue<E>,
    now: SimTime,
    steps: u64,
    scheduled: u64,
}

impl<E> EventLoop<E> {
    /// Creates an empty event loop with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventLoop {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            steps: 0,
            scheduled: 0,
        }
    }

    /// Returns the current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total events handled across all `run*` calls on this loop.
    pub fn steps_handled(&self) -> u64 {
        self.steps
    }

    /// Total events ever scheduled on this loop.
    pub fn events_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the simulated past — such an event would
    /// silently corrupt causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past ({at} < {})",
            self.now
        );
        self.scheduled += 1;
        self.queue.push(at, event);
    }

    /// Schedules `event` to fire `delay` after the current time.
    ///
    /// # Panics
    ///
    /// Panics (naming the offending event) if `now + delay` would
    /// overflow the `u64` nanosecond ceiling — before this check the
    /// wrapped sum landed in the simulated past and either corrupted
    /// event ordering or tripped the past-scheduling assertion with no
    /// hint of the real cause.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E)
    where
        E: std::fmt::Debug,
    {
        let at = self.now.checked_add(delay).unwrap_or_else(|| {
            panic!(
                "scheduling {event:?} at now={} + delay={delay} overflows simulated time",
                self.now
            )
        });
        self.scheduled += 1;
        self.queue.push(at, event);
    }

    /// Discards all pending events. The clock keeps its current value.
    ///
    /// Used to halt a simulation immediately, e.g. when the application's
    /// initial process exits and the whole run terminates.
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Runs until the queue drains, invoking `handler` for every event.
    pub fn run<F>(&mut self, handler: F) -> StopReason
    where
        F: FnMut(&mut Self, SimTime, E),
    {
        self.run_bounded(SimTime::MAX, u64::MAX, handler)
    }

    /// Runs until the queue drains, `horizon` is passed, or `max_steps`
    /// events have been handled.
    ///
    /// Events scheduled *after* `horizon` are left in the queue; the clock
    /// never advances beyond the last handled event.
    pub fn run_bounded<F>(&mut self, horizon: SimTime, max_steps: u64, mut handler: F) -> StopReason
    where
        F: FnMut(&mut Self, SimTime, E),
    {
        let mut steps = 0u64;
        loop {
            match self.queue.peek_time() {
                None => return StopReason::Drained,
                Some(t) if t > horizon => return StopReason::Horizon,
                Some(_) => {}
            }
            if steps >= max_steps {
                return StopReason::StepBudget;
            }
            let (t, ev) = self.queue.pop().expect("peeked nonempty queue");
            debug_assert!(t >= self.now, "event queue went backwards in time");
            self.now = t;
            self.steps += 1;
            handler(self, t, ev);
            steps += 1;
        }
    }
}

impl<E> Default for EventLoop<E> {
    fn default() -> Self {
        EventLoop::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_time_order() {
        let mut sim = EventLoop::new();
        sim.schedule(SimTime::from_nanos(10), "b");
        sim.schedule(SimTime::from_nanos(5), "a");
        let mut seen = Vec::new();
        let reason = sim.run(|_, now, ev| seen.push((now.as_nanos(), ev)));
        assert_eq!(reason, StopReason::Drained);
        assert_eq!(seen, vec![(5, "a"), (10, "b")]);
    }

    #[test]
    fn horizon_stops_early_and_preserves_future_events() {
        let mut sim = EventLoop::new();
        sim.schedule(SimTime::from_nanos(1), 1);
        sim.schedule(SimTime::from_nanos(100), 2);
        let reason = sim.run_bounded(SimTime::from_nanos(50), u64::MAX, |_, _, _| {});
        assert_eq!(reason, StopReason::Horizon);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.now(), SimTime::from_nanos(1));
    }

    #[test]
    fn step_budget_detects_livelock() {
        let mut sim = EventLoop::new();
        sim.schedule(SimTime::ZERO, ());
        // A handler that perpetually reschedules at the same instant.
        let reason = sim.run_bounded(SimTime::MAX, 1000, |sim, now, ()| {
            sim.schedule(now, ());
        });
        assert_eq!(reason, StopReason::StepBudget);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_past_panics() {
        let mut sim = EventLoop::new();
        sim.schedule(SimTime::from_nanos(10), ());
        sim.run(|sim, _, ()| {
            sim.schedule(SimTime::from_nanos(1), ());
        });
    }

    #[test]
    fn counters_track_schedules_and_steps() {
        let mut sim = EventLoop::new();
        sim.schedule(SimTime::from_nanos(1), 0u32);
        sim.schedule(SimTime::from_nanos(100), 1u32);
        let reason = sim.run_bounded(SimTime::from_nanos(50), u64::MAX, |sim, _, n| {
            if n == 0 {
                sim.schedule_in(SimDuration::from_nanos(1), 9);
            }
        });
        assert_eq!(reason, StopReason::Horizon);
        // Handled: the nanos-1 event and its nanos-2 child; the nanos-100
        // event stays pending past the horizon.
        assert_eq!(sim.steps_handled(), 2);
        assert_eq!(sim.events_scheduled(), 3);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "overflows simulated time")]
    fn schedule_in_overflow_names_event() {
        let mut sim = EventLoop::new();
        sim.schedule(SimTime::from_nanos(u64::MAX - 1), "tail");
        sim.run(|sim, _, _| {
            sim.schedule_in(SimDuration::from_secs(1), "wrapping-event");
        });
    }

    #[test]
    fn handler_can_cascade() {
        let mut sim = EventLoop::new();
        sim.schedule(SimTime::ZERO, 0u32);
        let mut total = 0u32;
        sim.run(|sim, _, n| {
            total += n;
            if n < 5 {
                sim.schedule_in(SimDuration::from_micros(1), n + 1);
            }
        });
        assert_eq!(total, 15);
        assert_eq!(sim.now(), SimTime::from_micros(5));
    }
}
