//! Statistics accumulators used across the workspace.
//!
//! [`Accumulator`] tracks scalar samples (count/mean/min/max); [`Histogram`]
//! buckets durations; [`TimeWeighted`] integrates a piecewise-constant value
//! over simulated time, which is exactly what resource-utilization metrics
//! (CPU busy fraction, bus occupancy, FIFO fill level) need.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Online accumulator for scalar samples.
///
/// # Examples
///
/// ```
/// use des::stats::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for v in [1.0, 2.0, 3.0] {
///     acc.record(v);
/// }
/// assert_eq!(acc.count(), 3);
/// assert_eq!(acc.mean(), 2.0);
/// assert_eq!(acc.min(), Some(1.0));
/// assert_eq!(acc.max(), Some(3.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.sum_sq += value * value;
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Records a duration sample in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance, or 0.0 when empty.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        (self.sum_sq / n - (self.sum / n).powi(2)).max(0.0)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Accumulator) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl fmt::Display for Accumulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min.unwrap_or(f64::NAN),
            self.max.unwrap_or(f64::NAN)
        )
    }
}

/// A fixed-bucket histogram over duration samples.
///
/// Bucket boundaries are supplied at construction; samples at or above the
/// last boundary land in an overflow bucket.
///
/// # Examples
///
/// ```
/// use des::stats::Histogram;
/// use des::time::SimDuration;
///
/// let mut h = Histogram::new(&[
///     SimDuration::from_micros(10),
///     SimDuration::from_micros(100),
/// ]);
/// h.record(SimDuration::from_micros(5));
/// h.record(SimDuration::from_micros(50));
/// h.record(SimDuration::from_millis(2));
/// assert_eq!(h.counts(), &[1, 1, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<SimDuration>,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[SimDuration]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
        }
    }

    /// Creates a histogram with `n` exponentially growing buckets starting
    /// at `first` (each bound doubles).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `first` is zero.
    pub fn exponential(first: SimDuration, n: usize) -> Self {
        assert!(n > 0, "need at least one bucket");
        assert!(!first.is_zero(), "first bound must be nonzero");
        let bounds: Vec<SimDuration> = (0..n)
            .map(|i| SimDuration::from_nanos(first.as_nanos() << i))
            .collect();
        Histogram::new(&bounds)
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        let idx = self.bounds.partition_point(|&b| b <= d);
        self.counts[idx] += 1;
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[SimDuration] {
        &self.bounds
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Integrates a piecewise-constant value over simulated time.
///
/// Typical use: set the value to 1.0 while a CPU is busy and 0.0 while
/// idle; [`TimeWeighted::mean`] then yields the utilization over the
/// observed window.
///
/// # Examples
///
/// ```
/// use des::stats::TimeWeighted;
/// use des::time::SimTime;
///
/// let mut u = TimeWeighted::new(SimTime::ZERO, 0.0);
/// u.set(SimTime::from_micros(2), 1.0); // busy from 2us
/// u.set(SimTime::from_micros(6), 0.0); // idle from 6us
/// assert_eq!(u.mean(SimTime::from_micros(8)), 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    start: SimTime,
    last_change: SimTime,
    current: f64,
    integral: f64, // value * seconds
}

impl TimeWeighted {
    /// Starts integrating at `start` with initial `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            start,
            last_change: start,
            current: value,
            integral: 0.0,
        }
    }

    /// Changes the value at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous change (debug builds only).
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(
            now >= self.last_change,
            "time-weighted value set in the past"
        );
        self.integral += self.current * now.saturating_since(self.last_change).as_secs_f64();
        self.last_change = now;
        self.current = value;
    }

    /// Adds `delta` to the current value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.current + delta;
        self.set(now, v);
    }

    /// Returns the current value.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Returns the time-weighted mean over `[start, end]`.
    ///
    /// A zero-length window (`end <= start`) has integrated nothing and
    /// reports 0.0 — the division by
    /// `end.saturating_since(self.start)` is guarded so an empty or
    /// instantaneous window can never surface as `0.0 / 0.0 = NaN` in
    /// derived statistics (run-record utilization fields in particular).
    pub fn mean(&self, end: SimTime) -> f64 {
        let window = end.saturating_since(self.start).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        let tail = self.current * end.saturating_since(self.last_change).as_secs_f64();
        (self.integral + tail) / window
    }

    /// Returns the accumulated integral (value × seconds) up to `end`.
    pub fn integral(&self, end: SimTime) -> f64 {
        self.integral + self.current * end.saturating_since(self.last_change).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_moments() {
        let mut a = Accumulator::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.record(v);
        }
        assert_eq!(a.count(), 8);
        assert!((a.mean() - 5.0).abs() < 1e-12);
        assert!((a.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(a.min(), Some(2.0));
        assert_eq!(a.max(), Some(9.0));
    }

    #[test]
    fn accumulator_merge_matches_combined() {
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        let mut all = Accumulator::new();
        for i in 0..10 {
            let v = i as f64;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn empty_accumulator_is_safe() {
        let a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.min(), None);
    }

    #[test]
    fn histogram_bucket_edges() {
        let mut h = Histogram::new(&[SimDuration::from_nanos(10), SimDuration::from_nanos(20)]);
        h.record(SimDuration::from_nanos(9)); // below first bound
        h.record(SimDuration::from_nanos(10)); // exactly on bound -> next bucket
        h.record(SimDuration::from_nanos(19));
        h.record(SimDuration::from_nanos(20)); // overflow
        assert_eq!(h.counts(), &[1, 2, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn exponential_histogram_doubles() {
        let h = Histogram::exponential(SimDuration::from_nanos(100), 4);
        let b: Vec<u64> = h.bounds().iter().map(|d| d.as_nanos()).collect();
        assert_eq!(b, vec![100, 200, 400, 800]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[SimDuration::from_nanos(20), SimDuration::from_nanos(10)]);
    }

    #[test]
    fn time_weighted_utilization() {
        let mut u = TimeWeighted::new(SimTime::from_secs(1), 1.0);
        u.set(SimTime::from_secs(2), 0.0);
        u.set(SimTime::from_secs(3), 1.0);
        // Busy for 1s (1..2) + 1s (3..4) of a 3s window.
        assert!((u.mean(SimTime::from_secs(4)) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_add_tracks_level() {
        let mut q = TimeWeighted::new(SimTime::ZERO, 0.0);
        q.add(SimTime::from_secs(1), 2.0);
        q.add(SimTime::from_secs(2), -1.0);
        assert_eq!(q.current(), 1.0);
        // Integral: 0*1 + 2*1 + 1*1 = 3 value-seconds over 3 seconds.
        assert!((q.mean(SimTime::from_secs(3)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_empty_window() {
        let u = TimeWeighted::new(SimTime::from_secs(5), 1.0);
        assert_eq!(u.mean(SimTime::from_secs(5)), 0.0);
    }

    /// Empty and instantaneous windows must yield finite statistics —
    /// 0.0, never `0/0 = NaN` — including after value changes landed
    /// exactly on the window boundary, and for a window queried in the
    /// (saturating) past.
    #[test]
    fn time_weighted_instantaneous_window_is_finite() {
        let mut u = TimeWeighted::new(SimTime::from_secs(5), 1.0);
        u.set(SimTime::from_secs(5), 3.0); // change at the boundary itself
        let m = u.mean(SimTime::from_secs(5));
        assert!(m.is_finite());
        assert_eq!(m, 0.0);
        assert_eq!(u.mean(SimTime::from_secs(1)), 0.0); // end before start
        assert_eq!(u.integral(SimTime::from_secs(5)), 0.0);
    }
}
