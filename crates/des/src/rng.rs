//! Deterministic random-number streams.
//!
//! Every stochastic element of the simulation (clock skew, scene sampling
//! jitter, …) draws from a [`DetRng`] derived from a single root seed, so a
//! whole experiment replays identically from `(seed, config)`. Independent
//! subsystems take *derived* streams ([`DetRng::derive`]) keyed by a label,
//! which keeps their draws decoupled: adding a draw in one subsystem does
//! not shift the sequence seen by another.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic, seedable random number generator stream.
///
/// # Examples
///
/// ```
/// use des::rng::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Derived streams are decoupled from the parent and from each other.
/// let mut clock = DetRng::new(42).derive("clock-skew");
/// let mut scene = DetRng::new(42).derive("scene");
/// assert_ne!(clock.next_u64(), scene.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    inner: StdRng,
}

impl DetRng {
    /// Creates a stream from a root seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Returns the seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream keyed by `label`.
    ///
    /// The child seed is a stable hash of `(parent seed, label)`; the same
    /// parent and label always produce the same child stream.
    pub fn derive(&self, label: &str) -> DetRng {
        DetRng::new(mix(self.seed, label))
    }

    /// Derives an independent child stream keyed by a numeric index, e.g.
    /// a node id.
    pub fn derive_indexed(&self, label: &str, index: u64) -> DetRng {
        DetRng::new(mix(self.seed, label).wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Draws a uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Draws a uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Draws a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty uniform range");
        lo + (hi - lo) * self.uniform()
    }

    /// Draws a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty uniform range");
        self.inner.gen_range(lo..hi)
    }

    /// Draws from a symmetric range `[-bound, bound]`.
    pub fn symmetric(&mut self, bound: f64) -> f64 {
        self.uniform_range(-bound, bound.max(f64::MIN_POSITIVE))
    }

    /// Draws a standard-normal variate via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1: f64 = self.uniform().max(f64::MIN_POSITIVE);
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Access the underlying [`rand`] generator for APIs that need one.
    pub fn as_rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// Stable 64-bit mix of a seed and a label (FNV-1a over the label, folded
/// with the seed). Not cryptographic; just well-spread and stable across
/// platforms and compiler versions.
fn mix(seed: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    // Final avalanche (splitmix64 finalizer).
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        // Overwhelmingly unlikely to collide on the first draw.
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derivation_is_stable_and_label_sensitive() {
        let root = DetRng::new(99);
        assert_eq!(root.derive("x").seed(), root.derive("x").seed());
        assert_ne!(root.derive("x").seed(), root.derive("y").seed());
        assert_ne!(
            root.derive_indexed("node", 0).seed(),
            root.derive_indexed("node", 1).seed()
        );
    }

    #[test]
    fn uniform_in_range() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let v = r.uniform_range(2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
            let i = r.uniform_u64(10, 20);
            assert!((10..20).contains(&i));
        }
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut r = DetRng::new(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    #[should_panic(expected = "empty uniform range")]
    fn empty_range_panics() {
        DetRng::new(0).uniform_range(1.0, 1.0);
    }
}
