//! Deterministic priority event queue.
//!
//! Events are ordered by timestamp; events with equal timestamps pop in the
//! order they were pushed (FIFO tie-break by a monotonically increasing
//! sequence number). This is what makes the whole simulation deterministic:
//! a plain heap alone gives no guarantee for equal keys.
//!
//! # Implementation: a two-level calendar queue
//!
//! [`EventQueue`] is a *calendar queue* (Brown 1988) specialized for the
//! kernel's scheduling pattern, where the overwhelming majority of events
//! fire a short delay after the current time:
//!
//! * a **near-future window** of `NUM_BUCKETS` (512) buckets, each covering a
//!   power-of-two span of simulated time. Pushing into the window appends
//!   to a bucket (amortized O(1)); popping takes from the current bucket,
//!   which is sorted lazily the first time it is consumed;
//! * a **far-future heap** for events beyond the window. When the window
//!   empties, it is re-anchored at the heap's earliest event and the
//!   bucket width is re-derived from the observed spread of the next
//!   batch of far events, so the queue adapts to both microsecond-scale
//!   kernel chatter and second-scale application timers.
//!
//! The pop order is **exactly** that of a binary heap ordered by
//! `(time, seq)` — bit-for-bit, for any interleaving of pushes and pops —
//! which [`reference::ReferenceQueue`] (the previous implementation) keeps
//! checkable: the property tests below drive both queues with arbitrary
//! workloads and require identical pop sequences.
//!
//! # Sequence numbers and [`EventQueue::clear`]
//!
//! `clear()` discards pending events but deliberately does **not** reset
//! the internal sequence counter: FIFO tie-breaking only ever compares
//! events that coexist in the queue, so a monotonically continuing counter
//! yields the same pop order as a reset one, while making every event's
//! sequence number unique across the whole run — replays that clear the
//! queue mid-run (e.g. on application termination) stay deterministic and
//! their event identities stay unambiguous. [`EventQueue::events_pushed`]
//! exposes the counter so this persistence is testable.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

pub mod reference;

/// Number of near-future buckets. A power of two so the bucket index is a
/// shift and mask away from the timestamp.
const NUM_BUCKETS: usize = 512;

/// Default log2 bucket width in nanoseconds (1 µs buckets → a 512 µs
/// window), matching the kernel's context-switch/display-write scale.
const DEFAULT_SHIFT: u32 = 10;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// One near-future bucket: entries in arbitrary order until first
/// consumed, then kept sorted **descending** by `(time, seq)` so the
/// minimum pops from the back in O(1).
#[derive(Debug)]
struct Bucket<E> {
    items: Vec<Entry<E>>,
    sorted: bool,
}

impl<E> Bucket<E> {
    const fn new() -> Self {
        Bucket {
            items: Vec::new(),
            sorted: true,
        }
    }

    /// Appends without sorting; consumption sorts lazily.
    #[inline]
    fn push_lazy(&mut self, entry: Entry<E>) {
        self.sorted = false;
        self.items.push(entry);
    }

    /// Inserts keeping descending order, so the current bucket stays
    /// consumable in O(1) between pops.
    #[inline]
    fn push_sorted(&mut self, entry: Entry<E>) {
        if !self.sorted {
            self.items.push(entry);
            return;
        }
        // Descending order: the minimum lives at the back; a new
        // minimum appends in O(1), anything else binary-searches its
        // slot. Current-bucket occupancy is small (a handful of
        // events within one bucket width), so the insert memmove is
        // cheap.
        let key = entry.key();
        if self.items.last().is_none_or(|last| last.key() > key) {
            self.items.push(entry);
            return;
        }
        let pos = self.items.partition_point(|e| e.key() > key);
        self.items.insert(pos, entry);
    }

    /// Sorts descending if needed, then pops the minimum entry.
    #[inline]
    fn pop_min(&mut self) -> Option<Entry<E>> {
        if !self.sorted {
            self.items
                .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
            self.sorted = true;
        }
        self.items.pop()
    }

    /// The minimum `(time, seq)` key, without mutating.
    #[inline]
    fn min_key(&self) -> Option<(SimTime, u64)> {
        if self.sorted {
            self.items.last().map(Entry::key)
        } else {
            self.items.iter().map(Entry::key).min()
        }
    }
}

/// A timestamp-ordered queue of pending events with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use des::queue::EventQueue;
/// use des::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(5), "late");
/// q.push(SimTime::from_nanos(1), "early");
/// q.push(SimTime::from_nanos(5), "late-second");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(5), "late")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(5), "late-second")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Near-future window: bucket `i` covers
    /// `[epoch + (i << shift), epoch + ((i + 1) << shift))`.
    buckets: Vec<Bucket<E>>,
    /// Index of the first possibly non-empty bucket.
    cur: usize,
    /// Start time (ns) of bucket 0's span.
    epoch: u64,
    /// log2 of the bucket width in nanoseconds.
    shift: u32,
    /// Far-future events (at or beyond the window end).
    far: BinaryHeap<Reverse<Entry<E>>>,
    /// Events currently queued (near + far).
    len: usize,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..NUM_BUCKETS).map(|_| Bucket::new()).collect(),
            cur: 0,
            epoch: 0,
            shift: DEFAULT_SHIFT,
            far: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
        }
    }

    /// Creates an empty queue with far-future space for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = EventQueue::new();
        q.far = BinaryHeap::with_capacity(capacity);
        q
    }

    /// The raw (unclamped) bucket index for `t`: how many bucket widths
    /// past the epoch it lies. `NUM_BUCKETS` or more means "beyond the
    /// near window".
    ///
    /// This is deliberately **checked**, not clamped: the previous
    /// implementation computed a saturating window end and clamped
    /// beyond-window indices into the last bucket, which is only sound
    /// while every far-heap event is later than every bucketed event.
    /// Re-anchoring around a batch wider than the largest representable
    /// window (events near `u64::MAX` mixed with near-future ones)
    /// broke that invariant: the clamped far-horizon event popped from
    /// bucket 511 ahead of earlier events parked in the far heap.
    #[inline]
    fn raw_index(&self, t: u64) -> u64 {
        (t.saturating_sub(self.epoch)) >> self.shift
    }

    /// The in-window bucket index for `t`, clamped below to `cur`.
    ///
    /// Times before the current bucket's span (legal: the queue API does
    /// not forbid pushing "into the past") land in the current bucket,
    /// where within-bucket ordering still pops them first. The caller
    /// guarantees `raw_index(t) < NUM_BUCKETS`.
    #[inline]
    fn bucket_index(&self, t: u64) -> usize {
        let idx = self.raw_index(t) as usize;
        debug_assert!(idx < NUM_BUCKETS, "beyond-window time routed to a bucket");
        idx.max(self.cur)
    }

    /// Enqueues `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let entry = Entry { time, seq, event };
        let t = time.as_nanos();
        // Beyond the window — or the window is fully consumed
        // (`cur == NUM_BUCKETS`): park in the far heap; the next pop
        // re-anchors the window around it.
        if self.cur >= NUM_BUCKETS || self.raw_index(t) >= NUM_BUCKETS as u64 {
            self.far.push(Reverse(entry));
            return;
        }
        let idx = self.bucket_index(t);
        if idx == self.cur {
            // The current bucket is consumed between pushes; keeping it
            // sorted preserves O(1) peek/pop for the dominant
            // schedule-now / tiny-delay pattern.
            self.buckets[idx].push_sorted(entry);
        } else {
            self.buckets[idx].push_lazy(entry);
        }
    }

    /// Advances `cur` past empty buckets; returns the index of the first
    /// non-empty bucket, or `None` if the window is exhausted.
    #[inline]
    fn advance_to_nonempty(&mut self) -> Option<usize> {
        while self.cur < NUM_BUCKETS {
            if !self.buckets[self.cur].items.is_empty() {
                return Some(self.cur);
            }
            self.cur += 1;
        }
        None
    }

    /// Re-anchors the (empty) near window at the far heap's earliest
    /// event and re-derives the bucket width from the spread of the next
    /// batch, then drains every far event inside the new window into the
    /// buckets. Caller guarantees `far` is non-empty and all buckets are
    /// empty.
    fn re_anchor(&mut self) {
        debug_assert!(self.buckets.iter().all(|b| b.items.is_empty()));
        // Pull up to one bucket's worth of events to size the window.
        let mut batch: Vec<Entry<E>> = Vec::with_capacity(NUM_BUCKETS.min(self.far.len()));
        while batch.len() < NUM_BUCKETS {
            match self.far.pop() {
                Some(Reverse(e)) => batch.push(e),
                None => break,
            }
        }
        let min_t = batch.first().expect("re_anchor on empty far heap").time;
        let max_t = batch.last().expect("nonempty batch").time;
        let span = max_t.as_nanos() - min_t.as_nanos();
        // Aim for roughly one batch event per bucket: width ≥ span / N,
        // clamped so degenerate spreads stay sane.
        self.shift = if span == 0 {
            DEFAULT_SHIFT
        } else {
            (64 - (span / NUM_BUCKETS as u64).leading_zeros()).clamp(1, 40)
        };
        self.epoch = min_t.as_nanos();
        self.cur = 0;
        for e in batch {
            // A clamped bucket width (shift caps at 40) can leave part
            // of the batch beyond the widest representable window; those
            // events go back to the far heap — clamping them into the
            // last bucket would let them pop ahead of earlier far-heap
            // events (the far-horizon overflow bug).
            if self.raw_index(e.time.as_nanos()) >= NUM_BUCKETS as u64 {
                self.far.push(Reverse(e));
            } else {
                let idx = self.bucket_index(e.time.as_nanos());
                self.buckets[idx].push_lazy(e);
            }
        }
        // The window may now cover further far events; the invariant
        // (every far event at/beyond the window end) must be restored.
        while let Some(Reverse(e)) = self.far.peek() {
            if self.raw_index(e.time.as_nanos()) >= NUM_BUCKETS as u64 {
                break;
            }
            let Reverse(e) = self.far.pop().expect("peeked nonempty heap");
            let idx = self.bucket_index(e.time.as_nanos());
            self.buckets[idx].push_lazy(e);
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if let Some(idx) = self.advance_to_nonempty() {
                let e = self.buckets[idx].pop_min().expect("nonempty bucket");
                self.len -= 1;
                return Some((e.time, e.event));
            }
            if self.far.is_empty() {
                return None;
            }
            self.re_anchor();
        }
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        for b in &self.buckets[self.cur..] {
            if let Some((t, _)) = b.min_key() {
                return Some(t);
            }
        }
        self.far.peek().map(|Reverse(e)| e.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all pending events.
    ///
    /// The sequence counter is **not** reset (see the module
    /// documentation): events pushed after a `clear()` continue the
    /// global FIFO numbering, which changes nothing about pop order but
    /// keeps event identities unique across the whole run.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.items.clear();
            b.sorted = true;
        }
        self.cur = 0;
        self.far.clear();
        self.len = 0;
    }

    /// Total events ever pushed onto this queue — the next event's FIFO
    /// sequence number. Monotonic for the queue's whole lifetime,
    /// *including across [`clear`](Self::clear)*.
    pub fn events_pushed(&self) -> u64 {
        self.next_seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::reference::ReferenceQueue;
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        for &t in &[30u64, 10, 20, 5, 25] {
            q.push(SimTime::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn far_future_events_cross_the_window() {
        let mut q = EventQueue::new();
        // Far beyond the initial window (1 µs × 512 buckets ≈ 0.5 ms).
        q.push(SimTime::from_secs(10), "far");
        q.push(SimTime::from_nanos(1), "near");
        q.push(SimTime::from_secs(3), "mid");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), "near")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "mid")));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(10)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), "far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100), 0);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(100), 0)));
        // Push "into the past" relative to the consumed bucket: the queue
        // API permits it and must still pop in (time, seq) order.
        q.push(SimTime::from_nanos(50), 1);
        q.push(SimTime::from_nanos(150), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(50), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(150), 2)));
    }

    #[test]
    fn sequence_counter_persists_across_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(1), "a");
        q.push(SimTime::from_nanos(2), "b");
        assert_eq!(q.events_pushed(), 2);
        q.clear();
        assert!(q.is_empty());
        // The counter continues — clearing must not recycle sequence
        // numbers (replays from a cleared queue stay deterministic and
        // event identities stay unique).
        assert_eq!(q.events_pushed(), 2);
        q.push(SimTime::from_nanos(1), "c");
        assert_eq!(q.events_pushed(), 3);
        // FIFO ordering among post-clear events is unaffected.
        q.push(SimTime::from_nanos(1), "d");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), "c")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), "d")));
    }

    #[test]
    fn equal_time_burst_spanning_clear_stays_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(3);
        for i in 0..10 {
            q.push(t, i);
        }
        q.clear();
        for i in 10..20 {
            q.push(t, i);
        }
        for i in 10..20 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    /// A far-horizon sentinel (e.g. an "unreachable" timeout near
    /// `u64::MAX`) must never overtake a much earlier event, even when a
    /// re-anchor pulls the sentinel into the near window. Before the
    /// checked-index fix, re-anchoring around a batch wider than the
    /// largest representable window clamped the sentinel into bucket 511,
    /// and a later push landing in the far heap popped *after* it.
    #[test]
    fn far_horizon_sentinel_does_not_overtake_earlier_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::MAX, "sentinel");
        // Re-anchors around [1s, u64::MAX]: the span exceeds the widest
        // window (512 buckets × 2^40 ns), so the sentinel must go back to
        // the far heap, not into the last bucket.
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        // Lands between the window end and the sentinel.
        q.push(SimTime::from_nanos(1 << 50), "b");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1 << 50), "b")));
        assert_eq!(q.pop(), Some((SimTime::MAX, "sentinel")));
        assert_eq!(q.pop(), None);
    }

    /// FIFO must also survive the boundary itself: equal-timestamp events
    /// at `u64::MAX` interleaved with near events.
    #[test]
    fn equal_time_fifo_at_the_u64_boundary() {
        let mut q = EventQueue::new();
        q.push(SimTime::MAX, 0);
        q.push(SimTime::from_nanos(5), 1);
        q.push(SimTime::MAX, 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(5), 1)));
        q.push(SimTime::MAX, 3);
        assert_eq!(q.pop(), Some((SimTime::MAX, 0)));
        assert_eq!(q.pop(), Some((SimTime::MAX, 2)));
        assert_eq!(q.pop(), Some((SimTime::MAX, 3)));
        assert_eq!(q.pop(), None);
    }

    /// One step of the differential workload driver.
    #[derive(Debug, Clone)]
    enum Op {
        Push(u64),
        /// Push at an absolute time near the `u64::MAX` horizon.
        PushFar(u64),
        Pop,
    }

    /// Decodes a `(selector, value)` pair into an [`Op`], weighting the
    /// mix the way a simulation behaves: mostly short-delay pushes, some
    /// equal-timestamp bursts, some horizon-spanning far-future pushes,
    /// a few far-horizon sentinels near `u64::MAX`, and pops from every
    /// window state.
    fn op_strategy() -> impl Strategy<Value = Op> {
        (0u8..10, 0u64..10_000_000_000).prop_map(|(sel, v)| match sel {
            0..=3 => Op::Push(v % 5_000),
            4 | 5 => Op::Push(1_000),
            6 => Op::Push(1_000_000 + v % 9_999_000_000),
            7 => Op::PushFar(u64::MAX - v % 50_000),
            _ => Op::Pop,
        })
    }

    proptest! {
        /// Popping always yields a non-decreasing time sequence, and for
        /// equal times the original insertion order.
        #[test]
        fn pop_sequence_is_sorted_and_stable(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut prev: Option<(SimTime, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((pt, pi)) = prev {
                    prop_assert!(t >= pt);
                    if t == pt {
                        prop_assert!(i > pi, "FIFO violated for equal timestamps");
                    }
                }
                prev = Some((t, i));
            }
        }

        /// Differential test against the reference binary-heap queue: for
        /// arbitrary interleaved push/pop workloads — equal-timestamp
        /// bursts, horizon-spanning delays, pops from every window state —
        /// the calendar queue and the reference queue produce identical
        /// pop sequences.
        #[test]
        fn matches_reference_queue(ops in proptest::collection::vec(op_strategy(), 0..400)) {
            let mut calendar = EventQueue::new();
            let mut reference = ReferenceQueue::new();
            // Drive pushes relative to the last popped time so the
            // workload walks forward through many windows, as a
            // simulation does.
            let mut base = 0u64;
            for (i, op) in ops.iter().enumerate() {
                match op {
                    Op::Push(delay) => {
                        // Saturating: a popped far-horizon sentinel can
                        // leave `base` near the u64 ceiling.
                        let t = SimTime::from_nanos(base.saturating_add(*delay));
                        calendar.push(t, i);
                        reference.push(t, i);
                    }
                    Op::PushFar(t) => {
                        let t = SimTime::from_nanos(*t);
                        calendar.push(t, i);
                        reference.push(t, i);
                    }
                    Op::Pop => {
                        prop_assert_eq!(calendar.peek_time(), reference.peek_time());
                        let a = calendar.pop();
                        let b = reference.pop();
                        prop_assert_eq!(a, b);
                        if let Some((t, _)) = a {
                            base = t.as_nanos();
                        }
                    }
                }
                prop_assert_eq!(calendar.len(), reference.len());
            }
            // Drain both completely.
            loop {
                prop_assert_eq!(calendar.peek_time(), reference.peek_time());
                let a = calendar.pop();
                let b = reference.pop();
                prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
        }

        /// Same differential check under a clear() injected mid-workload.
        #[test]
        fn matches_reference_across_clear(
            before in proptest::collection::vec(0u64..100_000, 0..50),
            after in proptest::collection::vec(0u64..100_000, 0..50),
        ) {
            let mut calendar = EventQueue::new();
            let mut reference = ReferenceQueue::new();
            for (i, &t) in before.iter().enumerate() {
                calendar.push(SimTime::from_nanos(t), i);
                reference.push(SimTime::from_nanos(t), i);
            }
            // Consume half, then clear.
            for _ in 0..before.len() / 2 {
                prop_assert_eq!(calendar.pop(), reference.pop());
            }
            calendar.clear();
            reference.clear();
            prop_assert_eq!(calendar.events_pushed(), reference.events_pushed());
            for (i, &t) in after.iter().enumerate() {
                calendar.push(SimTime::from_nanos(t), i);
                reference.push(SimTime::from_nanos(t), i);
            }
            loop {
                let a = calendar.pop();
                prop_assert_eq!(&a, &reference.pop());
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
