//! Deterministic priority event queue.
//!
//! Events are ordered by timestamp; events with equal timestamps pop in the
//! order they were pushed (FIFO tie-break by a monotonically increasing
//! sequence number). This is what makes the whole simulation deterministic:
//! `BinaryHeap` alone gives no guarantee for equal keys.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A timestamp-ordered queue of pending events with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use des::queue::EventQueue;
/// use des::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(5), "late");
/// q.push(SimTime::from_nanos(1), "early");
/// q.push(SimTime::from_nanos(5), "late-second");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(5), "late")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(5), "late-second")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with space for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Enqueues `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        for &t in &[30u64, 10, 20, 5, 25] {
            q.push(SimTime::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    proptest! {
        /// Popping always yields a non-decreasing time sequence, and for
        /// equal times the original insertion order.
        #[test]
        fn pop_sequence_is_sorted_and_stable(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut prev: Option<(SimTime, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((pt, pi)) = prev {
                    prop_assert!(t >= pt);
                    if t == pt {
                        prop_assert!(i > pi, "FIFO violated for equal timestamps");
                    }
                }
                prev = Some((t, i));
            }
        }
    }
}
