//! Conservative-lookahead sharded event execution.
//!
//! [`ShardedEventLoop`] splits a simulation into `K` shards, each owning
//! its own calendar [`EventQueue`] and local clock. Shards advance
//! independently inside a **lookahead window**: every epoch the engine
//! computes the global minimum next-event time `W` and lets each shard
//! execute all events in `[W, W + L)` in parallel, where `L` is the
//! uniform lookahead (for SUPRENUM, the inter-cluster bus latency floor).
//! Cross-shard sends become timestamped messages buffered in a per-shard
//! outbox and **released at the barrier** that ends the epoch; because a
//! send may not arrive earlier than the window end, no message can affect
//! an event inside the window that produced it — the classic conservative
//! (YAWNS-style) synchronization argument.
//!
//! Determinism is preserved by construction:
//!
//! * within a shard, events pop in `(time, seq)` order exactly as in the
//!   sequential [`EventLoop`](crate::engine::EventLoop);
//! * at each barrier, buffered messages are merged in `(arrival time,
//!   send time, source shard, send order)` order before being pushed to
//!   their destination queues, so the FIFO sequence numbers a
//!   destination assigns never depend on thread timing — nor on how
//!   many worker threads the logical shards are packed onto
//!   ([`ShardedEventLoop::run_threaded`]).
//!
//! Two drive modes are provided:
//!
//! * **closed world** ([`ShardedEventLoop::run_bounded`]): the handler
//!   schedules everything, as with the sequential engine. Used by the
//!   differential tests that prove the synchronization protocol sound.
//! * **streaming** ([`ShardStream`]): an external producer (the SUPRENUM
//!   kernel) generates timestamped events and releases watermarks; each
//!   shard consumes its queue up to the watermark on its own thread while
//!   the producer runs ahead. The watermark plays the role of the null
//!   message: the producer promises never to push an event earlier than
//!   the last released watermark.

use std::sync::mpsc;
use std::thread::JoinHandle;

use crate::engine::StopReason;
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// A cross-shard message waiting for the end-of-epoch barrier.
#[derive(Debug)]
struct Outgoing<E> {
    time: SimTime,
    /// Shard-local time of the event that issued the send. Part of the
    /// barrier merge key so that messages with equal arrival times are
    /// delivered in causal send order, independent of shard layout.
    sent_at: SimTime,
    src: usize,
    dst: usize,
    event: E,
}

/// Per-shard engine state: the shard's calendar queue and local clock.
#[derive(Debug)]
struct ShardState<E> {
    queue: EventQueue<E>,
    now: SimTime,
    steps: u64,
}

impl<E> ShardState<E> {
    fn new() -> Self {
        ShardState {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            steps: 0,
        }
    }
}

/// Handler-side view of one shard during a window.
///
/// Mirrors the sequential engine's scheduling API, split into **local**
/// scheduling (any time at or after `now`) and **cross-shard sends**,
/// which must respect the lookahead window: a message may not arrive
/// before [`ShardCtx::window_end`].
#[derive(Debug)]
pub struct ShardCtx<'a, E> {
    shard: usize,
    num_shards: usize,
    now: SimTime,
    window_end: SimTime,
    lookahead: SimDuration,
    queue: &'a mut EventQueue<E>,
    outbox: &'a mut Vec<Outgoing<E>>,
}

impl<E> ShardCtx<'_, E> {
    /// The index of the shard this handler invocation runs on.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Total number of shards in the engine.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard-local simulated time of the event being handled.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// End (exclusive) of the current lookahead window. Cross-shard
    /// messages may not arrive before this instant.
    pub fn window_end(&self) -> SimTime {
        self.window_end
    }

    /// The engine's uniform lookahead.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Schedules `event` on this shard at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the shard's simulated past.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past ({at} < {})",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` on this shard `delay` after the current time.
    ///
    /// # Panics
    ///
    /// Panics if `now + delay` overflows simulated time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E)
    where
        E: std::fmt::Debug,
    {
        let at = self.now.checked_add(delay).unwrap_or_else(|| {
            panic!(
                "scheduling {event:?} at now={} + delay={delay} overflows simulated time",
                self.now
            )
        });
        self.queue.push(at, event);
    }

    /// Sends `event` to shard `dst`, arriving at absolute time `at`.
    ///
    /// The message is buffered and released at the end-of-epoch barrier;
    /// all barriers merge messages in `(arrival, send time, source
    /// shard, send order)` order, so delivery is deterministic and does
    /// not depend on how logical shards are packed onto worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range or if `at` is earlier than
    /// [`ShardCtx::window_end`] — a conservative engine cannot accept a
    /// message into the window that produced it.
    pub fn send(&mut self, dst: usize, at: SimTime, event: E) {
        assert!(dst < self.num_shards, "shard {dst} out of range");
        assert!(
            at >= self.window_end,
            "cross-shard send arriving at {at} violates the lookahead window \
             (window ends at {})",
            self.window_end
        );
        self.outbox.push(Outgoing {
            time: at,
            sent_at: self.now,
            src: self.shard,
            dst,
            event,
        });
    }

    /// Discards every event still pending on this shard's local queue.
    ///
    /// Used to halt a shard immediately (e.g. when the simulated
    /// application terminates): later-arriving cross-shard messages are
    /// still delivered and popped, but a halted handler can ignore them.
    pub fn clear_local(&mut self) {
        self.queue.clear();
    }

    /// Sends `event` to shard `dst`, arriving `delay` after the current
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is shorter than the engine lookahead (the
    /// conservative contract every cross-shard link must satisfy), or on
    /// simulated-time overflow.
    pub fn send_in(&mut self, dst: usize, delay: SimDuration, event: E)
    where
        E: std::fmt::Debug,
    {
        assert!(
            delay >= self.lookahead,
            "cross-shard send with delay {delay} below the lookahead {}",
            self.lookahead
        );
        let at = self.now.checked_add(delay).unwrap_or_else(|| {
            panic!(
                "sending {event:?} at now={} + delay={delay} overflows simulated time",
                self.now
            )
        });
        self.send(dst, at, event);
    }
}

/// A conservative-lookahead parallel event loop over `K` shards.
///
/// # Examples
///
/// ```
/// use des::shard::ShardedEventLoop;
/// use des::time::{SimDuration, SimTime};
///
/// // Two shards ping-ponging across a 10 µs link.
/// let lookahead = SimDuration::from_micros(10);
/// let mut sim: ShardedEventLoop<u32> = ShardedEventLoop::new(2, lookahead);
/// sim.schedule(0, SimTime::ZERO, 0);
/// let mut counts = vec![0u32; 2];
/// sim.run(&mut counts, |count, ctx, _now, hop| {
///     *count += 1;
///     if hop < 4 {
///         ctx.send_in(1 - ctx.shard(), ctx.lookahead(), hop + 1);
///     }
/// });
/// assert_eq!(counts, vec![3, 2]);
/// ```
#[derive(Debug)]
pub struct ShardedEventLoop<E> {
    shards: Vec<ShardState<E>>,
    lookahead: SimDuration,
    epochs: u64,
    scheduled: u64,
}

impl<E: Send> ShardedEventLoop<E> {
    /// Creates an engine with `num_shards` empty shards and the given
    /// uniform lookahead.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or `lookahead` is zero — a
    /// conservative engine with zero lookahead cannot make progress.
    pub fn new(num_shards: usize, lookahead: SimDuration) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        assert!(
            !lookahead.is_zero(),
            "conservative lookahead must be nonzero"
        );
        ShardedEventLoop {
            shards: (0..num_shards).map(|_| ShardState::new()).collect(),
            lookahead,
            epochs: 0,
            scheduled: 0,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The engine's uniform lookahead.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Local clock of shard `shard`.
    pub fn shard_now(&self, shard: usize) -> SimTime {
        self.shards[shard].now
    }

    /// Total pending events across all shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Total events handled across all shards and all `run*` calls.
    pub fn steps_handled(&self) -> u64 {
        self.shards.iter().map(|s| s.steps).sum()
    }

    /// Events handled per shard, in shard order — the engine's load
    /// profile. `total / max` bounds the speedup any thread packing
    /// could extract from this run's event distribution.
    pub fn shard_steps(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.steps).collect()
    }

    /// Total events ever scheduled (including delivered messages).
    pub fn events_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Number of lookahead windows executed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Schedules `event` on `shard` at absolute time `at` (initial
    /// population; handlers use [`ShardCtx`]).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or `at` lies in that shard's
    /// simulated past.
    pub fn schedule(&mut self, shard: usize, at: SimTime, event: E) {
        let s = &mut self.shards[shard];
        assert!(
            at >= s.now,
            "cannot schedule event in the past ({at} < {})",
            s.now
        );
        self.scheduled += 1;
        s.queue.push(at, event);
    }

    /// Runs until every shard drains, invoking `handler` for each event.
    ///
    /// `states` provides one mutable per-shard state slot (logs,
    /// accumulators, model state); each shard's handler invocations see
    /// only that shard's slot, so no locking is needed.
    pub fn run<S, F>(&mut self, states: &mut [S], handler: F) -> StopReason
    where
        S: Send,
        F: Fn(&mut S, &mut ShardCtx<'_, E>, SimTime, E) + Sync,
    {
        self.run_bounded(states, SimTime::MAX, u64::MAX, handler)
    }

    /// Runs until every shard drains, `horizon` is passed, or the global
    /// step budget is exhausted.
    ///
    /// Semantics match the sequential engine with two caveats inherent to
    /// windowed execution: the horizon and budget are checked at epoch
    /// granularity (a shard may finish its window before stopping), and
    /// the budget is therefore approximate — the engine stops at the
    /// first epoch boundary at or after `max_steps` total events.
    ///
    /// # Panics
    ///
    /// Panics if `states` does not provide exactly one slot per shard.
    pub fn run_bounded<S, F>(
        &mut self,
        states: &mut [S],
        horizon: SimTime,
        max_steps: u64,
        handler: F,
    ) -> StopReason
    where
        S: Send,
        F: Fn(&mut S, &mut ShardCtx<'_, E>, SimTime, E) + Sync,
    {
        let threads = self.shards.len();
        self.run_threaded(
            states,
            horizon,
            max_steps,
            threads,
            handler,
            |_| (),
            |_, _: Vec<()>| {},
        )
    }

    /// Like [`run_bounded`](Self::run_bounded), but with the worker
    /// thread count decoupled from the logical shard count, plus a
    /// per-epoch collection hook.
    ///
    /// Logical shards are packed onto `threads` **persistent** worker
    /// threads in contiguous ranges (with `threads <= 1` everything runs
    /// inline on the caller's thread). The execution — pop order, FIFO
    /// sequence assignment, barrier merge order — is *identical for
    /// every thread count*: windows are computed globally and cross-shard
    /// messages always pass through the barrier in `(arrival, send time,
    /// source shard, send order)` order, even between shards sharing a
    /// worker. The thread count is purely a parallelism knob.
    ///
    /// After every epoch's barrier, `collect` runs against each state
    /// that participated in the epoch (on its worker thread) and the
    /// results are passed — in shard order — to `epoch_hook` on the
    /// caller's thread, together with a watermark: the next window's
    /// start time (no event executes before it after this call), or
    /// [`SimTime::MAX`] once the engine has drained. This is the seam a
    /// producer uses to stream per-shard output (e.g. monitoring
    /// emissions) to a consumer with a conservative lower bound on all
    /// future event times.
    ///
    /// # Panics
    ///
    /// Panics if `states` does not provide exactly one slot per shard.
    #[allow(clippy::too_many_arguments)]
    pub fn run_threaded<S, T, F, C, H>(
        &mut self,
        states: &mut [S],
        horizon: SimTime,
        max_steps: u64,
        threads: usize,
        handler: F,
        collect: C,
        mut epoch_hook: H,
    ) -> StopReason
    where
        S: Send,
        T: Send,
        F: Fn(&mut S, &mut ShardCtx<'_, E>, SimTime, E) + Sync,
        C: Fn(&mut S) -> T + Sync,
        H: FnMut(SimTime, Vec<T>),
    {
        assert_eq!(
            states.len(),
            self.shards.len(),
            "need exactly one state slot per shard"
        );
        let num_shards = self.shards.len();
        let lookahead = self.lookahead;
        if threads <= 1 || num_shards == 1 {
            return self.run_inline(
                states,
                horizon,
                max_steps,
                &handler,
                &collect,
                &mut epoch_hook,
            );
        }

        let chunk = num_shards.div_ceil(threads.min(num_shards));
        let mut epochs = 0u64;
        let mut scheduled = 0u64;
        let mut peeks: Vec<Option<SimTime>> =
            self.shards.iter().map(|s| s.queue.peek_time()).collect();
        // Messages merged at a barrier but not yet flushed to their
        // worker, per destination shard, in global merge order.
        let mut pending: Vec<Vec<(SimTime, E)>> = (0..num_shards).map(|_| Vec::new()).collect();

        let stop = std::thread::scope(|scope| {
            let mut cmd_txs: Vec<mpsc::Sender<EpochCmd<E>>> = Vec::new();
            let mut res_rxs: Vec<mpsc::Receiver<EpochOut<E, T>>> = Vec::new();
            let mut handles = Vec::new();
            for (w, (shard_chunk, state_chunk)) in self
                .shards
                .chunks_mut(chunk)
                .zip(states.chunks_mut(chunk))
                .enumerate()
            {
                let (tx, rx) = mpsc::channel::<EpochCmd<E>>();
                let (res_tx, res_rx) = mpsc::channel::<EpochOut<E, T>>();
                cmd_txs.push(tx);
                res_rxs.push(res_rx);
                let handler = &handler;
                let collect = &collect;
                let base = w * chunk;
                let handle = std::thread::Builder::new()
                    .name(format!("engine-shard-{w}"))
                    .spawn_scoped(scope, move || {
                        worker_loop(
                            base,
                            shard_chunk,
                            state_chunk,
                            num_shards,
                            lookahead,
                            horizon,
                            &rx,
                            &res_tx,
                            handler,
                            collect,
                        );
                    })
                    .expect("spawn engine shard worker");
                handles.push(Some(handle));
            }
            let mut handled = 0u64;

            // Earliest relevant time for a shard: its queue head or its
            // oldest undelivered barrier message, whichever is first.
            // (`pending` entries are merge-ordered with arrival time as
            // the primary key, so the first entry is the earliest.)
            let next_time = |peeks: &[Option<SimTime>], pending: &[Vec<(SimTime, E)>], i: usize| {
                let queued = peeks[i];
                let buffered = pending[i].first().map(|&(t, _)| t);
                match (queued, buffered) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            };

            loop {
                let window_start = (0..num_shards)
                    .filter_map(|i| next_time(&peeks, &pending, i))
                    .min();
                let window_start = match window_start {
                    None => break StopReason::Drained,
                    Some(w) if w > horizon => break StopReason::Horizon,
                    Some(w) => w,
                };
                if handled >= max_steps {
                    break StopReason::StepBudget;
                }
                let budget = max_steps - handled;
                let window_end = window_start.saturating_add(lookahead);
                let inclusive = window_start == SimTime::MAX;
                epochs += 1;

                // Dispatch only workers that have something to do this
                // window; the rest stay parked with no round-trip.
                let mut dispatched = Vec::new();
                for (w, tx) in cmd_txs.iter().enumerate() {
                    let range = (w * chunk)..(((w + 1) * chunk).min(num_shards));
                    let active = range.clone().any(|i| {
                        next_time(&peeks, &pending, i)
                            .is_some_and(|t| t <= horizon && (t < window_end || inclusive))
                    });
                    if !active {
                        continue;
                    }
                    let mut deliveries = Vec::new();
                    for i in range {
                        for (t, ev) in pending[i].drain(..) {
                            deliveries.push((i, t, ev));
                        }
                    }
                    tx.send(EpochCmd {
                        window_end,
                        inclusive,
                        budget,
                        deliveries,
                    })
                    .expect("engine shard worker hung up");
                    dispatched.push(w);
                }

                let mut budget_hit = false;
                let mut messages: Vec<Outgoing<E>> = Vec::new();
                let mut collected: Vec<T> = Vec::new();
                // Awaiting in worker order keeps `collected` in shard
                // order without an explicit sort.
                for &w in &dispatched {
                    let out = match recv_spin(&res_rxs[w]) {
                        Ok(out) => out,
                        // The worker died mid-window: join it to recover
                        // the original panic payload so the caller sees
                        // the handler's message, not a channel error.
                        Err(_) => {
                            let handle = handles[w].take().expect("worker result channel reused");
                            match handle.join() {
                                Err(payload) => std::panic::resume_unwind(payload),
                                Ok(()) => unreachable!("worker exited while coordinator live"),
                            }
                        }
                    };
                    handled += out.steps;
                    budget_hit |= out.budget_hit;
                    messages.extend(out.outbox);
                    for (i, p) in out.peeks {
                        peeks[i] = p;
                    }
                    collected.extend(out.collected);
                }
                // Barrier: merge in (arrival, send time, source shard,
                // send order) order — identical for every thread count.
                messages.sort_by_key(|m| (m.time, m.sent_at, m.src));
                for m in messages {
                    scheduled += 1;
                    pending[m.dst].push((m.time, m.event));
                }
                let watermark = (0..num_shards)
                    .filter_map(|i| next_time(&peeks, &pending, i))
                    .min()
                    .unwrap_or(SimTime::MAX);
                epoch_hook(watermark, collected);
                if budget_hit {
                    break StopReason::StepBudget;
                }
            }
        });
        self.epochs += epochs;
        self.scheduled += scheduled;
        stop
    }

    /// The single-threaded twin of the worker protocol: same windows,
    /// same merge order, no threads.
    fn run_inline<S, T, F, C, H>(
        &mut self,
        states: &mut [S],
        horizon: SimTime,
        max_steps: u64,
        handler: &F,
        collect: &C,
        epoch_hook: &mut H,
    ) -> StopReason
    where
        F: Fn(&mut S, &mut ShardCtx<'_, E>, SimTime, E),
        C: Fn(&mut S) -> T,
        H: FnMut(SimTime, Vec<T>),
    {
        let num_shards = self.shards.len();
        let lookahead = self.lookahead;
        let mut handled = 0u64;
        loop {
            let window_start = match self.shards.iter().filter_map(|s| s.queue.peek_time()).min() {
                None => return StopReason::Drained,
                Some(w) if w > horizon => return StopReason::Horizon,
                Some(w) => w,
            };
            if handled >= max_steps {
                return StopReason::StepBudget;
            }
            let budget = max_steps - handled;
            let window_end = window_start.saturating_add(lookahead);
            // Saturation corner: once every remaining event sits at the
            // u64 ceiling, `[W, W + L)` is empty and the window must
            // become inclusive or the engine would spin forever. No send
            // can target an earlier time, so inclusivity is safe.
            let inclusive = window_start == SimTime::MAX;
            self.epochs += 1;

            let mut budget_hit = false;
            let mut messages: Vec<Outgoing<E>> = Vec::new();
            let mut collected = Vec::with_capacity(num_shards);
            for (i, (shard, state)) in self.shards.iter_mut().zip(states.iter_mut()).enumerate() {
                let (outbox, steps, hit) = run_window(
                    shard, state, i, num_shards, window_end, inclusive, horizon, budget, lookahead,
                    handler,
                );
                handled += steps;
                budget_hit |= hit;
                messages.extend(outbox);
                collected.push(collect(state));
            }
            // Stable sort keeps each source's send order for equal keys.
            messages.sort_by_key(|m| (m.time, m.sent_at, m.src));
            for m in messages {
                self.scheduled += 1;
                self.shards[m.dst].queue.push(m.time, m.event);
            }
            let watermark = self
                .shards
                .iter()
                .filter_map(|s| s.queue.peek_time())
                .min()
                .unwrap_or(SimTime::MAX);
            epoch_hook(watermark, collected);
            if budget_hit {
                return StopReason::StepBudget;
            }
        }
    }
}

/// One epoch's marching orders for a worker.
struct EpochCmd<E> {
    window_end: SimTime,
    inclusive: bool,
    budget: u64,
    /// Barrier messages for this worker's shards, in global merge order:
    /// `(global destination shard, arrival time, event)`.
    deliveries: Vec<(usize, SimTime, E)>,
}

/// One epoch's results from a worker.
struct EpochOut<E, T> {
    outbox: Vec<Outgoing<E>>,
    steps: u64,
    budget_hit: bool,
    /// Refreshed queue-head times for every shard this worker owns.
    peeks: Vec<(usize, Option<SimTime>)>,
    /// Per-owned-shard collection results, in shard order.
    collected: Vec<T>,
}

/// Spin briefly before parking on the channel: epochs are short enough
/// that a blocking receive's wake-up latency would dominate.
fn recv_spin<T>(rx: &mpsc::Receiver<T>) -> Result<T, mpsc::RecvError> {
    for _ in 0..10_000 {
        match rx.try_recv() {
            Ok(v) => return Ok(v),
            Err(mpsc::TryRecvError::Empty) => std::hint::spin_loop(),
            Err(mpsc::TryRecvError::Disconnected) => return Err(mpsc::RecvError),
        }
    }
    rx.recv()
}

/// A persistent worker: owns a contiguous range of logical shards for
/// the whole run and executes one lookahead window per command.
#[allow(clippy::too_many_arguments)]
fn worker_loop<E, S, T, F, C>(
    base: usize,
    shards: &mut [ShardState<E>],
    states: &mut [S],
    num_shards: usize,
    lookahead: SimDuration,
    horizon: SimTime,
    rx: &mpsc::Receiver<EpochCmd<E>>,
    tx: &mpsc::Sender<EpochOut<E, T>>,
    handler: &F,
    collect: &C,
) where
    F: Fn(&mut S, &mut ShardCtx<'_, E>, SimTime, E),
    C: Fn(&mut S) -> T,
{
    while let Ok(cmd) = recv_spin(rx) {
        for (dst, t, ev) in cmd.deliveries {
            shards[dst - base].queue.push(t, ev);
        }
        let mut outbox: Vec<Outgoing<E>> = Vec::new();
        let mut steps = 0u64;
        let mut budget_hit = false;
        let mut collected = Vec::with_capacity(states.len());
        for (i, (shard, state)) in shards.iter_mut().zip(states.iter_mut()).enumerate() {
            let (out, s, hit) = run_window(
                shard,
                state,
                base + i,
                num_shards,
                cmd.window_end,
                cmd.inclusive,
                horizon,
                cmd.budget,
                lookahead,
                handler,
            );
            steps += s;
            budget_hit |= hit;
            outbox.extend(out);
            collected.push(collect(state));
        }
        let peeks = shards
            .iter()
            .enumerate()
            .map(|(i, s)| (base + i, s.queue.peek_time()))
            .collect();
        if tx
            .send(EpochOut {
                outbox,
                steps,
                budget_hit,
                peeks,
                collected,
            })
            .is_err()
        {
            break;
        }
    }
}

/// Executes one shard's share of a lookahead window. Returns the shard's
/// outbox, the number of events it handled, and whether the step budget
/// was exhausted mid-window.
#[allow(clippy::too_many_arguments)]
fn run_window<E, S, F>(
    shard: &mut ShardState<E>,
    state: &mut S,
    index: usize,
    num_shards: usize,
    window_end: SimTime,
    inclusive: bool,
    horizon: SimTime,
    budget: u64,
    lookahead: SimDuration,
    handler: &F,
) -> (Vec<Outgoing<E>>, u64, bool)
where
    F: Fn(&mut S, &mut ShardCtx<'_, E>, SimTime, E),
{
    let mut outbox = Vec::new();
    let mut steps = 0u64;
    while let Some(t) = shard.queue.peek_time() {
        if t > horizon || !(t < window_end || inclusive) {
            break;
        }
        if steps >= budget {
            return (outbox, steps, true);
        }
        let (t, event) = shard.queue.pop().expect("peeked nonempty queue");
        debug_assert!(t >= shard.now, "shard queue went backwards in time");
        shard.now = t;
        shard.steps += 1;
        steps += 1;
        let mut ctx = ShardCtx {
            shard: index,
            num_shards,
            now: t,
            window_end,
            lookahead,
            queue: &mut shard.queue,
            outbox: &mut outbox,
        };
        handler(state, &mut ctx, t, event);
    }
    (outbox, steps, false)
}

/// Producer-side message to a streaming shard worker.
enum StreamMsg<E> {
    /// A batch of `(time, event)` pairs for the worker's queue.
    Batch(Vec<(SimTime, E)>),
    /// Permission to execute every queued event strictly before the
    /// watermark: the producer promises never to push an earlier event.
    Release(SimTime),
}

/// Events buffered per shard before they are flushed to the worker.
const STREAM_BATCH: usize = 8 * 1024;

/// A streaming sharded executor: long-lived worker threads consume
/// per-shard event streams up to producer-released watermarks.
///
/// This is the engine mode the measurement pipeline uses: the SUPRENUM
/// kernel (the producer) stays sequential and authoritative over
/// simulated time, while the monitoring plane's expansion/detection work
/// executes on the shard workers, overlapped with the kernel via
/// watermark epochs. The watermark is the conservative lookahead bound:
/// [`ShardStream::push`] rejects events earlier than the last released
/// watermark, exactly as a conservative engine rejects a message into a
/// closed window.
///
/// # Examples
///
/// ```
/// use des::shard::ShardStream;
/// use des::time::SimTime;
///
/// let mut stream: ShardStream<u64, Vec<u64>> =
///     ShardStream::spawn(vec![Vec::new(), Vec::new()], |log, _shard, _t, v| log.push(v));
/// stream.push(0, SimTime::from_nanos(5), 50);
/// stream.push(1, SimTime::from_nanos(3), 30);
/// stream.release(SimTime::from_nanos(10));
/// let logs = stream.finish();
/// assert_eq!(logs, vec![vec![50], vec![30]]);
/// ```
pub struct ShardStream<E, S> {
    senders: Vec<mpsc::Sender<StreamMsg<E>>>,
    workers: Vec<JoinHandle<S>>,
    pending: Vec<Vec<(SimTime, E)>>,
    watermark: SimTime,
    pushed: u64,
}

impl<E, S> std::fmt::Debug for ShardStream<E, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardStream")
            .field("num_shards", &self.senders.len())
            .field("watermark", &self.watermark)
            .field("pushed", &self.pushed)
            .finish_non_exhaustive()
    }
}

impl<E, S> ShardStream<E, S>
where
    E: Send + 'static,
    S: Send + 'static,
{
    /// Spawns one worker thread per state slot. Each worker owns its
    /// state and its calendar [`EventQueue`]; `handler` runs on the
    /// worker thread for every released event, in `(time, push order)`
    /// order within the shard.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty.
    pub fn spawn<F>(states: Vec<S>, handler: F) -> Self
    where
        F: Fn(&mut S, usize, SimTime, E) + Send + Sync + 'static,
    {
        assert!(!states.is_empty(), "need at least one shard");
        let handler = std::sync::Arc::new(handler);
        let mut senders = Vec::with_capacity(states.len());
        let mut workers = Vec::with_capacity(states.len());
        let num_shards = states.len();
        for (index, mut state) in states.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel::<StreamMsg<E>>();
            let handler = handler.clone();
            let builder = std::thread::Builder::new().name(format!("shard-{index}/{num_shards}"));
            let handle = builder
                .spawn(move || {
                    let mut queue: EventQueue<E> = EventQueue::new();
                    let run_to = |queue: &mut EventQueue<E>,
                                  state: &mut S,
                                  watermark: SimTime,
                                  inclusive: bool| {
                        while let Some(t) = queue.peek_time() {
                            if !(t < watermark || inclusive) {
                                break;
                            }
                            let (t, event) = queue.pop().expect("peeked nonempty queue");
                            handler(state, index, t, event);
                        }
                    };
                    for msg in rx {
                        match msg {
                            StreamMsg::Batch(batch) => {
                                for (t, event) in batch {
                                    queue.push(t, event);
                                }
                            }
                            StreamMsg::Release(w) => {
                                run_to(&mut queue, &mut state, w, w == SimTime::MAX);
                            }
                        }
                    }
                    // Producer hung up: everything still queued is final.
                    run_to(&mut queue, &mut state, SimTime::MAX, true);
                    state
                })
                .expect("spawn shard worker");
            senders.push(tx);
            workers.push(handle);
        }
        ShardStream {
            senders,
            workers,
            pending: (0..num_shards).map(|_| Vec::new()).collect(),
            watermark: SimTime::ZERO,
            pushed: 0,
        }
    }

    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// The last released watermark.
    pub fn watermark(&self) -> SimTime {
        self.watermark
    }

    /// Total events pushed so far.
    pub fn events_pushed(&self) -> u64 {
        self.pushed
    }

    /// Queues `event` for `shard` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range, or if `at` is earlier than the
    /// current watermark — the producer contract (a conservative
    /// lookahead bound) forbids pushing into a released window.
    pub fn push(&mut self, shard: usize, at: SimTime, event: E) {
        assert!(
            at >= self.watermark,
            "push at {at} violates the released watermark {}",
            self.watermark
        );
        self.pushed += 1;
        let buf = &mut self.pending[shard];
        buf.push((at, event));
        if buf.len() >= STREAM_BATCH {
            let batch = std::mem::take(buf);
            self.send(shard, StreamMsg::Batch(batch));
        }
    }

    /// Flushes buffered events and releases `watermark`: every shard may
    /// now execute all queued events strictly before it. Watermarks must
    /// be non-decreasing.
    pub fn release(&mut self, watermark: SimTime) {
        assert!(
            watermark >= self.watermark,
            "watermark went backwards ({watermark} < {})",
            self.watermark
        );
        self.watermark = watermark;
        for shard in 0..self.senders.len() {
            if !self.pending[shard].is_empty() {
                let batch = std::mem::take(&mut self.pending[shard]);
                self.send(shard, StreamMsg::Batch(batch));
            }
            self.send(shard, StreamMsg::Release(watermark));
        }
    }

    /// Flushes remaining events, waits for every worker to drain, and
    /// returns the per-shard states.
    ///
    /// # Panics
    ///
    /// Re-raises any panic that occurred on a worker thread.
    pub fn finish(mut self) -> Vec<S> {
        for shard in 0..self.senders.len() {
            if !self.pending[shard].is_empty() {
                let batch = std::mem::take(&mut self.pending[shard]);
                self.send(shard, StreamMsg::Batch(batch));
            }
        }
        drop(std::mem::take(&mut self.senders));
        self.workers
            .drain(..)
            .map(|h| match h.join() {
                Ok(state) => state,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }

    /// Sends to a worker, surfacing the worker's own panic if it died.
    fn send(&mut self, shard: usize, msg: StreamMsg<E>) {
        if self.senders[shard].send(msg).is_err() {
            // The worker can only have exited by panicking (it never
            // returns while its receiver is alive); join to re-raise the
            // real panic instead of a bare SendError.
            let handle = self.workers.remove(shard);
            match handle.join() {
                Err(payload) => std::panic::resume_unwind(payload),
                Ok(_) => unreachable!("shard worker exited with its channel open"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EventLoop;
    use proptest::prelude::*;

    /// A deterministic toy protocol shared by the sequential oracle and
    /// the sharded engine: each event carries a unique id; the handler
    /// derives follow-up work purely from `(id, shard)`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Ev {
        id: u64,
        hops: u8,
    }

    /// Pure derivation of the follow-up actions for an event. Times are
    /// id-salted so every event in a run has a distinct timestamp, which
    /// makes the sequential/sharded comparison exact (no cross-engine
    /// tie-break ambiguity; FIFO ties are covered by the directed tests).
    fn follow_ups(ev: Ev, shard: usize, num_shards: usize) -> Vec<(usize, SimDuration, Ev)> {
        if ev.hops == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let next = Ev {
            id: ev.id * 7 + 1,
            hops: ev.hops - 1,
        };
        // A local follow-up with an id-salted short delay.
        out.push((shard, SimDuration::from_nanos(1 + (ev.id % 977)), next));
        if num_shards > 1 && ev.id.is_multiple_of(3) {
            let dst = (shard + 1 + (ev.id as usize % (num_shards - 1))) % num_shards;
            let remote = Ev {
                id: ev.id * 7 + 2,
                hops: ev.hops - 1,
            };
            out.push((
                dst,
                LOOKAHEAD + SimDuration::from_nanos(ev.id % 977),
                remote,
            ));
        }
        out
    }

    const LOOKAHEAD: SimDuration = SimDuration::from_micros(10);

    /// Runs the toy protocol on the sequential engine, tagging events
    /// with their logical shard. Returns the per-shard execution logs.
    fn run_sequential(num_shards: usize, seeds: &[(usize, u64, Ev)]) -> Vec<Vec<(u64, Ev)>> {
        let mut sim: EventLoop<(usize, Ev)> = EventLoop::new();
        for &(shard, at, ev) in seeds {
            sim.schedule(SimTime::from_nanos(at), (shard, ev));
        }
        let mut logs = vec![Vec::new(); num_shards];
        sim.run(|sim, now, (shard, ev)| {
            logs[shard].push((now.as_nanos(), ev));
            for (dst, delay, next) in follow_ups(ev, shard, num_shards) {
                sim.schedule(now + delay, (dst, next));
            }
        });
        logs
    }

    /// Runs the same protocol on the sharded engine.
    fn run_sharded(num_shards: usize, seeds: &[(usize, u64, Ev)]) -> Vec<Vec<(u64, Ev)>> {
        let mut sim: ShardedEventLoop<Ev> = ShardedEventLoop::new(num_shards, LOOKAHEAD);
        for &(shard, at, ev) in seeds {
            sim.schedule(shard, SimTime::from_nanos(at), ev);
        }
        let mut logs: Vec<Vec<(u64, Ev)>> = vec![Vec::new(); num_shards];
        let reason = sim.run(&mut logs, |log, ctx, now, ev| {
            log.push((now.as_nanos(), ev));
            for (dst, delay, next) in follow_ups(ev, ctx.shard(), ctx.num_shards()) {
                if dst == ctx.shard() {
                    ctx.schedule_in(delay, next);
                } else {
                    ctx.send_in(dst, delay, next);
                }
            }
        });
        assert_eq!(reason, StopReason::Drained);
        logs
    }

    #[test]
    fn single_shard_matches_sequential_engine_exactly() {
        let seeds = [
            (0, 0, Ev { id: 1, hops: 6 }),
            (0, 500, Ev { id: 2, hops: 5 }),
        ];
        assert_eq!(run_sequential(1, &seeds), run_sharded(1, &seeds));
    }

    #[test]
    fn ping_pong_respects_lookahead() {
        let mut sim: ShardedEventLoop<u32> = ShardedEventLoop::new(2, LOOKAHEAD);
        sim.schedule(0, SimTime::ZERO, 0);
        let mut logs: Vec<Vec<(u64, u32)>> = vec![Vec::new(); 2];
        sim.run(&mut logs, |log, ctx, now, hop| {
            log.push((now.as_nanos(), hop));
            if hop < 5 {
                ctx.send_in(1 - ctx.shard(), ctx.lookahead(), hop + 1);
            }
        });
        let l = LOOKAHEAD.as_nanos();
        assert_eq!(logs[0], vec![(0, 0), (2 * l, 2), (4 * l, 4)]);
        assert_eq!(logs[1], vec![(l, 1), (3 * l, 3), (5 * l, 5)]);
        // Each hop needs its own window: 6 events, 6 epochs.
        assert_eq!(sim.epochs(), 6);
        assert_eq!(sim.steps_handled(), 6);
    }

    /// The directed boundary case from the issue: a cross-shard message
    /// arriving **exactly at the lookahead-window end** must not execute
    /// in the window that produced it, and must merge FIFO-after local
    /// events already queued at the same instant.
    #[test]
    fn message_on_window_boundary_lands_in_next_epoch() {
        let l = LOOKAHEAD.as_nanos();
        let mut sim: ShardedEventLoop<&'static str> = ShardedEventLoop::new(2, LOOKAHEAD);
        sim.schedule(0, SimTime::ZERO, "sender");
        // Shard 1 has a local event just inside the first window and one
        // exactly at its end, queued before the message arrives.
        sim.schedule(1, SimTime::from_nanos(l - 1), "local-inside");
        sim.schedule(1, SimTime::from_nanos(l), "local-at-boundary");
        let mut logs: Vec<Vec<(u64, &'static str)>> = vec![Vec::new(); 2];
        sim.run(&mut logs, |log, ctx, now, ev| {
            log.push((now.as_nanos(), ev));
            if ev == "sender" {
                // Arrival == window_end: legal, and released at the
                // barrier into the *next* window.
                let boundary = ctx.window_end();
                assert_eq!(boundary.as_nanos(), l);
                ctx.send(1, boundary, "message-at-boundary");
            }
        });
        assert_eq!(logs[0], vec![(0, "sender")]);
        // The message ties with "local-at-boundary" at t = L; barrier
        // merge assigns its FIFO sequence after the already-queued local
        // event, deterministically.
        assert_eq!(
            logs[1],
            vec![
                (l - 1, "local-inside"),
                (l, "local-at-boundary"),
                (l, "message-at-boundary"),
            ]
        );
    }

    /// A `send_in` at exactly the lookahead delay lands exactly on the
    /// window edge — the earliest legal arrival — and is delivered in
    /// the next epoch, never the producing one.
    #[test]
    fn send_in_at_exact_lookahead_delivers_at_window_edge() {
        let l = LOOKAHEAD.as_nanos();
        let mut sim: ShardedEventLoop<&'static str> = ShardedEventLoop::new(2, LOOKAHEAD);
        sim.schedule(0, SimTime::ZERO, "sender");
        let mut logs: Vec<Vec<(u64, &'static str)>> = vec![Vec::new(); 2];
        sim.run(&mut logs, |log, ctx, _now, ev| {
            log.push((ctx.now().as_nanos(), ev));
            if ev == "sender" {
                ctx.send_in(1, ctx.lookahead(), "edge");
            }
        });
        assert_eq!(logs[0], vec![(0, "sender")]);
        assert_eq!(logs[1], vec![(l, "edge")]);
        // The edge arrival needed its own epoch.
        assert_eq!(sim.epochs(), 2);
    }

    #[test]
    #[should_panic(expected = "lookahead must be nonzero")]
    fn zero_lookahead_is_rejected() {
        let _: ShardedEventLoop<u8> = ShardedEventLoop::new(2, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "violates the lookahead window")]
    fn send_inside_window_panics() {
        let mut sim: ShardedEventLoop<u8> = ShardedEventLoop::new(2, LOOKAHEAD);
        sim.schedule(0, SimTime::ZERO, 0);
        sim.run(&mut [(), ()], |_, ctx, now, _| {
            ctx.send(1, now, 1);
        });
    }

    #[test]
    #[should_panic(expected = "below the lookahead")]
    fn send_in_below_lookahead_panics() {
        let mut sim: ShardedEventLoop<u8> = ShardedEventLoop::new(2, LOOKAHEAD);
        sim.schedule(0, SimTime::ZERO, 0);
        sim.run(&mut [(), ()], |_, ctx, _, _| {
            ctx.send_in(1, SimDuration::from_nanos(1), 1);
        });
    }

    /// Two messages arriving at the same instant from different shards
    /// merge in *send time* order first, then source shard — the key
    /// that keeps delivery independent of shard-to-thread packing.
    #[test]
    fn equal_arrival_ties_merge_in_send_time_order() {
        let mut sim: ShardedEventLoop<&'static str> = ShardedEventLoop::new(3, LOOKAHEAD);
        sim.schedule(0, SimTime::from_nanos(5), "a");
        sim.schedule(1, SimTime::ZERO, "b");
        let target = SimTime::ZERO + LOOKAHEAD + LOOKAHEAD;
        let mut logs: Vec<Vec<&'static str>> = vec![Vec::new(); 3];
        sim.run(&mut logs, |log, ctx, _, ev| {
            log.push(ev);
            match ev {
                "a" => ctx.send(2, target, "from-a"),
                "b" => ctx.send(2, target, "from-b"),
                _ => {}
            }
        });
        // Shard 1 sent at t=0, shard 0 at t=5: the earlier send wins the
        // equal-arrival tie even though its source index is higher.
        assert_eq!(logs[2], vec!["from-b", "from-a"]);
    }

    /// The per-epoch collect/hook seam: everything collected at a
    /// barrier lies strictly below the reported watermark, and nothing
    /// is lost or duplicated.
    #[test]
    fn epoch_hook_sees_collected_output_below_the_watermark() {
        let mut sim: ShardedEventLoop<u32> = ShardedEventLoop::new(2, LOOKAHEAD);
        sim.schedule(0, SimTime::ZERO, 0);
        let mut states: Vec<Vec<u64>> = vec![Vec::new(); 2];
        let mut all = Vec::new();
        let reason = sim.run_threaded(
            &mut states,
            SimTime::MAX,
            u64::MAX,
            2,
            |seen: &mut Vec<u64>, ctx, now, hop| {
                seen.push(now.as_nanos());
                if hop < 5 {
                    ctx.send_in(1 - ctx.shard(), ctx.lookahead(), hop + 1);
                }
            },
            std::mem::take,
            |watermark, collected: Vec<Vec<u64>>| {
                for t in collected.into_iter().flatten() {
                    assert!(
                        SimTime::from_nanos(t) < watermark,
                        "collected event at {t} not below watermark {watermark}"
                    );
                    all.push(t);
                }
            },
        );
        assert_eq!(reason, StopReason::Drained);
        let l = LOOKAHEAD.as_nanos();
        assert_eq!(all, vec![0, l, 2 * l, 3 * l, 4 * l, 5 * l]);
    }

    #[test]
    fn horizon_stops_at_epoch_boundary() {
        let mut sim: ShardedEventLoop<u32> = ShardedEventLoop::new(2, LOOKAHEAD);
        sim.schedule(0, SimTime::from_nanos(1), 1);
        sim.schedule(1, SimTime::from_secs(5), 2);
        let mut logs: Vec<Vec<u32>> = vec![Vec::new(); 2];
        let reason = sim.run_bounded(
            &mut logs,
            SimTime::from_secs(1),
            u64::MAX,
            |log, _, _, v| log.push(v),
        );
        assert_eq!(reason, StopReason::Horizon);
        assert_eq!(logs, vec![vec![1], Vec::new()]);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn step_budget_detects_livelock() {
        let mut sim: ShardedEventLoop<()> = ShardedEventLoop::new(2, LOOKAHEAD);
        sim.schedule(0, SimTime::ZERO, ());
        let reason = sim.run_bounded(&mut [(), ()], SimTime::MAX, 1000, |_, ctx, now, ()| {
            ctx.schedule(now, ());
        });
        assert_eq!(reason, StopReason::StepBudget);
    }

    #[test]
    fn saturated_window_still_drains() {
        // All events at the u64 ceiling: [W, W + L) saturates empty; the
        // inclusive corner must still execute them.
        let mut sim: ShardedEventLoop<u8> = ShardedEventLoop::new(2, LOOKAHEAD);
        sim.schedule(0, SimTime::MAX, 1);
        sim.schedule(1, SimTime::MAX, 2);
        let mut logs: Vec<Vec<u8>> = vec![Vec::new(); 2];
        let reason = sim.run(&mut logs, |log, _, _, v| log.push(v));
        assert_eq!(reason, StopReason::Drained);
        assert_eq!(logs, vec![vec![1], vec![2]]);
    }

    #[test]
    fn stream_processes_in_time_order_within_shard() {
        let mut stream: ShardStream<u32, Vec<(u64, u32)>> =
            ShardStream::spawn(vec![Vec::new()], |log, _, t, v| log.push((t.as_nanos(), v)));
        stream.push(0, SimTime::from_nanos(30), 3);
        stream.push(0, SimTime::from_nanos(10), 1);
        stream.push(0, SimTime::from_nanos(20), 2);
        // Only events strictly before the watermark run.
        stream.release(SimTime::from_nanos(25));
        stream.push(0, SimTime::from_nanos(40), 4);
        let logs = stream.finish();
        assert_eq!(logs[0], vec![(10, 1), (20, 2), (30, 3), (40, 4)]);
    }

    #[test]
    fn stream_fifo_for_equal_times() {
        let mut stream: ShardStream<u32, Vec<u32>> =
            ShardStream::spawn(vec![Vec::new()], |log, _, _, v| log.push(v));
        for v in 0..100 {
            stream.push(0, SimTime::from_nanos(5), v);
        }
        let logs = stream.finish();
        assert_eq!(logs[0], (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "violates the released watermark")]
    fn stream_push_below_watermark_panics() {
        let mut stream: ShardStream<u32, ()> = ShardStream::spawn(vec![()], |_, _, _, _| {});
        stream.release(SimTime::from_nanos(100));
        stream.push(0, SimTime::from_nanos(50), 1);
    }

    #[test]
    fn stream_worker_panic_surfaces_at_finish() {
        let mut stream: ShardStream<u32, ()> = ShardStream::spawn(vec![()], |_, _, _, v| {
            assert!(v != 7, "poison event");
        });
        stream.push(0, SimTime::from_nanos(1), 7);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| stream.finish()));
        assert!(result.is_err());
    }

    /// Runs the toy protocol through `run_threaded` with an explicit
    /// worker-thread count.
    fn run_threaded_case(
        num_shards: usize,
        threads: usize,
        seeds: &[(usize, u64, Ev)],
    ) -> Vec<Vec<(u64, Ev)>> {
        let mut sim: ShardedEventLoop<Ev> = ShardedEventLoop::new(num_shards, LOOKAHEAD);
        for &(shard, at, ev) in seeds {
            sim.schedule(shard, SimTime::from_nanos(at), ev);
        }
        let mut logs: Vec<Vec<(u64, Ev)>> = vec![Vec::new(); num_shards];
        let reason = sim.run_threaded(
            &mut logs,
            SimTime::MAX,
            u64::MAX,
            threads,
            |log: &mut Vec<(u64, Ev)>, ctx, now, ev| {
                log.push((now.as_nanos(), ev));
                for (dst, delay, next) in follow_ups(ev, ctx.shard(), ctx.num_shards()) {
                    if dst == ctx.shard() {
                        ctx.schedule_in(delay, next);
                    } else {
                        ctx.send_in(dst, delay, next);
                    }
                }
            },
            |_| (),
            |_, _: Vec<()>| {},
        );
        assert_eq!(reason, StopReason::Drained);
        logs
    }

    /// FNV digest of per-shard execution logs.
    fn log_digest(logs: &[Vec<(u64, Ev)>]) -> u64 {
        let mut h = crate::digest::Fnv64::new();
        for (i, log) in logs.iter().enumerate() {
            h.write_u64(i as u64);
            for &(t, ev) in log {
                h.write_u64(t);
                h.write_u64(ev.id);
                h.write_u64(u64::from(ev.hops));
            }
        }
        h.finish()
    }

    proptest! {
        /// Digest invariance across both the shard count and the worker
        /// thread count: for every `(num_shards, threads)` pair the
        /// execution digest equals the sequential oracle's.
        #[test]
        fn digests_invariant_across_shards_and_threads(
            num_shards in 1usize..6,
            threads in 1usize..5,
            seeds in proptest::collection::vec((0usize..6, 0u64..1_000_000, 1u64..1000, 0u8..5), 1..10),
        ) {
            let seeds: Vec<(usize, u64, Ev)> = seeds
                .iter()
                .enumerate()
                .map(|(i, &(shard, at, id, hops))| {
                    (shard % num_shards, at, Ev { id: id * 1000 + i as u64, hops })
                })
                .collect();
            let oracle = log_digest(&run_sequential(num_shards, &seeds));
            let threaded = log_digest(&run_threaded_case(num_shards, threads, &seeds));
            prop_assert_eq!(oracle, threaded);
        }

        /// For arbitrary seed workloads, every shard's execution log on
        /// the sharded engine is identical to the same logical process's
        /// log under the sequential oracle.
        #[test]
        fn sharded_matches_sequential_oracle(
            num_shards in 1usize..5,
            seeds in proptest::collection::vec((0usize..5, 0u64..1_000_000, 1u64..1000, 0u8..5), 1..12),
        ) {
            let seeds: Vec<(usize, u64, Ev)> = seeds
                .iter()
                .enumerate()
                .map(|(i, &(shard, at, id, hops))| {
                    // Unique ids and id-salted times keep timestamps
                    // distinct across the whole cascade.
                    (shard % num_shards, at, Ev { id: id * 1000 + i as u64, hops })
                })
                .collect();
            let seq = run_sequential(num_shards, &seeds);
            let sharded = run_sharded(num_shards, &seeds);
            prop_assert_eq!(seq, sharded);
        }

        /// The sharded engine is deterministic: two runs of the same
        /// workload produce identical logs, regardless of thread timing.
        #[test]
        fn sharded_runs_are_reproducible(
            num_shards in 2usize..5,
            seeds in proptest::collection::vec((0usize..5, 0u64..1_000_000, 1u64..1000, 0u8..5), 1..12),
        ) {
            let seeds: Vec<(usize, u64, Ev)> = seeds
                .iter()
                .enumerate()
                .map(|(i, &(shard, at, id, hops))| {
                    (shard % num_shards, at, Ev { id: id * 1000 + i as u64, hops })
                })
                .collect();
            prop_assert_eq!(run_sharded(num_shards, &seeds), run_sharded(num_shards, &seeds));
        }

        /// Streaming mode: per-shard logs equal a per-shard (time, push
        /// order) sort of the pushed events, for arbitrary push/release
        /// interleavings.
        #[test]
        fn stream_matches_sorted_reference(
            num_shards in 1usize..4,
            ops in proptest::collection::vec((0usize..4, 0u64..10_000, 0u8..4), 0..200),
        ) {
            let mut stream: ShardStream<usize, Vec<(u64, usize)>> = ShardStream::spawn(
                (0..num_shards).map(|_| Vec::new()).collect(),
                |log, _, t, v| log.push((t.as_nanos(), v)),
            );
            let mut reference: Vec<Vec<(u64, usize)>> = vec![Vec::new(); num_shards];
            let mut watermark = 0u64;
            for (i, &(shard, t, sel)) in ops.iter().enumerate() {
                let shard = shard % num_shards;
                let t = watermark + t; // respect the producer contract
                stream.push(shard, SimTime::from_nanos(t), i);
                reference[shard].push((t, i));
                if sel == 0 {
                    watermark = t;
                    stream.release(SimTime::from_nanos(watermark));
                }
            }
            let logs = stream.finish();
            for shard in 0..num_shards {
                // Stable sort by time = (time, push order).
                reference[shard].sort_by_key(|&(t, _)| t);
                prop_assert_eq!(&logs[shard], &reference[shard]);
            }
        }
    }
}
