//! Imperfect local clocks.
//!
//! Real distributed systems lack a shared high-resolution clock — the
//! central problem motivating the ZM4's measure tick generator. A
//! [`ClockModel`] converts true (global, simulated) time into what a local
//! clock would *report*: quantized to the clock's resolution and, if the
//! clock is free-running, displaced by a constant offset plus linear drift.
//!
//! A perfectly synchronized clock ([`ClockModel::synchronized`]) has zero
//! offset and drift and models an event-recorder clock locked to the tick
//! channel.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Models a local clock reading derived from true global time.
///
/// # Examples
///
/// ```
/// use des::clock::ClockModel;
/// use des::time::{SimDuration, SimTime};
///
/// // A synchronized 100ns-resolution clock (ZM4 event recorder).
/// let clock = ClockModel::synchronized(SimDuration::from_nanos(100));
/// let stamp = clock.stamp(SimTime::from_nanos(1234));
/// assert_eq!(stamp, 1200);
///
/// // A free-running clock that is 5us ahead and gains 50 ppm.
/// let skewed = ClockModel::free_running(5_000, 50.0, SimDuration::from_nanos(100));
/// assert!(skewed.stamp(SimTime::from_millis(1)) > 1_000_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClockModel {
    offset_ns: i64,
    drift_ppm: f64,
    resolution: SimDuration,
}

impl ClockModel {
    /// A clock perfectly locked to global time with the given resolution.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero.
    pub fn synchronized(resolution: SimDuration) -> Self {
        assert!(!resolution.is_zero(), "clock resolution must be nonzero");
        ClockModel {
            offset_ns: 0,
            drift_ppm: 0.0,
            resolution,
        }
    }

    /// A free-running clock with a fixed `offset_ns` at t = 0 and a linear
    /// drift of `drift_ppm` parts per million.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero.
    pub fn free_running(offset_ns: i64, drift_ppm: f64, resolution: SimDuration) -> Self {
        assert!(!resolution.is_zero(), "clock resolution must be nonzero");
        ClockModel {
            offset_ns,
            drift_ppm,
            resolution,
        }
    }

    /// Draws a plausible unsynchronized clock: offset uniform in
    /// `±max_offset`, drift uniform in `±max_drift_ppm`.
    pub fn random_skew(
        rng: &mut DetRng,
        max_offset: SimDuration,
        max_drift_ppm: f64,
        resolution: SimDuration,
    ) -> Self {
        let bound = max_offset.as_nanos() as f64;
        let offset = if bound > 0.0 {
            rng.symmetric(bound)
        } else {
            0.0
        };
        let drift = if max_drift_ppm > 0.0 {
            rng.symmetric(max_drift_ppm)
        } else {
            0.0
        };
        ClockModel::free_running(offset as i64, drift, resolution)
    }

    /// Returns `true` if the clock tracks global time exactly (before
    /// quantization).
    pub fn is_synchronized(&self) -> bool {
        self.offset_ns == 0 && self.drift_ppm == 0.0
    }

    /// Clock resolution (quantization step).
    pub fn resolution(&self) -> SimDuration {
        self.resolution
    }

    /// The local reading, in local nanoseconds, for true global time `now`.
    ///
    /// Readings are clamped at zero (a hardware counter cannot go
    /// negative) and quantized down to the clock resolution.
    pub fn stamp(&self, now: SimTime) -> u64 {
        let true_ns = now.as_nanos() as f64;
        let drifted = true_ns * (1.0 + self.drift_ppm * 1e-6) + self.offset_ns as f64;
        let raw = drifted.max(0.0) as u64;
        raw - raw % self.resolution.as_nanos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronized_quantizes_only() {
        let c = ClockModel::synchronized(SimDuration::from_nanos(100));
        assert!(c.is_synchronized());
        assert_eq!(c.stamp(SimTime::from_nanos(999)), 900);
        assert_eq!(c.stamp(SimTime::from_nanos(1000)), 1000);
    }

    #[test]
    fn offset_shifts_reading() {
        let c = ClockModel::free_running(500, 0.0, SimDuration::from_nanos(1));
        assert_eq!(c.stamp(SimTime::from_nanos(1000)), 1500);
        assert!(!c.is_synchronized());
    }

    #[test]
    fn negative_offset_clamps_at_zero() {
        let c = ClockModel::free_running(-10_000, 0.0, SimDuration::from_nanos(1));
        assert_eq!(c.stamp(SimTime::from_nanos(100)), 0);
    }

    #[test]
    fn drift_accumulates() {
        // +100 ppm over one second = +100us.
        let c = ClockModel::free_running(0, 100.0, SimDuration::from_nanos(1));
        let reading = c.stamp(SimTime::from_secs(1));
        let expected = 1_000_000_000u64 + 100_000;
        assert!(
            (reading as i64 - expected as i64).abs() < 100,
            "reading {reading}"
        );
    }

    #[test]
    fn random_skew_is_bounded_and_deterministic() {
        let mut r1 = DetRng::new(5).derive("clock");
        let mut r2 = DetRng::new(5).derive("clock");
        let a = ClockModel::random_skew(
            &mut r1,
            SimDuration::from_millis(5),
            50.0,
            SimDuration::from_nanos(100),
        );
        let b = ClockModel::random_skew(
            &mut r2,
            SimDuration::from_millis(5),
            50.0,
            SimDuration::from_nanos(100),
        );
        assert_eq!(a, b);
        assert!(a.offset_ns.abs() <= 5_000_000);
        assert!(a.drift_ppm.abs() <= 50.0);
    }
}
