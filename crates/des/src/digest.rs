//! Incremental FNV-1a digesting.
//!
//! The workspace's determinism checks compare 64-bit FNV-1a digests of
//! event traces (golden files, sweep artifacts, CI drift checks). This
//! module is the single implementation: an incremental hasher that can
//! digest a stream record-by-record, so hot paths never need to retain
//! a full trace just to fingerprint it.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 64-bit FNV-1a hasher.
///
/// # Examples
///
/// ```
/// use des::digest::Fnv64;
///
/// let mut h = Fnv64::new();
/// h.write_u64(42);
/// h.write_bytes(b"trace");
///
/// // Incremental digesting is byte-equivalent to one-shot digesting.
/// let mut g = Fnv64::new();
/// g.write_bytes(&42u64.to_le_bytes());
/// g.write_bytes(b"trace");
/// assert_eq!(h.finish(), g.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    #[inline]
    pub const fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Absorbs one byte.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a byte slice.
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Absorbs a `u64` as its 8 little-endian bytes.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The digest of everything absorbed so far. Non-consuming: more
    /// data may be written afterwards.
    #[inline]
    pub const fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        let digest = |s: &str| {
            let mut h = Fnv64::new();
            h.write_bytes(s.as_bytes());
            h.finish()
        };
        assert_eq!(digest(""), FNV_OFFSET);
        assert_eq!(digest("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut one = Fnv64::new();
        one.write_bytes(b"hello world");
        let mut inc = Fnv64::new();
        inc.write_bytes(b"hello");
        inc.write_bytes(b" ");
        inc.write_bytes(b"world");
        assert_eq!(one.finish(), inc.finish());
    }
}
