//! The original binary-heap event queue, kept as a reference model.
//!
//! [`ReferenceQueue`] is the pre-calendar implementation of
//! [`EventQueue`](super::EventQueue): a `BinaryHeap<Reverse<Entry>>`
//! ordered by `(time, seq)`. It is intentionally simple — its
//! correctness is easy to see — which makes it the oracle for the
//! differential property tests in [`super`] and the baseline for the
//! `micro_queue` benchmark. It is **not** used by the simulator.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// Binary-heap `(time, seq)`-ordered queue with the same API and
/// semantics as [`EventQueue`](super::EventQueue).
#[derive(Debug)]
pub struct ReferenceQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

impl<E> ReferenceQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ReferenceQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with space for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        ReferenceQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Enqueues `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events without resetting the sequence counter
    /// (same semantics as [`EventQueue::clear`](super::EventQueue::clear)).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Total events ever pushed — see
    /// [`EventQueue::events_pushed`](super::EventQueue::events_pushed).
    pub fn events_pushed(&self) -> u64 {
        self.next_seq
    }
}

impl<E> Default for ReferenceQueue<E> {
    fn default() -> Self {
        ReferenceQueue::new()
    }
}
