//! Deterministic discrete-event simulation kernel.
//!
//! This crate provides the foundation every simulated subsystem in the
//! workspace is built on: a nanosecond-resolution simulated clock
//! ([`SimTime`], [`SimDuration`]), a deterministic event queue that breaks
//! timestamp ties by insertion order ([`queue::EventQueue`]), a small
//! event-loop driver ([`engine::EventLoop`]), seeded random-number streams
//! ([`rng::DetRng`]) and time-weighted statistics accumulators
//! ([`stats`]).
//!
//! Determinism is a hard requirement of the reproduction: the monitor is
//! itself being validated against ground truth recorded by the simulator,
//! so a given `(seed, configuration)` pair must replay bit-identical event
//! histories.
//!
//! # Examples
//!
//! ```
//! use des::engine::EventLoop;
//! use des::time::{SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev {
//!     Ping,
//!     Pong,
//! }
//!
//! let mut sim = EventLoop::new();
//! sim.schedule(SimTime::ZERO, Ev::Ping);
//! let mut log = Vec::new();
//! sim.run(|sim, now, ev| {
//!     log.push((now, format!("{ev:?}")));
//!     if matches!(ev, Ev::Ping) {
//!         sim.schedule_in(SimDuration::from_micros(3), Ev::Pong);
//!     }
//! });
//! assert_eq!(log.len(), 2);
//! assert_eq!(log[1].0, SimTime::from_nanos(3_000));
//! ```

pub mod clock;
pub mod digest;
pub mod engine;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;

pub use engine::EventLoop;
pub use queue::EventQueue;
pub use rng::DetRng;
pub use shard::{ShardStream, ShardedEventLoop};
pub use time::{SimDuration, SimTime};
