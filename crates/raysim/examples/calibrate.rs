//! Calibration sweep: measured servant utilization for each program
//! version at paper scale (used to sanity-check cost-model constants).

use des::time::SimTime;
use raysim::analysis::servant_utilization;
use raysim::config::{AppConfig, Version};
use raysim::run::{run, RunConfig};

fn main() {
    for v in Version::ALL {
        let app = AppConfig::version(v);
        let servants = app.servants as u32;
        let mut cfg = RunConfig::new(app);
        cfg.horizon = SimTime::from_secs(36_000);
        let t0 = std::time::Instant::now();
        let result = run(cfg);
        let host = t0.elapsed();
        let util = servant_utilization(&result.trace, servants);
        println!(
            "{v}: util={:.1}% (paper {:.0}%) end={} jobs={} mpool={} spool={} host={:.1}s events={}",
            util.mean_percent(),
            v.paper_utilization_percent(),
            result.outcome.end,
            result.app_stats.jobs_sent,
            result.app_stats.master_pool_peak,
            result.app_stats.servant_pool_peak,
            host.as_secs_f64(),
            result.trace.len(),
        );
    }
}
