//! Shared render context and application-level shared state.
//!
//! The scene description "must be replicated on each processor"
//! (paper §4.1); in the simulation every servant holds an `Rc` to one
//! [`RenderContext`] — the simulated machine charges the servants for
//! the *time* tracing would take, while the host computes the actual
//! colours once.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

use des::time::SimDuration;
use raytracer::{scenes, Camera, Color, CostModel, Scene, TraceConfig, Tracer, WorkCounters};
use suprenum::{CondId, Message, ProcessId};

use crate::config::{AppConfig, SceneKind};

/// The replicated scene data plus tracing configuration.
#[derive(Debug)]
pub struct RenderContext {
    scene: Scene,
    camera: Camera,
    trace: TraceConfig,
    cost: CostModel,
    width: u32,
    height: u32,
    oversample: u32,
    per_job_base: SimDuration,
}

impl RenderContext {
    /// Builds the context for an application configuration.
    pub fn new(cfg: &AppConfig) -> Arc<Self> {
        let (scene, camera) = match &cfg.scene {
            SceneKind::Quickstart => scenes::quickstart_scene(),
            SceneKind::Moderate => scenes::moderate_scene(),
            SceneKind::FractalPyramid(depth) => scenes::fractal_pyramid(*depth),
            SceneKind::Described(text) => {
                let desc = raytracer::sdl::parse(text)
                    .expect("invalid scene description in configuration");
                (desc.scene, desc.camera)
            }
        };
        Arc::new(RenderContext {
            scene,
            camera,
            trace: cfg.trace,
            cost: cfg.cost.clone(),
            width: cfg.width,
            height: cfg.height,
            oversample: cfg.oversample,
            per_job_base: cfg.work_base,
        })
    }

    /// The scene being rendered.
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// The camera.
    pub fn camera(&self) -> &Camera {
        &self.camera
    }

    /// Image dimensions.
    pub fn dimensions(&self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// Traces a bundle of pixels: returns the computed colours and the
    /// simulated MC68020 time the work would have taken.
    pub fn trace_pixels(&self, pixels: &[u32]) -> (Vec<(u32, Color)>, SimDuration) {
        let tracer = Tracer::new(&self.scene, self.trace);
        let mut out = Vec::with_capacity(pixels.len());
        let mut work = WorkCounters::new();
        for &idx in pixels {
            let (px, py) = (idx % self.width, idx / self.width);
            let (color, w) = tracer.render_pixel(
                &self.camera,
                px,
                py,
                self.width,
                self.height,
                self.oversample,
            );
            work += w;
            out.push((idx, color));
        }
        (out, self.per_job_base + self.cost.simulated_time(&work))
    }
}

/// Aggregate application statistics collected during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppStats {
    /// Jobs the master sent.
    pub jobs_sent: u64,
    /// Result messages the master received.
    pub results_received: u64,
    /// Disk writes ("Write Pixels" activities).
    pub disk_writes: u64,
    /// Peak size of the master's communication-agent pool.
    pub master_pool_peak: u32,
    /// Peak size of any servant's agent pool.
    pub servant_pool_peak: u32,
}

/// Shared mutable application state.
///
/// Backed by a mutex so process bodies stay `Send` when the engine runs
/// cluster shards on worker threads. Within one shard the simulation is
/// still sequential, so the lock is uncontended; the `borrow` /
/// `borrow_mut` names are kept because the access discipline is the
/// same one `RefCell` enforced. Guards must not overlap — a nested
/// borrow deadlocks where `RefCell` would have panicked.
#[derive(Debug)]
pub struct Shared<T>(Arc<Mutex<T>>);

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }
}

impl<T> Shared<T> {
    /// Wraps `value` for shared ownership.
    pub fn new(value: T) -> Self {
        Shared(Arc::new(Mutex::new(value)))
    }

    /// Locks the value for reading.
    pub fn borrow(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Locks the value for writing.
    pub fn borrow_mut(&self) -> MutexGuard<'_, T> {
        self.borrow()
    }

    /// Extracts the value, cloning only if other owners remain.
    pub fn unwrap_or_clone(self) -> T
    where
        T: Clone,
    {
        match Arc::try_unwrap(self.0) {
            Ok(m) => m.into_inner().unwrap_or_else(|e| e.into_inner()),
            Err(arc) => arc.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        }
    }
}

/// One communication-agent pool: the shared variables between an owner
/// process (master or servant) and its agents — the "pool of
/// light-weight processes" of §4.3, version 2.
///
/// The owner "indicates this fact to an agent, who is currently not
/// engaged in some other communication, by setting a shared variable":
/// each agent sleeps on its *own* condition; the owner pops a free agent
/// off the list and signals exactly that agent.
#[derive(Debug)]
pub struct AgentPool {
    /// Base value for per-agent condition ids.
    base_cond: u64,
    /// Messages waiting to be forwarded: `(destination, message)`.
    pub queue: VecDeque<(ProcessId, Message)>,
    /// Indices of agents currently asleep (available for designation).
    pub free: Vec<u32>,
    /// Agents currently forwarding a message (engaged).
    pub busy_agents: u32,
    /// Agents ever created in this pool.
    pub total_agents: u32,
}

impl AgentPool {
    /// Creates an empty pool. `base_cond` must leave room for one
    /// condition id per agent the pool may ever grow to.
    pub fn new(base_cond: u64) -> Shared<AgentPool> {
        Shared::new(AgentPool {
            base_cond,
            queue: VecDeque::new(),
            free: Vec::new(),
            busy_agents: 0,
            total_agents: 0,
        })
    }

    /// The private condition agent `index` sleeps on.
    pub fn agent_cond(&self, index: u32) -> CondId {
        CondId::new(self.base_cond + index as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Version;

    #[test]
    fn trace_pixels_returns_colours_and_time() {
        let mut cfg = AppConfig::version(Version::V1);
        cfg.scene = SceneKind::Quickstart;
        cfg.width = 16;
        cfg.height = 16;
        let ctx = RenderContext::new(&cfg);
        let (colors, time) = ctx.trace_pixels(&[0, 100, 200]);
        assert_eq!(colors.len(), 3);
        assert_eq!(colors[1].0, 100);
        assert!(
            time > cfg.work_base,
            "tracing must cost more than the base overhead"
        );
    }

    #[test]
    fn ray_cost_varies_with_content() {
        // The paper's premise: per-ray time varies considerably. Compare
        // a background pixel against a scene-center pixel.
        let mut cfg = AppConfig::version(Version::V1);
        cfg.scene = SceneKind::Moderate;
        let ctx = RenderContext::new(&cfg);
        let corner = ctx.trace_pixels(&[0]).1;
        let center_idx = (cfg.height / 2) * cfg.width + cfg.width / 2;
        let center = ctx.trace_pixels(&[center_idx]).1;
        assert!(
            center.as_nanos() > corner.as_nanos() * 2,
            "center ray ({center}) should cost much more than sky ray ({corner})"
        );
    }

    #[test]
    fn pool_starts_empty() {
        let pool = AgentPool::new(700);
        let p = pool.borrow();
        assert!(p.free.is_empty());
        assert_eq!(p.busy_agents, 0);
        assert_eq!(p.total_agents, 0);
        assert!(p.queue.is_empty());
        assert_eq!(p.agent_cond(3), CondId::new(703));
    }
}
