//! The servant process (paper Figure 6, right).
//!
//! A servant loops: *Wait for Job* → *Work* (trace the bundle's rays) →
//! *Send Results*. In versions 1–2 the result is sent straight into the
//! master's mailbox, blocking the servant until the master's mailbox LWP
//! is scheduled; in versions 3–4 the servant hands the result to a
//! communication agent on its own node and immediately waits for the
//! next job.

use std::sync::Arc;

use suprenum::{Action, Message, ProcCtx, Process, ProcessId, Resume};

use crate::agent::Agent;
use crate::config::AppConfig;
use crate::context::{AgentPool, AppStats, RenderContext, Shared};
use crate::protocol::{JobMsg, ReadyMsg, ResultMsg};
use crate::tokens;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SState {
    Boot,
    InitCompute,
    SendReady,
    WaitJobEmit,
    WaitJobRecv,
    WorkEmit,
    WorkCompute,
    SendResultsEmit,
    SendDirect,
    SendSpawnAgent,
    SendSignal,
    SendYield,
}

/// One servant process.
pub struct Servant {
    index: u32,
    cfg: Arc<AppConfig>,
    ctx: Arc<RenderContext>,
    render_stats: Shared<AppStats>,
    master: ProcessId,
    pool: Shared<AgentPool>,
    state: SState,
    current_job: Option<JobMsg>,
    pending_result: Option<ResultMsg>,
}

impl Servant {
    /// Creates servant number `index` (1-based, matching its node).
    pub fn new(
        index: u32,
        cfg: Arc<AppConfig>,
        ctx: Arc<RenderContext>,
        render_stats: Shared<AppStats>,
        master: ProcessId,
    ) -> Box<Servant> {
        // Each servant owns a private agent pool; condition ids are
        // spaced so pools never collide.
        let pool = AgentPool::new(1_000 * (1 + index as u64));
        Box::new(Servant {
            index,
            cfg,
            ctx,
            render_stats,
            master,
            pool,
            state: SState::Boot,
            current_job: None,
            pending_result: None,
        })
    }

    fn emit(&self, token: u16, param: u32) -> Action {
        Action::Emit { token, param }
    }

    fn wait_for_job(&mut self) -> Action {
        self.state = SState::WaitJobEmit;
        self.emit(tokens::WAIT_JOB_BEGIN, 0)
    }

    /// Version-specific result delivery, entered after the (optional)
    /// "Send Results Begin" instrumentation point.
    fn deliver_result(&mut self, own_pid: ProcessId) -> Action {
        let result = self.pending_result.take().expect("no result to deliver");
        let bytes = result.wire_bytes();
        let msg = Message::new(own_pid, bytes, result);
        if self.cfg.version.servant_agents() {
            let designated = {
                let mut pool = self.pool.borrow_mut();
                pool.queue.push_back((self.master, msg));
                pool.free.pop()
            };
            match designated {
                Some(idx) => {
                    let cond = self.pool.borrow().agent_cond(idx);
                    self.state = SState::SendSignal;
                    Action::SignalCond(cond)
                }
                None => {
                    let (index, body) = {
                        let mut pool = self.pool.borrow_mut();
                        let index = pool.total_agents;
                        pool.total_agents += 1;
                        (index, Agent::new(self.pool.clone(), index))
                    };
                    let mut stats = self.render_stats.borrow_mut();
                    stats.servant_pool_peak = stats.servant_pool_peak.max(index + 1);
                    self.state = SState::SendSpawnAgent;
                    // Agents live on the servant's own node.
                    Action::Spawn {
                        node: suprenum::NodeId::new(self.index as u16),
                        body,
                    }
                }
            }
        } else {
            self.state = SState::SendDirect;
            Action::MailboxSend {
                to: self.master,
                msg,
            }
        }
    }
}

impl Process for Servant {
    fn resume(&mut self, ctx: &ProcCtx, why: Resume) -> Action {
        match (self.state, why) {
            (SState::Boot, Resume::Start) => {
                // Initialization: reading the replicated scene
                // description.
                self.state = SState::InitCompute;
                Action::Compute(self.cfg.servant_init)
            }
            (SState::InitCompute, Resume::ComputeDone) => {
                // Report readiness so the master only distributes work
                // to servants that can accept it.
                let ready = ReadyMsg {
                    servant: self.index,
                };
                self.state = SState::SendReady;
                Action::MailboxSend {
                    to: self.master,
                    msg: Message::new(ctx.pid, ready.wire_bytes(), ready),
                }
            }
            (SState::SendReady, Resume::Sent) => self.wait_for_job(),
            (SState::WaitJobEmit, Resume::EmitDone) => {
                self.state = SState::WaitJobRecv;
                Action::MailboxRecv
            }
            (SState::WaitJobRecv, Resume::MailboxMsg(msg)) => {
                let job = msg
                    .payload::<JobMsg>()
                    .expect("servant expects job messages")
                    .clone();
                self.state = SState::WorkEmit;
                let job_id = job.job_id;
                self.current_job = Some(job);
                self.emit(tokens::WORK_BEGIN, job_id)
            }
            (SState::WorkEmit, Resume::EmitDone) => {
                let job = self.current_job.as_ref().expect("work without job");
                let (pixels, duration) = self.ctx.trace_pixels(&job.pixels);
                self.pending_result = Some(ResultMsg {
                    job_id: job.job_id,
                    servant: self.index,
                    pixels,
                });
                self.current_job = None;
                self.state = SState::WorkCompute;
                Action::Compute(duration)
            }
            (SState::WorkCompute, Resume::ComputeDone) => {
                let job_id = self.pending_result.as_ref().expect("result pending").job_id;
                if self.cfg.instrument_send_results {
                    self.state = SState::SendResultsEmit;
                    self.emit(tokens::SEND_RESULTS_BEGIN, job_id)
                } else {
                    self.deliver_result(ctx.pid)
                }
            }
            (SState::SendResultsEmit, Resume::EmitDone) => self.deliver_result(ctx.pid),
            (SState::SendDirect, Resume::Sent) => self.wait_for_job(),
            (SState::SendSpawnAgent, Resume::Spawned(_)) => {
                // The fresh agent finds its work at boot.
                self.state = SState::SendYield;
                Action::Yield
            }
            (SState::SendSignal, Resume::SignalSent) => {
                // Relinquish so the agent (same node) can pick up the
                // result before we start the next job.
                self.state = SState::SendYield;
                Action::Yield
            }
            (SState::SendYield, Resume::Yielded) => self.wait_for_job(),
            (state, why) => crate::diag::protocol_violation(
                ctx,
                &format!("servant {}", self.index),
                &state,
                &why,
            ),
        }
    }

    fn label(&self) -> String {
        format!("servant-{}", self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SceneKind, Version};
    use des::time::SimTime;
    use suprenum::NodeId;

    fn setup(version: Version) -> (Box<Servant>, ProcCtx) {
        let mut cfg = AppConfig::version(version);
        cfg.scene = SceneKind::Quickstart;
        cfg.width = 8;
        cfg.height = 8;
        let cfg = Arc::new(cfg);
        let ctx = RenderContext::new(&cfg);
        let stats = Shared::new(AppStats::default());
        let servant = Servant::new(1, cfg, ctx, stats, ProcessId::new(0));
        let pctx = ProcCtx {
            pid: ProcessId::new(5),
            node: NodeId::new(1),
            now: SimTime::ZERO,
        };
        (servant, pctx)
    }

    #[test]
    fn lifecycle_v1_blocks_on_direct_send() {
        let (mut s, ctx) = setup(Version::V1);
        assert!(matches!(s.resume(&ctx, Resume::Start), Action::Compute(_)));
        // Init done -> ready notification to the master.
        assert!(matches!(
            s.resume(&ctx, Resume::ComputeDone),
            Action::MailboxSend { to, .. } if to == ProcessId::new(0)
        ));
        // Accepted -> Wait for Job instrumentation then mailbox read.
        assert!(matches!(
            s.resume(&ctx, Resume::Sent),
            Action::Emit {
                token: tokens::WAIT_JOB_BEGIN,
                ..
            }
        ));
        assert!(matches!(
            s.resume(&ctx, Resume::EmitDone),
            Action::MailboxRecv
        ));
        // Deliver a job.
        let job = JobMsg {
            job_id: 7,
            pixels: vec![0, 1],
        };
        let msg = Message::new(ProcessId::new(0), job.wire_bytes(), job);
        let a = s.resume(&ctx, Resume::MailboxMsg(msg));
        assert!(matches!(
            a,
            Action::Emit {
                token: tokens::WORK_BEGIN,
                param: 7
            }
        ));
        // Work compute.
        assert!(matches!(
            s.resume(&ctx, Resume::EmitDone),
            Action::Compute(_)
        ));
        // V1 does not instrument Send Results: straight to the blocking
        // mailbox send.
        let a = s.resume(&ctx, Resume::ComputeDone);
        assert!(matches!(a, Action::MailboxSend { to, .. } if to == ProcessId::new(0)));
        // Released -> next Wait for Job.
        assert!(matches!(
            s.resume(&ctx, Resume::Sent),
            Action::Emit {
                token: tokens::WAIT_JOB_BEGIN,
                ..
            }
        ));
    }

    #[test]
    fn lifecycle_v3_hands_to_agent() {
        let (mut s, ctx) = setup(Version::V3);
        s.resume(&ctx, Resume::Start);
        s.resume(&ctx, Resume::ComputeDone); // ready send
        s.resume(&ctx, Resume::Sent); // Wait for Job emit
        s.resume(&ctx, Resume::EmitDone);
        let job = JobMsg {
            job_id: 1,
            pixels: vec![0],
        };
        let msg = Message::new(ProcessId::new(0), job.wire_bytes(), job);
        s.resume(&ctx, Resume::MailboxMsg(msg));
        s.resume(&ctx, Resume::EmitDone); // Work compute issued
                                          // V3 instruments Send Results.
        let a = s.resume(&ctx, Resume::ComputeDone);
        assert!(matches!(
            a,
            Action::Emit {
                token: tokens::SEND_RESULTS_BEGIN,
                param: 1
            }
        ));
        // No free agent -> spawns one on its own node.
        let a = s.resume(&ctx, Resume::EmitDone);
        assert!(matches!(a, Action::Spawn { node, .. } if node == NodeId::new(1)));
        // The fresh agent takes the work at boot; the servant yields.
        assert!(matches!(
            s.resume(&ctx, Resume::Spawned(ProcessId::new(9))),
            Action::Yield
        ));
        assert!(matches!(
            s.resume(&ctx, Resume::Yielded),
            Action::Emit {
                token: tokens::WAIT_JOB_BEGIN,
                ..
            }
        ));
    }
}
